"""Ablation studies for the design choices called out in DESIGN.md.

1. **Caching thresholds** (the paper's user parameters): sweeping
   ``thresh_iss_calls`` and ``thresh_variance`` trades accuracy for
   hit rate on a workload with a data-dependent power model, where
   aggressive caching genuinely loses accuracy.
2. **Cache-key granularity**: per-path (the paper's choice) versus
   per-transition keys — coarser keys merge distinct control paths, so
   the variance filter must reject branchy transitions and the hit
   rate collapses (or, if forced, the error grows).
3. **Combined techniques**: the paper's overall claim spans "8X to
   87X" across techniques; this table lines the strategies up on one
   workload.
"""

from repro.core import PowerCoEstimator
from repro.core.caching import CachingStrategy, EnergyCacheConfig
from repro.master.master import MasterConfig, SimulationMaster
from repro.sw.power_model import InstructionPowerModel

from benchmarks.common import (
    emit,
    format_table,
    tcpip_run,
    write_result,
)
from benchmarks.bench_fig4_histograms import build_system, make_config, stimuli


def run_threshold_ablation():
    """Thresholds on the DSP-like (data-dependent) workload."""
    reference = SimulationMaster(build_system(), config=make_config())
    reference.run(stimuli())
    reference_energy = reference.total_energy()

    rows = []
    for label, config in (
        ("conservative (v=0.002, n=5)",
         EnergyCacheConfig(thresh_variance=0.002, thresh_iss_calls=5)),
        ("default (v=0.02, n=3)", EnergyCacheConfig()),
        ("aggressive (v=1.0, n=1)",
         EnergyCacheConfig(thresh_variance=1.0, thresh_iss_calls=1)),
        ("per-transition key",
         EnergyCacheConfig(granularity="transition")),
        ("per-transition, aggressive",
         EnergyCacheConfig(thresh_variance=1.0, thresh_iss_calls=1,
                           granularity="transition")),
    ):
        strategy = CachingStrategy(config)
        master = SimulationMaster(build_system(), strategy, make_config())
        master.run(stimuli())
        error = abs(master.total_energy() - reference_energy)
        error_pct = error / reference_energy * 100.0
        rows.append((label, strategy, error_pct))
    return reference_energy, rows


def run_strategy_lineup(dma=4):
    lineup = []
    full = tcpip_run(dma, "full").report
    for strategy in ("full", "caching", "sampling", "macromodel"):
        report = tcpip_run(dma, strategy).report
        lineup.append((strategy, report, report.speedup_over(full),
                       report.energy_error_vs(full)))
    return lineup


def test_ablation_caching_parameters(benchmark, capsys):
    reference_energy, rows = benchmark.pedantic(
        run_threshold_ablation, rounds=1, iterations=1
    )
    rendered = []
    results = {}
    for label, strategy, error_pct in rows:
        stats = strategy.statistics()
        rendered.append([
            label,
            "%d" % stats["cache_hits"],
            "%d" % stats["low_level_calls"],
            "%.3f%%" % error_pct,
        ])
        results[label] = (stats["cache_hits"], stats["low_level_calls"],
                          error_pct)
    table = format_table(
        ["configuration", "cache hits", "ISS calls", "energy error"],
        rendered,
        "Ablation: caching thresholds and key granularity "
        "(DSP-like power model, reference %.3e J)" % reference_energy,
    )
    emit(capsys, "\n" + table)
    write_result("ablation_caching", table)

    conservative = results["conservative (v=0.002, n=5)"]
    aggressive = results["aggressive (v=1.0, n=1)"]
    default = results["default (v=0.02, n=3)"]
    # Aggressiveness buys hits and costs accuracy.
    assert aggressive[0] > default[0] >= conservative[0]
    assert aggressive[2] > conservative[2]
    assert conservative[2] < 0.5
    # Per-transition keys merge distinct control paths into one entry.
    # If the first few executions happen to take the same path, the
    # entry qualifies and then *mis-serves* every other path — the
    # error grows well beyond the per-path configuration's.  This is
    # precisely why the paper caches per execution path.
    assert results["per-transition key"][2] > default[2]


def test_ablation_strategy_lineup(benchmark, capsys):
    lineup = benchmark.pedantic(run_strategy_lineup, rounds=1, iterations=1)
    rendered = []
    for name, report, speedup, error in lineup:
        rendered.append([
            name,
            "%.3f" % report.wall_seconds,
            "%.1fx" % speedup,
            "%.3f%%" % error,
            "%d" % report.iss_invocations,
            "%d" % report.hw_invocations,
        ])
    table = format_table(
        ["strategy", "CPU (s)", "speedup", "energy error",
         "ISS calls", "gate-level calls"],
        rendered,
        "Ablation: acceleration techniques side by side (TCP/IP, DMA=4)",
    )
    emit(capsys, "\n" + table)
    write_result("ablation_lineup", table)

    by_name = {row[0]: row for row in lineup}
    # The paper's ordering: macro-modeling fastest, then sampling /
    # caching, with accuracy ordered the other way.
    assert by_name["macromodel"][2] >= by_name["caching"][2] * 0.9
    assert by_name["caching"][3] < by_name["macromodel"][3]
    assert by_name["macromodel"][1].iss_invocations == 0

"""Hot-path cache effectiveness: cold vs. warm co-estimation runs.

Five process-wide caches accelerate repeated co-estimation of the same
(or structurally similar) systems — the iterative exploration regime of
Section 5.3:

* the compiled-simulator cache (netlist -> generated eval functions),
* the synthesis cache (CFSM -> netlist),
* the codegen cache (CFSM -> compiled program),
* the ISS decode cache (program -> decoded/dispatch tables),
* the hardware run memo (exact-state gate-level run replay).

This benchmark measures one cold run (empty caches) against warm
reruns and records the standardized ``BENCH_caching.json`` snapshot:
wall times, speedup, and per-cache hit/miss counters.
"""

import time

from repro.core import PowerCoEstimator
from repro.hw.estimator import HW_RUN_MEMO_STATS
from repro.hw.logicsim import COMPILE_CACHE_STATS
from repro.hw.synth import SYNTH_CACHE_STATS
from repro.sw.codegen import CODEGEN_CACHE_STATS
from repro.sw.iss import DECODE_CACHE_STATS
from repro.systems import tcpip

from benchmarks.common import clear_process_caches, emit, write_bench

NUM_PACKETS = 3
PACKET_PERIOD_NS = 30_000.0
WARM_RUNS = 3

_CACHES = {
    "compile": COMPILE_CACHE_STATS,
    "synth": SYNTH_CACHE_STATS,
    "codegen": CODEGEN_CACHE_STATS,
    "iss_decode": DECODE_CACHE_STATS,
    "hw_run_memo": HW_RUN_MEMO_STATS,
}


def _run_once():
    bundle = tcpip.build_system(
        dma_block_words=16,
        num_packets=NUM_PACKETS,
        packet_period_ns=PACKET_PERIOD_NS,
    )
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    started = time.perf_counter()
    result = estimator.estimate(bundle.stimuli(), strategy="caching")
    return time.perf_counter() - started, result.report.total_energy_j


def test_cache_cold_vs_warm(capsys):
    clear_process_caches()
    cold_s, cold_energy = _run_once()
    cold_stats = {name: stats.snapshot() for name, stats in _CACHES.items()}

    warm_times = []
    for _ in range(WARM_RUNS):
        warm_s, warm_energy = _run_once()
        warm_times.append(warm_s)
        # Caching must never change the answer: warm reruns replay the
        # identical simulation through the memo.
        assert warm_energy == cold_energy
    best_warm_s = min(warm_times)
    warm_stats = {name: stats.snapshot() for name, stats in _CACHES.items()}

    payload = {
        "experiment": "caching_hotpath",
        "workload": {
            "system": "tcpip",
            "dma_block_words": 16,
            "num_packets": NUM_PACKETS,
            "packet_period_ns": PACKET_PERIOD_NS,
        },
        "cold": {"wall_seconds": cold_s, "cache_stats": cold_stats},
        "warm": {
            "wall_seconds_best": best_warm_s,
            "wall_seconds_all": warm_times,
            "runs": WARM_RUNS,
            "cache_stats_cumulative": warm_stats,
            "speedup_vs_cold": cold_s / best_warm_s,
        },
    }
    path = write_bench("caching", payload)
    emit(capsys,
         "\ncaching hot path: cold %.3fs, best warm %.3fs (%.2fx) -> %s"
         % (cold_s, best_warm_s, cold_s / best_warm_s, path))

    # Warm runs must actually hit: every cache family that saw misses
    # cold sees hits warm.
    for name in ("compile", "synth", "codegen", "iss_decode", "hw_run_memo"):
        assert warm_stats[name]["hits"] > cold_stats[name]["hits"], name
    assert cold_s / best_warm_s > 1.0

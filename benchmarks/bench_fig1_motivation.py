"""Figure 1(b): separate estimation vs. power co-estimation.

Paper's numbers (energy to process a fixed amount of data):

    =========  ============  ============
               producer (J)  consumer (J)
    separate   6.97e-5       2.58e-9
    co-est     6.97e-5       6.75e-9
    =========  ============  ============

i.e. the producer is estimated identically by both flows while the
consumer is under-estimated by ~62% when the components are analyzed
separately.  We reproduce the *shape*: exact agreement on the producer
and a large (tens of percent) under-estimation of the timing-sensitive
consumer.
"""

import pytest

from repro.core import PowerCoEstimator, SeparateEstimator
from repro.systems import producer_consumer

from benchmarks.common import emit, format_table, write_result

NUM_PACKETS = 4


def run_experiment():
    bundle = producer_consumer.build_system(num_packets=NUM_PACKETS)
    coest = PowerCoEstimator(bundle.network, bundle.config).estimate(
        bundle.stimuli(), strategy="full"
    )
    separate = SeparateEstimator(bundle.network, bundle.config).estimate(
        bundle.stimuli()
    )
    return coest, separate


def test_fig1_separate_vs_coestimation(benchmark, capsys):
    coest, separate = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    producer_sep = separate.component_energy("producer")
    producer_co = coest.report.component_energy("producer")
    consumer_sep = separate.component_energy("consumer")
    consumer_co = coest.report.component_energy("consumer")
    underestimation = separate.underestimation_vs(coest.report, "consumer")

    rows = [
        ["separate", "%.3e" % producer_sep, "%.3e" % consumer_sep],
        ["co-est", "%.3e" % producer_co, "%.3e" % consumer_co],
        ["", "", ""],
        ["paper separate", "6.97e-05", "2.58e-09"],
        ["paper co-est", "6.97e-05", "6.75e-09"],
        ["", "", ""],
        ["consumer under-estimation",
         "%.1f%% (paper: ~62%%)" % underestimation, ""],
    ]
    table = format_table(
        ["flow", "producer energy (J)", "consumer energy (J)"],
        rows,
        "Figure 1(b): why co-estimation is necessary",
    )
    emit(capsys, "\n" + table)
    write_result("fig1b_motivation", table)

    # Shape assertions (the paper's qualitative claims).
    assert producer_sep == pytest.approx(producer_co, rel=1e-6), (
        "timing-independent producer must agree between flows"
    )
    assert 40.0 < underestimation < 80.0, (
        "separate estimation must badly under-estimate the consumer"
    )
    assert producer_co > 100 * consumer_co, (
        "producer dominates consumer as in the paper's magnitudes"
    )

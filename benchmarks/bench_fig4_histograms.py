"""Figure 4(b): per-path energy histograms.

The paper shows two paths through one code fragment: the histogram of
path 1,4,7,8 is tightly clustered around its mean (cacheable), while
path 1,3,6,8 is spread out (its energy varies across executions, so
the variance threshold keeps it on the ISS).

We reproduce this with a data-dependent (DSP-like) instruction power
model and a transition whose taken branch runs a data-dependent loop:

* the straight-line path's energy varies only with operand values —
  a concentrated histogram;
* the loop path's energy varies with the iteration count — a
  spread-out histogram;

and we verify the energy-caching consequence: under the default
thresholds the concentrated path is served from the cache while the
spread-out path keeps invoking the ISS.
"""

import statistics

from repro.analysis.stats import Histogram
from repro.bus.model import BusParameters
from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.expr import add, band, const, eq, event_value, mul, var
from repro.cfsm.model import Implementation
from repro.cfsm.sgraph import assign, if_, loop
from repro.core.caching import CachingStrategy, EnergyCacheConfig
from repro.master.master import MasterConfig, SimulationMaster
from repro.sw.power_model import InstructionPowerModel
from repro.systems import workloads

from benchmarks.common import RecordingStrategy, emit, write_result

NUM_EVENTS = 240


def build_system():
    builder = NetworkBuilder("fig4")
    worker = builder.cfsm("worker", mapping=Implementation.SW)
    worker.input("DATA", has_value=True)
    worker.var("acc", 0)
    worker.var("n", 0)
    worker.transition("frag", trigger=["DATA"], body=[
        if_(eq(band(event_value("DATA"), const(1)), const(1)), [
            # Path "1,3,6,8": data-dependent loop -> spread-out energy.
            assign("n", band(event_value("DATA"), const(31))),
            loop(var("n"), [
                assign("acc", band(add(var("acc"), event_value("DATA")),
                                   const(0xFFFF))),
            ]),
        ], [
            # Path "1,4,7,8": straight-line -> concentrated energy.
            assign("acc", band(add(mul(event_value("DATA"), const(3)),
                                   const(7)), const(0xFFFF))),
        ]),
    ])
    builder.environment_input("DATA")
    return builder.build()


def make_config():
    return MasterConfig(
        bus_params=BusParameters(),
        power_model=InstructionPowerModel.dsp_like(),
    )


def stimuli():
    import random
    rng = random.Random(42)
    return [
        workloads.Event("DATA", value=rng.randint(0, 0xFFFF),
                        time=200.0 + 4000.0 * i)
        for i in range(NUM_EVENTS)
    ]


def run_experiment():
    network = build_system()
    recorder = RecordingStrategy()
    master = SimulationMaster(network, recorder, make_config())
    master.run(stimuli())
    by_path = recorder.energies_for("worker", "frag")
    assert len(by_path) == 2, "expected exactly two control paths"
    paths = sorted(by_path.items(), key=lambda kv: statistics.pvariance(kv[1]))
    low_variance = paths[0][1]
    high_variance = paths[1][1]

    # Caching consequence, measured with the real strategy.
    caching = CachingStrategy(EnergyCacheConfig())
    master_cached = SimulationMaster(build_system(), caching, make_config())
    master_cached.run(stimuli())
    return low_variance, high_variance, caching


def test_fig4_energy_histograms(benchmark, capsys):
    low, high, caching = benchmark.pedantic(run_experiment, rounds=1,
                                            iterations=1)

    low_hist = Histogram.of([e * 1e9 for e in low], bins=12)
    high_hist = Histogram.of([e * 1e9 for e in high], bins=12)
    low_cv = statistics.pstdev(low) / statistics.fmean(low)
    high_cv = statistics.pstdev(high) / statistics.fmean(high)

    text = "\n".join([
        "Figure 4(b): energy histograms (energies in nJ)",
        "",
        "Low-variance path (straight line, like path 1,4,7,8):",
        low_hist.render(),
        "  samples=%d  cv=%.4f  spread=%.3f" % (len(low), low_cv,
                                                low_hist.spread_score()),
        "",
        "High-variance path (data-dependent loop, like path 1,3,6,8):",
        high_hist.render(),
        "  samples=%d  cv=%.4f  spread=%.3f" % (len(high), high_cv,
                                                high_hist.spread_score()),
        "",
        "Energy-caching consequence (default thresholds):",
        "  cache hits: %d   low-level calls: %d   distinct paths: %d" % (
            caching.cache.hits, caching.cache.low_level_calls,
            caching.cache.paths),
    ])
    emit(capsys, "\n" + text)
    write_result("fig4b_histograms", text)

    # The qualitative contrast of Figure 4(b).
    assert len(low) > 30 and len(high) > 30
    assert high_cv > 5 * low_cv
    assert high_hist.spread_score() > low_hist.spread_score()
    # Caching serves the concentrated path but keeps simulating the
    # spread-out one: hits happen, but far fewer than executions.
    assert caching.cache.hits > 0
    assert caching.cache.low_level_calls > len(high) * 0.8

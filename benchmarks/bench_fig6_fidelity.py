"""Figure 6: relative accuracy ("tracking fidelity") of macro-modeling.

The paper plots, for the TCP/IP subsystem at each DMA size, the system
energy estimated with macro-modeling against the energy from the
unaccelerated framework, and observes that (i) the ranking of the
configurations is preserved and (ii) the relationship is close to
linear.  Both properties are asserted here, with the same six DMA
configurations.
"""

from repro.analysis.stats import (
    linear_fit,
    ranking_preserved,
    spearman_rank_correlation,
)

from benchmarks.common import (
    TABLE_DMA_SIZES,
    emit,
    format_table,
    tcpip_run,
    write_result,
)


def run_experiment():
    reference = []
    macro = []
    for dma in TABLE_DMA_SIZES:
        reference.append(tcpip_run(dma, "full").report.total_energy_j)
        macro.append(tcpip_run(dma, "macromodel").report.total_energy_j)
    return reference, macro


def test_fig6_relative_accuracy(benchmark, capsys):
    reference, macro = benchmark.pedantic(run_experiment, rounds=1,
                                          iterations=1)

    rho = spearman_rank_correlation(reference, macro)
    slope, intercept, r = linear_fit(reference, macro)
    preserved = ranking_preserved(reference, macro)

    rows = []
    for dma, ref_e, mac_e in zip(TABLE_DMA_SIZES, reference, macro):
        rows.append([
            str(dma),
            "%.1f" % (ref_e * 1e9),
            "%.1f" % (mac_e * 1e9),
        ])
    rows.append(["", "", ""])
    rows.append(["rank corr (rho)", "%.4f" % rho, "paper: ranking preserved"])
    rows.append(["linear fit r", "%.4f" % r, "paper: near-linear"])
    rows.append(["fit slope", "%.3f" % slope, ""])
    table = format_table(
        ["DMA size", "original (nJ)", "macro-model (nJ)"],
        rows,
        "Figure 6: macro-model energy vs. original energy",
    )
    emit(capsys, "\n" + table)
    write_result("fig6_fidelity", table)

    # The paper's two observations.
    assert preserved, "macro-modeling must preserve configuration ranking"
    assert rho == 1.0
    assert r > 0.98, "relationship must be near-linear (r=%.4f)" % r
    assert slope > 0

"""Figure 7: exhaustive communication-architecture exploration.

The paper sweeps all meaningful arbitration-priority assignments of the
three bus masters (6 permutations) and DMA sizes 2..128 (7 values) for
the TCP/IP subsystem processing 3 network packets, with Vdd = 3.3 V,
Cbit = 10 nF, and 8-bit address/data buses, and reports:

* the energy surface over (priority assignment, DMA size),
* a minimum at DMA size 128 with priorities Create_Pack > IP_Check >
  Checksum (descending),
* about 180 minutes of exploration time on their workstation.

(The caption says 48 design points; 6 x 7 = 42 — we sweep the full
cross product.)  Packets arrive faster than they are processed so the
three masters genuinely contend for the bus; energy-caching accelerates
the sweep, which is exactly the iterative-exploration use case the
paper builds the speedup techniques for.
"""

from repro.core import DesignSpaceExplorer
from repro.core.explorer import priority_label, priority_permutations
from repro.systems import tcpip

from benchmarks.common import emit, format_table, write_result

DMA_SIZES = (2, 4, 8, 16, 32, 64, 128)
NUM_PACKETS = 3
PACKET_PERIOD_NS = 30_000.0


def run_experiment():
    bundle = tcpip.build_system(
        dma_block_words=2,  # rebuilt per point by the explorer
        num_packets=NUM_PACKETS,
        packet_period_ns=PACKET_PERIOD_NS,
    )
    assignments = priority_permutations(list(tcpip.BUS_MASTERS))

    points = []
    for priorities in assignments:
        for dma in DMA_SIZES:
            # The DMA size is baked into the handshake logic as well as
            # the bus parameters, so rebuild the bundle per point (the
            # paper's tool re-runs without recompiling; our network
            # construction is the cheap part).
            point_bundle = tcpip.build_system(
                dma_block_words=dma,
                num_packets=NUM_PACKETS,
                packet_period_ns=PACKET_PERIOD_NS,
                priorities=priorities,
            )
            explorer = DesignSpaceExplorer(
                point_bundle.network, point_bundle.config,
                point_bundle.stimuli_factory,
            )
            points.append(explorer.evaluate(dma, priorities,
                                            strategy="caching"))
    return points


def test_fig7_design_space_exploration(benchmark, capsys):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert len(points) == 42

    by_priority = {}
    for point in points:
        by_priority.setdefault(point.priority_label, {})[
            point.dma_block_words] = point.total_energy_j

    rows = []
    for label in sorted(by_priority):
        row = [label]
        for dma in DMA_SIZES:
            row.append("%.2f" % (by_priority[label][dma] * 1e6))
        rows.append(row)
    table = format_table(
        ["priority assignment \\ DMA"] + [str(d) for d in DMA_SIZES],
        rows,
        "Figure 7: energy (uJ) vs. priority assignment and DMA size "
        "(%d packets)" % NUM_PACKETS,
    )

    best = DesignSpaceExplorer.minimum_energy_point(points)
    summary = (
        "\nminimum-energy point: DMA=%d, priorities: %s (%.3f uJ)\n"
        "paper's minimum:      DMA=128, priorities: create_pack > "
        "ip_check > checksum" % (
            best.dma_block_words, best.priority_label,
            best.total_energy_j * 1e6,
        )
    )
    emit(capsys, "\n" + table + summary)
    write_result("fig7_exploration", table + summary)

    # Energy falls monotonically with DMA size for every priority
    # assignment, and the global minimum sits at the largest DMA size —
    # the paper's headline observation.
    for label, series in by_priority.items():
        energies = [series[dma] for dma in DMA_SIZES]
        assert all(a >= b for a, b in zip(energies, energies[1:])), (
            label, energies)
    assert best.dma_block_words == 128

    # Priorities matter: at the smallest DMA size the spread across
    # assignments is non-zero (the masters contend for the bus).
    smallest = [by_priority[label][2] for label in by_priority]
    assert max(smallest) > min(smallest)

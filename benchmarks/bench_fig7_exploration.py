"""Figure 7: exhaustive communication-architecture exploration.

The paper sweeps all meaningful arbitration-priority assignments of the
three bus masters (6 permutations) and DMA sizes 2..128 (7 values) for
the TCP/IP subsystem processing 3 network packets, with Vdd = 3.3 V,
Cbit = 10 nF, and 8-bit address/data buses, and reports:

* the energy surface over (priority assignment, DMA size),
* a minimum at DMA size 128 with priorities Create_Pack > IP_Check >
  Checksum (descending),
* about 180 minutes of exploration time on their workstation.

(The caption says 48 design points; 6 x 7 = 42 — we sweep the full
cross product.)  Packets arrive faster than they are processed so the
three masters genuinely contend for the bus; energy-caching accelerates
the sweep, which is exactly the iterative-exploration use case the
paper builds the speedup techniques for.
"""

import time

from repro.core import DesignSpaceExplorer
from repro.core.explorer import (
    parallel_sweep,
    priority_label,
    priority_permutations,
)
from repro.parallel import PoolStats
from repro.systems import tcpip

from benchmarks.common import (
    clear_process_caches,
    emit,
    format_table,
    write_bench,
    write_result,
)

DMA_SIZES = (2, 4, 8, 16, 32, 64, 128)
NUM_PACKETS = 3
PACKET_PERIOD_NS = 30_000.0

#: Acceptance floor for the parallel+cached sweep over the emulated
#: pre-caching sequential baseline.
SPEEDUP_TARGET = 2.5


def run_experiment(emulate_seed_baseline=False):
    bundle = tcpip.build_system(
        dma_block_words=2,  # rebuilt per point by the explorer
        num_packets=NUM_PACKETS,
        packet_period_ns=PACKET_PERIOD_NS,
    )
    assignments = priority_permutations(list(tcpip.BUS_MASTERS))

    points = []
    for priorities in assignments:
        for dma in DMA_SIZES:
            # The DMA size is baked into the handshake logic as well as
            # the bus parameters, so rebuild the bundle per point (the
            # paper's tool re-runs without recompiling; our network
            # construction is the cheap part).
            if emulate_seed_baseline:
                clear_process_caches()
            point_bundle = tcpip.build_system(
                dma_block_words=dma,
                num_packets=NUM_PACKETS,
                packet_period_ns=PACKET_PERIOD_NS,
                priorities=priorities,
            )
            explorer = DesignSpaceExplorer(
                point_bundle.network, point_bundle.config,
                point_bundle.stimuli_factory,
            )
            points.append(explorer.evaluate(dma, priorities,
                                            strategy="caching"))
    return points


def test_fig7_design_space_exploration(benchmark, capsys):
    points = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert len(points) == 42

    by_priority = {}
    for point in points:
        by_priority.setdefault(point.priority_label, {})[
            point.dma_block_words] = point.total_energy_j

    rows = []
    for label in sorted(by_priority):
        row = [label]
        for dma in DMA_SIZES:
            row.append("%.2f" % (by_priority[label][dma] * 1e6))
        rows.append(row)
    table = format_table(
        ["priority assignment \\ DMA"] + [str(d) for d in DMA_SIZES],
        rows,
        "Figure 7: energy (uJ) vs. priority assignment and DMA size "
        "(%d packets)" % NUM_PACKETS,
    )

    best = DesignSpaceExplorer.minimum_energy_point(points)
    summary = (
        "\nminimum-energy point: DMA=%d, priorities: %s (%.3f uJ)\n"
        "paper's minimum:      DMA=128, priorities: create_pack > "
        "ip_check > checksum" % (
            best.dma_block_words, best.priority_label,
            best.total_energy_j * 1e6,
        )
    )
    emit(capsys, "\n" + table + summary)
    write_result("fig7_exploration", table + summary)

    # Energy falls monotonically with DMA size for every priority
    # assignment, and the global minimum sits at the largest DMA size —
    # the paper's headline observation.
    for label, series in by_priority.items():
        energies = [series[dma] for dma in DMA_SIZES]
        assert all(a >= b for a, b in zip(energies, energies[1:])), (
            label, energies)
    assert best.dma_block_words == 128

    # Priorities matter: at the smallest DMA size the spread across
    # assignments is non-zero (the masters contend for the bus).
    smallest = [by_priority[label][2] for label in by_priority]
    assert max(smallest) > min(smallest)


def test_fig7_parallel_speedup(capsys):
    """Sequential pre-caching baseline vs. cached/parallel sweeps.

    The baseline clears every process-wide cache before each point,
    emulating the seed's sequential path (each design point re-compiled
    the netlist, re-decoded the programs, and re-simulated every
    recurring hardware run from scratch).  The accelerated sweeps keep
    the caches and, for ``jobs=4``, fan points out over the process
    pool.  Outputs must agree exactly; wall-clock must improve by at
    least ``SPEEDUP_TARGET``.
    """
    assignments = priority_permutations(list(tcpip.BUS_MASTERS))
    builder_kwargs = {
        "num_packets": NUM_PACKETS,
        "packet_period_ns": PACKET_PERIOD_NS,
    }

    started = time.perf_counter()
    baseline_points = run_experiment(emulate_seed_baseline=True)
    baseline_s = time.perf_counter() - started
    clear_process_caches()

    started = time.perf_counter()
    sequential_points = run_experiment()
    sequential_s = time.perf_counter() - started

    stats = PoolStats()
    started = time.perf_counter()
    parallel_points, job_results = parallel_sweep(
        "repro.systems.tcpip:build_system",
        DMA_SIZES,
        assignments,
        strategy="caching",
        jobs=4,
        builder_kwargs=builder_kwargs,
        stats=stats,
    )
    parallel_s = time.perf_counter() - started

    assert all(result.ok for result in job_results)

    def energies(points):
        return [
            (p.dma_block_words, p.priority_label, p.report.total_energy_j)
            for p in points
        ]

    assert energies(sequential_points) == energies(baseline_points)
    assert energies(parallel_points) == energies(baseline_points)

    num_points = len(baseline_points)
    payload = {
        "experiment": "fig7_exploration",
        "workload": {
            "num_packets": NUM_PACKETS,
            "packet_period_ns": PACKET_PERIOD_NS,
            "dma_sizes": list(DMA_SIZES),
            "priority_assignments": len(assignments),
            "points": num_points,
        },
        "baseline": {
            "description": "sequential, all process caches cleared "
                           "per point (pre-caching code path)",
            "wall_seconds": baseline_s,
            "points_per_second": num_points / baseline_s,
        },
        "sequential_cached": {
            "wall_seconds": sequential_s,
            "points_per_second": num_points / sequential_s,
            "speedup_vs_baseline": baseline_s / sequential_s,
        },
        "parallel_jobs4": {
            "wall_seconds": parallel_s,
            "points_per_second": num_points / parallel_s,
            "speedup_vs_baseline": baseline_s / parallel_s,
            "workers": stats.workers,
            "retries": stats.retries,
        },
        "speedup_target": SPEEDUP_TARGET,
    }
    path = write_bench("explorer", payload)
    emit(capsys,
         "\nfig7 sweep (%d points): baseline %.2fs, cached %.2fs "
         "(%.2fx), jobs=4 %.2fs (%.2fx) -> %s"
         % (num_points, baseline_s, sequential_s, baseline_s / sequential_s,
            parallel_s, baseline_s / parallel_s, path))

    assert baseline_s / parallel_s >= SPEEDUP_TARGET

"""HW/SW partition ranking (paper, end of Section 5.2).

"We have obtained similar results in various other experiments (e.g.
by attempting to rank several different HW/SW partitions)."

This bench evaluates every feasible partition of the Figure 1 system's
timer and consumer (the producer's multiply keeps it in software) with
full co-estimation and with macro-modeling, and checks the paper's
claim: the cheap macro-model ranks the partitions the same way the
reference does.
"""

from repro.analysis.stats import spearman_rank_correlation
from repro.core import PartitionExplorer
from repro.systems import producer_consumer

from benchmarks.common import emit, format_table, write_result

ASSIGNMENTS = [
    {"timer": "hw", "consumer": "hw"},
    {"timer": "hw", "consumer": "sw"},
    {"timer": "sw", "consumer": "hw"},
    {"timer": "sw", "consumer": "sw"},
]


def run_experiment():
    bundle = producer_consumer.build_system(num_packets=3)
    explorer = PartitionExplorer(bundle.network, bundle.config,
                                 bundle.stimuli_factory)
    full_points = explorer.sweep(ASSIGNMENTS, strategy="full")
    macro_points = explorer.sweep(ASSIGNMENTS, strategy="macromodel")
    return full_points, macro_points


def test_partition_ranking_fidelity(benchmark, capsys):
    full_points, macro_points = benchmark.pedantic(run_experiment, rounds=1,
                                                   iterations=1)

    full_energy = {p.label: p.total_energy_j for p in full_points}
    macro_energy = {p.label: p.total_energy_j for p in macro_points}
    labels = sorted(full_energy)

    rows = []
    for rank, point in enumerate(PartitionExplorer.ranking(full_points), 1):
        rows.append([
            str(rank),
            point.label,
            "%.2f" % (full_energy[point.label] * 1e6),
            "%.2f" % (macro_energy[point.label] * 1e6),
        ])
    rho = spearman_rank_correlation(
        [full_energy[label] for label in labels],
        [macro_energy[label] for label in labels],
    )
    rows.append(["", "", "", ""])
    rows.append(["rank correlation", "%.3f" % rho, "", ""])
    table = format_table(
        ["rank (full)", "partition", "full (uJ)", "macro-model (uJ)"],
        rows,
        "HW/SW partition ranking: full co-estimation vs. macro-modeling",
    )
    emit(capsys, "\n" + table)
    write_result("partition_ranking", table)

    # Macro-modeling preserves the full-reference partition ranking.
    full_order = [p.label for p in PartitionExplorer.ranking(full_points)]
    macro_order = [p.label for p in PartitionExplorer.ranking(macro_points)]
    assert full_order == macro_order
    assert rho > 0.999
    # All-hardware is the energy-optimal partition: hardware blocks are
    # cheaper than time on the shared embedded processor.
    assert full_order[0] == "consumer:hw,timer:hw"
    # And macro-modeling stays conservative per partition.
    for label in labels:
        assert macro_energy[label] > full_energy[label] * 0.95
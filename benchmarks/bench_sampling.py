"""Section 4.3: statistical sampling / K-memory dynamic compaction.

The paper describes the technique but reports no dedicated table; its
contribution is included in the overall "8X to 87X" speedup claim.
This bench characterizes the accuracy/efficiency trade-off the
compaction period controls: larger periods dispatch a smaller fraction
of the stream to the low-level simulators (higher speedup) at a small,
bounded energy error.
"""

from repro.core import PowerCoEstimator
from repro.core.sampling import SamplingStrategy
from repro.systems import tcpip

from benchmarks.common import (
    NUM_PACKETS,
    PACKET_SIZE_RANGE,
    emit,
    format_table,
    tcpip_run,
    write_result,
)

PERIODS = (2, 4, 8, 16)
DMA = 4


def run_experiment():
    full = tcpip_run(DMA, "full").report
    bundle = tcpip.build_system(
        dma_block_words=DMA, num_packets=NUM_PACKETS,
        size_range=PACKET_SIZE_RANGE,
    )
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    rows = []
    for period in PERIODS:
        strategy = SamplingStrategy(period=period, warmup=2)
        run = estimator.estimate(bundle.stimuli(), strategy=strategy)
        rows.append((period, run.report))
    return full, rows


def test_sampling_compaction_tradeoff(benchmark, capsys):
    full, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rendered = []
    errors = []
    ratios = []
    speedups = []
    for period, report in rows:
        error = report.energy_error_vs(full)
        ratio = report.strategy_stats["compaction_ratio"]
        speedup = report.speedup_over(full)
        errors.append(error)
        ratios.append(ratio)
        speedups.append(speedup)
        rendered.append([
            str(period),
            "%.3f" % ratio,
            "%.3f" % report.wall_seconds,
            "%.1f" % speedup,
            "%.3f%%" % error,
        ])
    table = format_table(
        ["period K", "dispatch ratio", "CPU (s)", "speedup", "energy err"],
        rendered,
        "Section 4.3: K-memory dynamic compaction on the TCP/IP system "
        "(DMA=%d, full baseline %.3fs)" % (DMA, full.wall_seconds),
    )
    emit(capsys, "\n" + table)
    write_result("sampling_compaction", table)

    # Larger periods dispatch less of the stream...
    assert all(a >= b for a, b in zip(ratios, ratios[1:])), ratios
    # ...for a bounded energy error (the stream is stationary, so the
    # bigram-preserving subsample stays representative).
    assert all(e < 5.0 for e in errors), errors
    # And the technique is a genuine speedup at every period.
    assert all(s > 1.0 for s in speedups), speedups


def _compaction_errors(signatures, energies, period):
    from repro.core.sampling import KMemoryCompactor, StaticCompactor

    exact = sum(energies)
    static_est = StaticCompactor(1.0 / period).estimate_total(
        signatures, energies
    )
    dynamic = KMemoryCompactor(period=period, warmup=1)
    dynamic_total = 0.0
    for signature, energy in zip(signatures, energies):
        if dynamic.should_dispatch(signature):
            dynamic_total += dynamic.observe(signature, energy)
        else:
            dynamic_total += dynamic.observe(signature, None)
    return (abs(static_est - exact) / exact * 100,
            abs(dynamic_total - exact) / exact * 100)


def run_static_vs_dynamic():
    """Static vs. dynamic compaction on two kinds of streams.

    The paper notes static compaction (whole sequence available) is
    more powerful than dynamic.  Both, however, assume the values
    behind one signature are stationary.  We replay one
    co-simulation's per-transition energies through both compactors:

    * on the *stationary* part of the stream (the repetitive
      handshake transitions of ip_check/checksum) both are accurate;
    * on the *full* stream — which includes create_pack, whose energy
      varies 2x with packet length under a single signature — both
      degrade, which is exactly why the production technique (the
      variance-filtered energy cache, §4.2) checks spread before
      trusting a representative.
    """
    from benchmarks.common import RecordingStrategy
    from repro.master.master import SimulationMaster

    bundle = tcpip.build_system(dma_block_words=DMA, num_packets=NUM_PACKETS,
                                size_range=PACKET_SIZE_RANGE)
    recorder = RecordingStrategy()
    master = SimulationMaster(bundle.network, recorder, bundle.config)
    master.run(bundle.stimuli())

    full_stream = [(key, energy) for key, energy, _ in recorder.samples]
    stationary = [(key, energy) for key, energy in full_stream
                  if key[0] != "create_pack"]

    comparisons = []
    for period in (4, 8, 16):
        stationary_errs = _compaction_errors(
            [k for k, _ in stationary], [e for _, e in stationary], period
        )
        full_errs = _compaction_errors(
            [k for k, _ in full_stream], [e for _, e in full_stream], period
        )
        comparisons.append((period, stationary_errs, full_errs))
    return comparisons


def test_static_vs_dynamic_compaction(benchmark, capsys):
    comparisons = benchmark.pedantic(run_static_vs_dynamic, rounds=1,
                                     iterations=1)
    rendered = [
        [str(period),
         "%.3f%%" % stat[0], "%.3f%%" % stat[1],
         "%.2f%%" % full[0], "%.2f%%" % full[1]]
        for period, stat, full in comparisons
    ]
    table = format_table(
        ["compaction 1/K",
         "static (stationary)", "dynamic (stationary)",
         "static (full)", "dynamic (full)"],
        rendered,
        "Section 4.3: static vs. dynamic compaction; stationary "
        "handshake stream vs. full heavy-tailed stream",
    )
    emit(capsys, "\n" + table)
    write_result("sampling_static_vs_dynamic", table)

    for period, stationary_errs, full_errs in comparisons:
        # On the stationary stream both compactors are accurate.
        assert stationary_errs[0] < 5.0, (period, stationary_errs)
        assert stationary_errs[1] < 5.0, (period, stationary_errs)
        # The heavy-tailed stream degrades whichever compactor is used
        # — the hazard the variance-filtered cache of §4.2 avoids.
        assert max(full_errs) > max(stationary_errs)

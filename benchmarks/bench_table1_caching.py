"""Table 1: speedup and accuracy of energy/delay caching.

Paper's rows (TCP/IP subsystem, varying bus DMA size):

    DMA   Orig. energy (mJ)  Orig. CPU (s)  Caching CPU (s)  Speedup
    2     0.54               8051.52        428.92           18.8
    4     0.44               4023.36        248.13           16.2
    8     0.39               2080.77        156.91           13.3
    16    0.36               1398.77        117.90           11.9
    32    0.35                852.25         90.88            9.4
    64    0.34                680.78         78.88            8.6

Shapes reproduced and asserted here:

* total system energy falls monotonically as DMA size grows,
* caching speedup is largest at small DMA sizes (most transitions) and
  decreases monotonically toward large DMA sizes,
* caching introduces essentially no energy error (the instruction power
  model is data-independent; the residual comes only from hardware
  data-dependence below the variance threshold).

Absolute CPU seconds are not comparable (their Sun Ultra 450 ran
gate-level SIS and SPARCsim; we run pure-Python simulators), but the
speedup *ratios* are the paper's metric and are reproduced in shape.
"""

from benchmarks.common import (
    TABLE_DMA_SIZES,
    emit,
    format_table,
    tcpip_run,
    write_metrics,
    write_result,
)

PAPER_ROWS = {
    2: (0.54, 8051.52, 428.92, 18.8),
    4: (0.44, 4023.36, 248.13, 16.2),
    8: (0.39, 2080.77, 156.91, 13.3),
    16: (0.36, 1398.77, 117.90, 11.9),
    32: (0.35, 852.25, 90.88, 9.4),
    64: (0.34, 680.78, 78.88, 8.6),
}


def run_experiment():
    rows = []
    for dma in TABLE_DMA_SIZES:
        full = tcpip_run(dma, "full").report
        cached = tcpip_run(dma, "caching").report
        rows.append((dma, full, cached))
    return rows


def test_table1_caching_speedup(benchmark, capsys):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rendered = []
    energies = []
    speedups = []
    errors = []
    for dma, full, cached in results:
        speedup = cached.speedup_over(full)
        error = cached.energy_error_vs(full)
        energies.append(full.total_energy_j)
        speedups.append(speedup)
        errors.append(error)
        paper = PAPER_ROWS[dma]
        rendered.append([
            str(dma),
            "%.4f" % (full.total_energy_j * 1e3),
            "%.3f" % full.wall_seconds,
            "%.3f" % cached.wall_seconds,
            "%.1f" % speedup,
            "%.4f%%" % error,
            "%.2f / %.1fx" % (paper[0], paper[3]),
        ])
    table = format_table(
        ["DMA", "energy (mJ)", "orig CPU (s)", "caching CPU (s)",
         "speedup", "energy err", "paper (mJ / speedup)"],
        rendered,
        "Table 1: speedup and accuracy of the caching approach",
    )
    emit(capsys, "\n" + table)
    write_result("table1_caching", table)
    for dma, _, _ in results:
        run = tcpip_run(dma, "caching")
        if run.metrics is not None:
            write_metrics("table1_caching_dma%d" % dma, run.metrics)

    # Energy falls monotonically with DMA size.
    assert all(a >= b for a, b in zip(energies, energies[1:])), energies
    # Speedup > 1 everywhere and (weakly) decreasing with DMA size:
    # compare the small-DMA half against the large-DMA half to allow
    # wall-clock jitter between adjacent points.
    assert all(s > 1.0 for s in speedups), speedups
    small_half = sum(speedups[:3]) / 3
    large_half = sum(speedups[3:]) / 3
    assert small_half > large_half, speedups
    # "No accuracy loss": error bounded well under a tenth of a percent.
    assert all(e < 0.1 for e in errors), errors

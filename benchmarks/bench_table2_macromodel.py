"""Table 2: speedup and accuracy of software/hardware macro-modeling.

Paper's rows (TCP/IP subsystem, varying bus DMA size):

    DMA   Orig. (mJ)  Orig. CPU (s)  Macro (mJ)  Macro CPU (s)  Speedup  Error
    2     0.54        8051.52        0.72        92.44          87.1     32.9%
    4     0.44        4023.36        0.56        63.46          63.4     27.4%
    8     0.39        2080.77        0.48        48.73          42.7     23.7%
    16    0.36        1398.49        0.44        41.08          34.0     21.6%
    32    0.35         852.25        0.42        37.71          22.6     20.4%
    64    0.34         680.78        0.41        36.02          18.9     19.6%

Shapes reproduced and asserted:

* macro-modeling is always faster than caching-free co-estimation and
  faster than caching (it never invokes a low-level simulator),
* it consistently **over-estimates** (the additive model charges each
  macro-operation its standalone characterization, including the
  pipeline fill a real path pays only once; the hardware aggregate
  model assumes random input activity),
* the error stays in a bounded band of tens of percent.
"""

from benchmarks.common import (
    TABLE_DMA_SIZES,
    emit,
    format_table,
    tcpip_run,
    write_result,
)

PAPER_ROWS = {
    2: (0.72, 92.44, 87.1, 32.9),
    4: (0.56, 63.46, 63.4, 27.4),
    8: (0.48, 48.73, 42.7, 23.7),
    16: (0.44, 41.08, 34.0, 21.6),
    32: (0.42, 37.71, 22.6, 20.4),
    64: (0.41, 36.02, 18.9, 19.6),
}


def run_experiment():
    rows = []
    for dma in TABLE_DMA_SIZES:
        full = tcpip_run(dma, "full").report
        macro = tcpip_run(dma, "macromodel").report
        rows.append((dma, full, macro))
    return rows


def test_table2_macromodel_speedup(benchmark, capsys):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rendered = []
    speedups = []
    errors = []
    sw_errors = []
    overestimates = []
    for dma, full, macro in results:
        speedup = macro.speedup_over(full)
        error = macro.energy_error_vs(full)
        sw_full = full.by_category.get("sw", 0.0)
        sw_macro = macro.by_category.get("sw", 0.0)
        sw_error = (sw_macro - sw_full) / sw_full * 100.0 if sw_full else 0.0
        speedups.append(speedup)
        errors.append(error)
        sw_errors.append(sw_error)
        overestimates.append(macro.total_energy_j > full.total_energy_j)
        paper = PAPER_ROWS[dma]
        rendered.append([
            str(dma),
            "%.4f" % (full.total_energy_j * 1e3),
            "%.3f" % full.wall_seconds,
            "%.4f" % (macro.total_energy_j * 1e3),
            "%.3f" % macro.wall_seconds,
            "%.1f" % speedup,
            "%.1f%%" % error,
            "%.1f%%" % sw_error,
            "%.1fx / %.1f%%" % (paper[2], paper[3]),
        ])
    table = format_table(
        ["DMA", "orig (mJ)", "orig CPU (s)", "macro (mJ)", "macro CPU (s)",
         "speedup", "error", "SW err", "paper (speedup / err)"],
        rendered,
        "Table 2: speedup and accuracy of the macro-modeling approach",
    )
    emit(capsys, "\n" + table)
    write_result("table2_macromodel", table)

    # Macro-modeling is conservative everywhere (paper: over-estimates).
    assert all(overestimates), overestimates
    # Errors live in a bounded tens-of-percent band, as in the paper.
    assert all(5.0 < e < 60.0 for e in errors), errors
    # The software-partition error is largest at the smallest DMA size
    # (many short transitions, each paying the per-statement
    # characterization overhead) — the paper's decreasing error trend.
    assert sw_errors[0] > sw_errors[-1], sw_errors
    # Faster than the baseline everywhere; much faster at small DMA.
    assert all(s > 1.5 for s in speedups), speedups
    # Macro-modeling beats caching at every point (the paper's ordering
    # of the two techniques).
    for dma, _, macro in results:
        cached = tcpip_run(dma, "caching").report
        assert macro.wall_seconds <= cached.wall_seconds * 1.1, dma

"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper.  Full
(unaccelerated) co-estimation runs are memoized per configuration so
that Table 1, Table 2, and Figure 6 — which share the same baselines —
do not re-simulate them.

Results are printed to the terminal (bypassing pytest capture) and
written to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md
can reference stable artifacts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.core import PowerCoEstimator
from repro.core.report import EnergyReport
from repro.estimation import Estimate, EstimationJob, EstimationStrategy
from repro.ioutil import atomic_write_json, atomic_write_text
from repro.systems import tcpip
from repro.telemetry import Telemetry

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Repository root — standardized ``BENCH_*.json`` perf snapshots land
#: here so CI can glob them as artifacts.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The DMA sizes of Tables 1 and 2.
TABLE_DMA_SIZES = (2, 4, 8, 16, 32, 64)

#: Packet workload used for the table experiments.  The paper's
#: Figure 7 caption processes 3 packets; the table experiments use a
#: longer stream so that hot paths repeat even at the largest DMA size
#: (the regime the paper's hour-long traces are in).
NUM_PACKETS = 8
PACKET_SIZE_RANGE = (48, 96)


def write_result(name: str, text: str) -> str:
    """Persist one experiment's rendered table; returns the path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    return atomic_write_text(path, text)


def emit(capsys, text: str) -> None:
    """Print ``text`` to the real terminal despite pytest capture."""
    with capsys.disabled():
        print(text)


def write_bench(name: str, payload: Dict) -> str:
    """Persist a standardized perf snapshot as ``BENCH_<name>.json``.

    The payload should carry at least ``wall_seconds`` numbers plus
    whatever rates/speedups the experiment measured; the file lands in
    the repository root where CI uploads ``BENCH_*.json`` artifacts.
    """
    path = os.path.join(REPO_ROOT, "BENCH_%s.json" % name)
    return atomic_write_json(path, payload)


def clear_process_caches() -> None:
    """Reset every process-wide co-estimation cache (and its stats).

    Running this before each design point emulates the pre-caching
    sequential code path — the baseline the ``BENCH_explorer.json``
    speedups are measured against.
    """
    from repro.hw.estimator import clear_hw_run_memo
    from repro.hw.logicsim import clear_compile_cache
    from repro.hw.synth import clear_synth_cache
    from repro.sw.codegen import clear_codegen_cache
    from repro.sw.iss import clear_decode_cache

    clear_compile_cache()
    clear_synth_cache()
    clear_codegen_cache()
    clear_decode_cache()
    clear_hw_run_memo()


def write_metrics(name: str, snapshot: Dict) -> str:
    """Persist one run's metrics snapshot as JSON; returns the path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".metrics.json")
    return atomic_write_json(path, snapshot)


@lru_cache(maxsize=None)
def tcpip_run(dma: int, strategy: str) -> "FrozenRun":
    """Memoized co-estimation of the TCP/IP system at one DMA size.

    Every run carries a metrics-only telemetry bundle (counters and
    gauges, no span recording) so benchmarks can persist the strategy
    accounting next to the rendered tables.
    """
    bundle = tcpip.build_system(
        dma_block_words=dma,
        num_packets=NUM_PACKETS,
        size_range=PACKET_SIZE_RANGE,
    )
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    telemetry = Telemetry.metrics_only()
    result = estimator.estimate(
        bundle.stimuli(), strategy=strategy, telemetry=telemetry
    )
    return FrozenRun(report=result.report, metrics=telemetry.metrics.snapshot())


@dataclass(frozen=True)
class FrozenRun:
    """Hashable wrapper so lru_cache can hold run results."""

    report: EnergyReport
    metrics: Optional[Dict] = field(default=None, compare=False)


class RecordingStrategy(EstimationStrategy):
    """Full co-estimation that logs every (path key, energy, cycles).

    Used by the Figure 4 experiment to build per-path energy
    histograms from a long co-simulation.
    """

    name = "recording"

    def __init__(self) -> None:
        self.samples: List[Tuple[Tuple, float, int]] = []

    def estimate(self, job: EstimationJob) -> Estimate:
        measured = job.run_low_level()
        self.samples.append((job.path_key, measured.energy, measured.cycles))
        return measured

    def energies_for(self, cfsm: str, transition: str) -> Dict[Tuple, List[float]]:
        """Per-path energy samples of one transition."""
        by_path: Dict[Tuple, List[float]] = {}
        for key, energy, _ in self.samples:
            if key[0] == cfsm and key[1] == transition:
                by_path.setdefault(key[2], []).append(energy)
        return by_path


def format_table(headers: List[str], rows: List[List[str]], title: str) -> str:
    """Fixed-width table rendering shared by all benches."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)

"""Benchmark collection configuration."""

import sys
import os

# Make `benchmarks.common` importable when pytest is invoked from the
# repository root on the benchmarks/ directory.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#!/usr/bin/env python
"""Co-estimating the automotive dashboard controller.

Runs the mixed HW/SW dashboard system (hardware speedometer/odometer,
software belt alarm / fuel gauge / display controller on one embedded
processor) through a driving scenario, compares the estimation
strategies, and shows per-component energy plus the power waveform
around the belt-alarm event — the kind of functional/power correlation
the paper highlights ("peaks in power consumption are associated with
the points in time when the modules handshake with the arbiter").

Run it with::

    python examples/automotive_dashboard.py
"""

from repro.core import PowerCoEstimator
from repro.systems import automotive


def main():
    bundle = automotive.build_system(duration_ns=400_000.0)
    estimator = PowerCoEstimator(bundle.network, bundle.config)

    print("system:", bundle.description)
    print("processes:")
    for name in sorted(bundle.network.cfsms):
        print("  %-14s -> %s" % (name, bundle.network.implementation(name)))

    full = estimator.estimate(bundle.stimuli(), strategy="full")
    print("\n" + full.report.pretty())

    print("\nRTOS statistics (shared embedded processor):")
    for key, value in sorted(full.report.rtos_stats.items()):
        print("  %-18s %g" % (key, value))

    print("\nbus statistics (display refreshes over the shared bus):")
    for key, value in sorted(full.report.bus_stats.items()):
        print("  %-18s %g" % (key, value))

    print("\nstrategy comparison:")
    for strategy in ("caching", "macromodel", "sampling"):
        run = estimator.estimate(bundle.stimuli(), strategy=strategy)
        print("  %-11s %.2fx speedup, %6.2f%% energy error"
              % (strategy,
                 run.report.speedup_over(full.report),
                 run.report.energy_error_vs(full.report)))

    print("\npower waveform (20 us bins):")
    waveform = full.power_waveform(bin_ns=20_000.0)
    peak_time, peak_watts = max(waveform, key=lambda p: p[1])
    for time_ns, watts in waveform:
        bar = "*" * int(watts / (peak_watts or 1.0) * 50)
        print("  %8.0f us  %7.3f mW  %s" % (time_ns / 1e3, watts * 1e3, bar))
    print("peak power %.3f mW at %.0f us"
          % (peak_watts * 1e3, peak_time / 1e3))

    # The paper's observation: power peaks line up with bus handshakes.
    from repro.analysis.correlate import peak_bus_correlation

    correlation = peak_bus_correlation(full.master.accountant,
                                       bin_ns=5_000.0)
    print("\npeak/bus-handshake correlation: %d of %d peak bins contain "
          "arbiter activity (lift %.1fx over a random bin)"
          % (correlation.peak_bins_with_activity, correlation.peak_bins,
             correlation.lift))

    # Export the per-component power traces for a waveform viewer.
    from repro.master.export import export_power_vcd

    with open("dashboard_power.vcd", "w") as handle:
        handle.write(export_power_vcd(full.master.accountant,
                                      bin_ns=5_000.0))
    print("wrote dashboard_power.vcd (open with GTKWave)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: describe a tiny HW/SW system and co-estimate its power.

The system is a two-process pipeline:

* ``filter`` (software): smooths incoming sensor samples,
* ``alarm`` (hardware): compares the smoothed value against a
  threshold and raises an event when it is exceeded.

Run it with::

    python examples/quickstart.py
"""

from repro.cfsm import (
    Implementation,
    NetworkBuilder,
    add,
    assign,
    const,
    div,
    emit,
    event_value,
    gt,
    if_,
    mul,
    var,
)
from repro.core import PowerCoEstimator
from repro.master.master import MasterConfig
from repro.systems import workloads


def build_network():
    """A software filter feeding a hardware threshold alarm."""
    net = NetworkBuilder("quickstart")

    filter_proc = net.cfsm("filter", mapping=Implementation.SW)
    filter_proc.input("SAMPLE", has_value=True)
    filter_proc.output("SMOOTH", has_value=True)
    filter_proc.var("level", 0)
    filter_proc.transition(
        "smooth",
        trigger=["SAMPLE"],
        body=[
            # level := (3*level + sample) / 4
            assign("level", div(add(mul(var("level"), const(3)),
                                    event_value("SAMPLE")), const(4))),
            emit("SMOOTH", var("level")),
        ],
    )

    alarm = net.cfsm("alarm", mapping=Implementation.HW, width=16)
    alarm.input("SMOOTH", has_value=True)
    alarm.output("ALARM", has_value=True)
    alarm.var("armed", 1)
    alarm.transition(
        "check",
        trigger=["SMOOTH"],
        body=[
            if_(gt(event_value("SMOOTH"), const(180)), [
                if_(gt(var("armed"), const(0)), [
                    emit("ALARM", event_value("SMOOTH")),
                    assign("armed", const(0)),
                ]),
            ], [
                assign("armed", const(1)),
            ]),
        ],
    )

    net.environment_input("SAMPLE")
    # The SMOOTH channel rides on the shared system bus.
    net.on_bus("SMOOTH")
    return net.build()


def main():
    network = build_network()
    estimator = PowerCoEstimator(network, MasterConfig())

    # A noisy sensor ramp: the alarm should trip near the end.
    import random
    rng = random.Random(1)
    stimuli = [
        workloads.Event("SAMPLE",
                        value=min(255, i * 3 + rng.randint(0, 20)),
                        time=1000.0 * (i + 1))
        for i in range(80)
    ]

    print("== full co-estimation ==")
    full = estimator.estimate(stimuli, strategy="full")
    print(full.report.pretty())

    print("\n== accelerated with energy caching ==")
    cached = estimator.estimate(stimuli, strategy="caching")
    print(cached.report.pretty())
    print("speedup over full co-estimation: %.1fx, energy error: %.4f%%"
          % (cached.report.speedup_over(full.report),
             cached.report.energy_error_vs(full.report)))

    print("\n== power waveform (10 us bins) ==")
    waveform = full.power_waveform(bin_ns=10_000.0)[:10]
    peak = max(watts for _, watts in waveform) or 1.0
    for time_ns, watts in waveform:
        bar = "#" * int(watts / peak * 50)
        print("  %8.1f us  %8.3f mW  %s" % (time_ns / 1e3, watts * 1e3, bar))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Exploring the TCP/IP NIC's communication architecture (paper §5.3).

Sweeps the shared-bus DMA block size and the arbitration priorities of
the three bus masters for the TCP/IP checksum subsystem, using
energy-caching-accelerated co-estimation for every design point, then
prints the energy surface and the best configuration — a small-scale
version of the paper's Figure 7 experiment.

Run it with::

    python examples/tcpip_exploration.py
"""

from repro.core import DesignSpaceExplorer
from repro.core.explorer import priority_permutations
from repro.systems import tcpip

DMA_SIZES = (2, 8, 32, 128)
NUM_PACKETS = 3
PACKET_PERIOD_NS = 30_000.0


def main():
    assignments = priority_permutations(list(tcpip.BUS_MASTERS))
    print("exploring %d priority assignments x %d DMA sizes = %d points"
          % (len(assignments), len(DMA_SIZES),
             len(assignments) * len(DMA_SIZES)))

    points = []
    for priorities in assignments:
        for dma in DMA_SIZES:
            bundle = tcpip.build_system(
                dma_block_words=dma,
                num_packets=NUM_PACKETS,
                packet_period_ns=PACKET_PERIOD_NS,
                priorities=priorities,
            )
            explorer = DesignSpaceExplorer(
                bundle.network, bundle.config, bundle.stimuli_factory
            )
            point = explorer.evaluate(dma, priorities, strategy="caching")
            points.append(point)
            print("  dma=%4d  %-40s %.3f uJ  (%.2fs)"
                  % (dma, point.priority_label,
                     point.total_energy_j * 1e6,
                     point.report.wall_seconds))

    best = DesignSpaceExplorer.minimum_energy_point(points)
    print("\nminimum-energy configuration:")
    print("  DMA block size : %d words" % best.dma_block_words)
    print("  priorities     : %s" % best.priority_label)
    print("  total energy   : %.3f uJ" % (best.total_energy_j * 1e6))

    report = best.report
    print("\nbreakdown at the optimum:")
    for component in sorted(report.by_component):
        print("  %-14s %10.3f uJ"
              % (component, report.by_component[component] * 1e6))
    print("  bus utilization: %.1f%%"
          % (report.bus_stats["utilization"] * 100.0))


if __name__ == "__main__":
    main()

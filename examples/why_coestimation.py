#!/usr/bin/env python
"""Why co-estimation? — the paper's Figure 1 experiment, end to end.

Builds the producer / timer / consumer system, estimates it twice —

1. the *separate* way: a timing-independent behavioral simulation
   captures per-component traces, then each component's power estimator
   runs alone on its trace;
2. with *power co-estimation*: the estimators run concurrently,
   synchronized by the simulation master, so event timing feeds back
   into component behaviour —

and prints the two energy tables side by side, showing that the
timing-sensitive consumer is badly under-estimated by the separate
flow while the producer agrees exactly.

Run it with::

    python examples/why_coestimation.py
"""

from repro.core import PowerCoEstimator, SeparateEstimator
from repro.systems import producer_consumer


def main():
    bundle = producer_consumer.build_system(num_packets=4)
    print(bundle.description)
    print("mapping: producer -> SW, timer -> HW, consumer -> HW\n")

    print("running separate estimation (trace capture + independent "
          "component estimators)...")
    separate = SeparateEstimator(bundle.network, bundle.config).estimate(
        bundle.stimuli()
    )

    print("running power co-estimation (synchronized estimators)...\n")
    coest = PowerCoEstimator(bundle.network, bundle.config).estimate(
        bundle.stimuli(), strategy="full"
    )

    print("%-10s %18s %18s" % ("", "producer energy", "consumer energy"))
    print("%-10s %15.3e J %15.3e J"
          % ("separate",
             separate.component_energy("producer"),
             separate.component_energy("consumer")))
    print("%-10s %15.3e J %15.3e J"
          % ("co-est",
             coest.report.component_energy("producer"),
             coest.report.component_energy("consumer")))

    under = separate.underestimation_vs(coest.report, "consumer")
    print("\nthe separate flow under-estimates the consumer by %.1f%% "
          "(the paper reports ~62%%)" % under)
    print("because the consumer's loop count depends on *when* the "
          "producer's END_COMP events arrive,")
    print("which only a timing-accurate co-simulation reproduces.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""End-to-end smoke test of the distributed cluster — the CI cluster gate.

Drives the full failure story from outside the processes, exactly as a
deployment would experience it:

1. a single-node ``repro explore`` produces the baseline sweep summary;
2. a coordinator plus three worker processes come up; readiness is
   gated on polling /readyz until all three workers are live;
3. a fig.7 sweep is submitted; once /stats shows points completing,
   one worker is SIGKILLed mid-sweep — no drain, no goodbye;
4. the sweep must still finish: the dead worker's jobs re-dispatch to
   the survivors and the summary rows are **byte-identical** to the
   single-node baseline (deterministic per-job seeds make a re-run an
   exact reproduction);
5. /readyz must show the killed worker dead and the survivors live,
   and /stats must count at least one re-dispatch;
6. a fresh worker started with ``--limp-s`` (it sleeps before every
   job and heartbeat) must be quarantined by the limplock detector —
   visible in /readyz — while the cluster keeps answering estimates.

Coordinator JSON logs are captured to CLUSTER_LOG_DIR (CI uploads the
directory as an artifact).  Exits non-zero on the first violation.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

LOG_DIR = os.environ.get("CLUSTER_LOG_DIR", "cluster-logs")
PYTHON = sys.executable


def post(port, path, body, timeout=300):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request("POST", path, body=json.dumps(body),
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get(port, path):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def fail(message):
    print("cluster smoke FAILED: %s" % message, file=sys.stderr)
    sys.exit(1)


def wait_readyz(port, predicate, what, deadline_s=30.0):
    """Poll /readyz until ``predicate(document)`` holds (no fixed sleeps)."""
    deadline = time.time() + deadline_s
    last = None
    while time.time() < deadline:
        try:
            status, body = get(port, "/readyz")
            last = (status, body.get("status"), body.get("states"))
            if predicate(body):
                return body
        except (OSError, ValueError):
            last = ("unreachable", None, None)
        time.sleep(0.2)
    fail("/readyz never showed %s within %.0fs (last: %s)"
         % (what, deadline_s, last))


def spawn_worker(port, worker_id, limp_s=0.0):
    command = [PYTHON, "-m", "repro", "worker",
               "--coordinator", "http://127.0.0.1:%d" % port,
               "--worker-id", worker_id]
    if limp_s > 0:
        command += ["--limp-s", str(limp_s)]
    return subprocess.Popen(
        command, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
        env=dict(os.environ, PYTHONUNBUFFERED="1"),
    )


def main():
    os.makedirs(LOG_DIR, exist_ok=True)

    # 1. Single-node baseline (the byte-identity reference).
    baseline_path = os.path.join(LOG_DIR, "baseline.json")
    result = subprocess.run(
        [PYTHON, "-m", "repro", "explore", "--dma", "2", "8",
         "--packets", "1", "--out", baseline_path, "--no-preflight"],
        capture_output=True, text=True,
    )
    if result.returncode != 0:
        fail("single-node baseline failed:\n%s%s"
             % (result.stdout, result.stderr))
    with open(baseline_path) as handle:
        baseline = handle.read()
    print("baseline OK: single-node sweep summary at %s" % baseline_path)

    # 2. Coordinator (JSON logs to the artifact dir) + three workers.
    #    A SIGKILLed worker is detected by the failed socket, not the
    #    heartbeat age, so the liveness thresholds can stay lax enough
    #    for the limping worker's slowed heartbeats (limp_s delays
    #    those too).  limp_min_samples=1 lets one observed 2s job
    #    convict the limper; the healthy workers sit near each other's
    #    median, far under the 6x factor.
    log_path = os.path.join(LOG_DIR, "coordinator.jsonl")
    log_handle = open(log_path, "w")
    coordinator = subprocess.Popen(
        [PYTHON, "-c",
         "import sys; sys.path.insert(0, 'src');"
         "from repro.cluster import ClusterConfig, run_coordinator;"
         "from repro.cluster.membership import MembershipConfig;"
         "cfg = ClusterConfig(membership=MembershipConfig("
         "suspect_after_s=4.0, dead_after_s=8.0, limp_factor=6.0,"
         "limp_min_samples=1), log_json=True);"
         "sys.exit(run_coordinator('127.0.0.1', 0, config=cfg))"],
        stdout=subprocess.PIPE, stderr=log_handle,
        env=dict(os.environ, PYTHONUNBUFFERED="1"), text=True,
    )
    workers = {}
    try:
        banner = coordinator.stdout.readline()
        if "coordinator listening on http://" not in banner:
            fail("no coordinator banner: %r" % banner)
        port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0])

        for worker_id in ("w0", "w1", "w2"):
            workers[worker_id] = spawn_worker(port, worker_id)
        wait_readyz(
            port,
            lambda body: sorted(body.get("routable", [])) ==
            ["w0", "w1", "w2"],
            "three live workers",
        )
        print("membership OK: w0 w1 w2 live and routable")

        # 3. Sweep in a background thread; SIGKILL one worker once
        #    /stats proves points are completing (mid-sweep, not
        #    before it started and not after it finished).
        sweep_result = {}

        def run_sweep():
            sweep_result["reply"] = post(
                port, "/sweep", {"dma": [2, 8], "packets": 1}, timeout=600
            )

        sweep_thread = threading.Thread(target=run_sweep, daemon=True)
        sweep_thread.start()
        deadline = time.time() + 120
        while time.time() < deadline:
            _, stats = get(port, "/stats")
            done = stats["cluster"]["sweep_points_completed"]
            if done >= 2:
                break
            if "reply" in sweep_result:
                fail("sweep finished before the kill could land "
                     "(completed too fast to observe)")
            time.sleep(0.1)
        else:
            fail("no sweep points completed within 120s")

        victim = "w1"
        workers[victim].send_signal(signal.SIGKILL)
        workers[victim].wait()
        print("killed %s mid-sweep (%d point(s) were done)"
              % (victim, done))

        sweep_thread.join(600)
        if "reply" not in sweep_result:
            fail("sweep never returned after the kill")
        status, body = sweep_result["reply"]
        if status != 200 or body.get("status") != "ok":
            fail("sweep did not complete after the kill: %s %s"
                 % (status, {k: body.get(k) for k in
                             ("status", "completed", "total_points",
                              "pending_labels", "errors")}))
        rows = json.dumps(body["rows"], indent=1, sort_keys=True) + "\n"
        if rows != baseline:
            fail("cluster rows differ from the single-node baseline "
                 "(%d vs %d bytes)" % (len(rows), len(baseline)))
        print("failure re-dispatch OK: %d/%d points, rows byte-identical "
              "to single node, worker split %s"
              % (body["completed"], body["total_points"], body["workers"]))

        # 4. The membership view must reflect reality.
        ready = wait_readyz(
            port,
            lambda doc: doc.get("workers", {}).get(victim, {}).get("state")
            == "dead",
            "%s dead" % victim,
        )
        for survivor in ("w0", "w2"):
            if survivor not in ready["routable"]:
                fail("survivor %s not routable after the kill: %s"
                     % (survivor, ready["routable"]))
        _, stats = get(port, "/stats")
        if stats["cluster"]["redispatches"] < 1:
            fail("no re-dispatch counted after a SIGKILL mid-sweep")
        print("membership OK: %s dead, survivors routable, "
              "%d redispatch(es)" % (victim, stats["cluster"]["redispatches"]))

        # 5. Limplock: a worker that sleeps 2s around every job and
        #    heartbeat must be quarantined, not trusted.  A second
        #    sweep spreads dispatches over every routable worker, so
        #    the coordinator observes the limper's latency directly.
        #    Quarantine is asserted on the monotonic counter: a
        #    quarantined worker re-registers on its next heartbeat
        #    (parole with a clean latency record), so the limplocked
        #    *state* is legitimately transient.
        workers["limpy"] = spawn_worker(port, "limpy", limp_s=2.0)
        wait_readyz(
            port,
            lambda doc: "limpy" in doc.get("routable", []),
            "limpy registered",
        )
        limp_sweep = {}

        def run_limp_sweep():
            limp_sweep["reply"] = post(
                port, "/sweep", {"dma": [2, 8], "packets": 1}, timeout=600
            )

        limp_thread = threading.Thread(target=run_limp_sweep, daemon=True)
        limp_thread.start()
        deadline = time.time() + 90
        while time.time() < deadline:
            _, stats = get(port, "/stats")
            if stats["cluster"]["quarantines"] >= 1:
                break
            time.sleep(0.2)
        else:
            fail("limplock detector never quarantined the limping worker")
        limp_thread.join(600)
        if "reply" not in limp_sweep:
            fail("limplock-phase sweep never returned")
        status, body = limp_sweep["reply"]
        if status != 200 or body.get("status") != "ok":
            fail("limplock-phase sweep failed: %s %s" % (status, body))
        status, body = post(port, "/estimate",
                            {"system": "fig1", "strategy": "caching"})
        if status != 200:
            fail("estimate after quarantine answered %s: %s"
                 % (status, body))
        print("limplock OK: limpy quarantined (%d quarantine(s)), "
              "sweep and estimates kept completing"
              % stats["cluster"]["quarantines"])

        print("cluster smoke PASSED")
    finally:
        for process in workers.values():
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        for process in workers.values():
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if coordinator.poll() is None:
            coordinator.send_signal(signal.SIGTERM)
            try:
                coordinator.wait(timeout=15)
            except subprocess.TimeoutExpired:
                coordinator.kill()
                coordinator.wait()
        log_handle.close()


if __name__ == "__main__":
    main()

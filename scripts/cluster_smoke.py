#!/usr/bin/env python3
"""End-to-end smoke test of the distributed cluster — the CI cluster gate.

Drives the full failure story from outside the processes, exactly as a
deployment would experience it:

1. a single-node ``repro explore`` produces the baseline sweep summary;
2. a coordinator plus three worker processes come up; readiness is
   gated on polling /readyz until all three workers are live;
3. a fig.7 sweep is submitted; once /stats shows points completing,
   one worker is SIGKILLed mid-sweep — no drain, no goodbye;
4. the sweep must still finish: the dead worker's jobs re-dispatch to
   the survivors and the summary rows are **byte-identical** to the
   single-node baseline (deterministic per-job seeds make a re-run an
   exact reproduction);
5. /readyz must show the killed worker dead and the survivors live,
   and /stats must count at least one re-dispatch;
6. a fresh worker started with ``--limp-s`` (it sleeps before every
   job and heartbeat) must be quarantined by the limplock detector —
   visible in /readyz — while the cluster keeps answering estimates;
7. **high availability** (docs/cluster-ha.md): an active + standby
   coordinator pair over a shared ``--control-dir``, three workers
   holding both peers.  The active is SIGKILLed mid-sweep; the standby
   must take the lease, replay the journal, report leadership in
   /readyz and ``repro_cluster_failovers_total >= 1`` in /metrics, and
   a failover resubmission (``resume`` through the handed-off
   checkpoint) must produce rows byte-identical to the single-node
   baseline.  A restarted deposed coordinator must come back fenced
   (503 ``not_leader``) — no split brain.

Coordinator JSON logs (both replicas in the HA phase) are captured to
CLUSTER_LOG_DIR (CI uploads the directory as an artifact).  Exits
non-zero on the first violation.
"""

import http.client
import json
import os
import shutil
import signal
import subprocess
import sys
import threading
import time

LOG_DIR = os.environ.get("CLUSTER_LOG_DIR", "cluster-logs")
PYTHON = sys.executable


def post(port, path, body, timeout=300):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request("POST", path, body=json.dumps(body),
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get(port, path):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get_text(port, path):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()


def fail(message):
    print("cluster smoke FAILED: %s" % message, file=sys.stderr)
    sys.exit(1)


def wait_readyz(port, predicate, what, deadline_s=30.0):
    """Poll /readyz until ``predicate(document)`` holds (no fixed sleeps)."""
    deadline = time.time() + deadline_s
    last = None
    while time.time() < deadline:
        try:
            status, body = get(port, "/readyz")
            last = (status, body.get("status"), body.get("states"))
            if predicate(body):
                return body
        except (OSError, ValueError):
            last = ("unreachable", None, None)
        time.sleep(0.2)
    fail("/readyz never showed %s within %.0fs (last: %s)"
         % (what, deadline_s, last))


def spawn_worker(port, worker_id, limp_s=0.0, peers=()):
    command = [PYTHON, "-m", "repro", "worker",
               "--coordinator", "http://127.0.0.1:%d" % port,
               "--worker-id", worker_id]
    for peer in peers:
        command += ["--peer", peer]
    if limp_s > 0:
        command += ["--limp-s", str(limp_s)]
    return subprocess.Popen(
        command, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
        env=dict(os.environ, PYTHONUNBUFFERED="1"),
    )


def spawn_coordinator(coordinator_id, control_dir, log_name,
                      standby=False, peers=(), lease_ttl_s=2.0):
    """One ``repro cluster`` coordinator replica (no spawned workers)."""
    log_handle = open(os.path.join(LOG_DIR, log_name), "w")
    command = [PYTHON, "-m", "repro", "cluster",
               "--workers", "0", "--port", "0",
               "--coordinator-id", coordinator_id,
               "--control-dir", control_dir,
               "--lease-ttl-s", str(lease_ttl_s),
               "--suspect-after-s", "4", "--dead-after-s", "8",
               "--log-json", "--no-preflight"]
    if standby:
        command.append("--standby")
    for peer in peers:
        command += ["--peer", peer]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=log_handle,
        env=dict(os.environ, PYTHONUNBUFFERED="1"), text=True,
    )
    banner = process.stdout.readline()
    if "coordinator listening on http://" not in banner:
        fail("no banner from coordinator %s: %r" % (coordinator_id, banner))
    port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0])
    return process, port, log_handle


def terminate(processes, timeout=10):
    for process in processes:
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
    for process in processes:
        try:
            process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


def main():
    os.makedirs(LOG_DIR, exist_ok=True)

    # 1. Single-node baseline (the byte-identity reference).
    baseline_path = os.path.join(LOG_DIR, "baseline.json")
    result = subprocess.run(
        [PYTHON, "-m", "repro", "explore", "--dma", "2", "8",
         "--packets", "1", "--out", baseline_path, "--no-preflight"],
        capture_output=True, text=True,
    )
    if result.returncode != 0:
        fail("single-node baseline failed:\n%s%s"
             % (result.stdout, result.stderr))
    with open(baseline_path) as handle:
        baseline = handle.read()
    print("baseline OK: single-node sweep summary at %s" % baseline_path)

    # 2. Coordinator (JSON logs to the artifact dir) + three workers.
    #    A SIGKILLed worker is detected by the failed socket, not the
    #    heartbeat age, so the liveness thresholds can stay lax enough
    #    for the limping worker's slowed heartbeats (limp_s delays
    #    those too).  limp_min_samples=1 lets one observed 2s job
    #    convict the limper; the healthy workers sit near each other's
    #    median, far under the 6x factor.
    log_path = os.path.join(LOG_DIR, "coordinator.jsonl")
    log_handle = open(log_path, "w")
    coordinator = subprocess.Popen(
        [PYTHON, "-c",
         "import sys; sys.path.insert(0, 'src');"
         "from repro.cluster import ClusterConfig, run_coordinator;"
         "from repro.cluster.membership import MembershipConfig;"
         "cfg = ClusterConfig(membership=MembershipConfig("
         "suspect_after_s=4.0, dead_after_s=8.0, limp_factor=6.0,"
         "limp_min_samples=1), log_json=True);"
         "sys.exit(run_coordinator('127.0.0.1', 0, config=cfg))"],
        stdout=subprocess.PIPE, stderr=log_handle,
        env=dict(os.environ, PYTHONUNBUFFERED="1"), text=True,
    )
    workers = {}
    try:
        banner = coordinator.stdout.readline()
        if "coordinator listening on http://" not in banner:
            fail("no coordinator banner: %r" % banner)
        port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0])

        for worker_id in ("w0", "w1", "w2"):
            workers[worker_id] = spawn_worker(port, worker_id)
        wait_readyz(
            port,
            lambda body: sorted(body.get("routable", [])) ==
            ["w0", "w1", "w2"],
            "three live workers",
        )
        print("membership OK: w0 w1 w2 live and routable")

        # 3. Sweep in a background thread; SIGKILL one worker once
        #    /stats proves points are completing (mid-sweep, not
        #    before it started and not after it finished).
        sweep_result = {}

        def run_sweep():
            sweep_result["reply"] = post(
                port, "/sweep", {"dma": [2, 8], "packets": 1}, timeout=600
            )

        sweep_thread = threading.Thread(target=run_sweep, daemon=True)
        sweep_thread.start()
        deadline = time.time() + 120
        while time.time() < deadline:
            _, stats = get(port, "/stats")
            done = stats["cluster"]["sweep_points_completed"]
            if done >= 2:
                break
            if "reply" in sweep_result:
                fail("sweep finished before the kill could land "
                     "(completed too fast to observe)")
            time.sleep(0.1)
        else:
            fail("no sweep points completed within 120s")

        victim = "w1"
        workers[victim].send_signal(signal.SIGKILL)
        workers[victim].wait()
        print("killed %s mid-sweep (%d point(s) were done)"
              % (victim, done))

        sweep_thread.join(600)
        if "reply" not in sweep_result:
            fail("sweep never returned after the kill")
        status, body = sweep_result["reply"]
        if status != 200 or body.get("status") != "ok":
            fail("sweep did not complete after the kill: %s %s"
                 % (status, {k: body.get(k) for k in
                             ("status", "completed", "total_points",
                              "pending_labels", "errors")}))
        rows = json.dumps(body["rows"], indent=1, sort_keys=True) + "\n"
        if rows != baseline:
            fail("cluster rows differ from the single-node baseline "
                 "(%d vs %d bytes)" % (len(rows), len(baseline)))
        print("failure re-dispatch OK: %d/%d points, rows byte-identical "
              "to single node, worker split %s"
              % (body["completed"], body["total_points"], body["workers"]))

        # 4. The membership view must reflect reality.
        ready = wait_readyz(
            port,
            lambda doc: doc.get("workers", {}).get(victim, {}).get("state")
            == "dead",
            "%s dead" % victim,
        )
        for survivor in ("w0", "w2"):
            if survivor not in ready["routable"]:
                fail("survivor %s not routable after the kill: %s"
                     % (survivor, ready["routable"]))
        _, stats = get(port, "/stats")
        if stats["cluster"]["redispatches"] < 1:
            fail("no re-dispatch counted after a SIGKILL mid-sweep")
        print("membership OK: %s dead, survivors routable, "
              "%d redispatch(es)" % (victim, stats["cluster"]["redispatches"]))

        # 5. Limplock: a worker that sleeps 2s around every job and
        #    heartbeat must be quarantined, not trusted.  A second
        #    sweep spreads dispatches over every routable worker, so
        #    the coordinator observes the limper's latency directly.
        #    Quarantine is asserted on the monotonic counter: a
        #    quarantined worker re-registers on its next heartbeat
        #    (parole with a clean latency record), so the limplocked
        #    *state* is legitimately transient.
        workers["limpy"] = spawn_worker(port, "limpy", limp_s=2.0)
        wait_readyz(
            port,
            lambda doc: "limpy" in doc.get("routable", []),
            "limpy registered",
        )
        limp_sweep = {}

        def run_limp_sweep():
            limp_sweep["reply"] = post(
                port, "/sweep", {"dma": [2, 8], "packets": 1}, timeout=600
            )

        limp_thread = threading.Thread(target=run_limp_sweep, daemon=True)
        limp_thread.start()
        deadline = time.time() + 90
        while time.time() < deadline:
            _, stats = get(port, "/stats")
            if stats["cluster"]["quarantines"] >= 1:
                break
            time.sleep(0.2)
        else:
            fail("limplock detector never quarantined the limping worker")
        limp_thread.join(600)
        if "reply" not in limp_sweep:
            fail("limplock-phase sweep never returned")
        status, body = limp_sweep["reply"]
        if status != 200 or body.get("status") != "ok":
            fail("limplock-phase sweep failed: %s %s" % (status, body))
        status, body = post(port, "/estimate",
                            {"system": "fig1", "strategy": "caching"})
        if status != 200:
            fail("estimate after quarantine answered %s: %s"
                 % (status, body))
        print("limplock OK: limpy quarantined (%d quarantine(s)), "
              "sweep and estimates kept completing"
              % stats["cluster"]["quarantines"])

        print("core phases PASSED")
    finally:
        terminate(list(workers.values()), timeout=10)
        if coordinator.poll() is None:
            coordinator.send_signal(signal.SIGTERM)
            try:
                coordinator.wait(timeout=15)
            except subprocess.TimeoutExpired:
                coordinator.kill()
                coordinator.wait()
        log_handle.close()

    run_ha_phase(baseline)
    print("cluster smoke PASSED")


def run_ha_phase(baseline):
    """Phase 7: SIGKILL the active coordinator, fail over to the standby."""
    control_dir = os.path.join(LOG_DIR, "ha-control")
    shutil.rmtree(control_dir, ignore_errors=True)
    checkpoint = os.path.join(LOG_DIR, "ha-sweep.ckpt.jsonl")
    if os.path.exists(checkpoint):
        os.remove(checkpoint)
    processes = []
    log_handles = []
    try:
        active, active_port, log = spawn_coordinator(
            "ha-a", control_dir, "ha-active.jsonl")
        processes.append(active)
        log_handles.append(log)
        wait_readyz(
            active_port,
            lambda doc: doc.get("ha", {}).get("role") == "leader",
            "ha-a leading",
        )
        standby, standby_port, log = spawn_coordinator(
            "ha-b", control_dir, "ha-standby.jsonl", standby=True,
            peers=["http://127.0.0.1:%d" % active_port])
        processes.append(standby)
        log_handles.append(log)

        workers = []
        for worker_id in ("ha-w0", "ha-w1", "ha-w2"):
            workers.append(spawn_worker(
                active_port, worker_id,
                peers=["http://127.0.0.1:%d" % standby_port]))
        processes.extend(workers)
        wait_readyz(
            active_port,
            lambda doc: sorted(doc.get("routable", [])) ==
            ["ha-w0", "ha-w1", "ha-w2"],
            "three live workers on the active",
        )
        print("ha membership OK: active leading, standby shadowing, "
              "3 workers live")

        # Sweep through the active; SIGKILL it once points are landing
        # (mid-sweep, during its shard dispatching — the hardest spot).
        sweep_result = {}

        def run_sweep():
            try:
                sweep_result["reply"] = post(
                    active_port, "/sweep",
                    {"dma": [2, 8], "packets": 1,
                     "checkpoint": checkpoint}, timeout=600,
                )
            except OSError as exc:  # the kill severs this socket
                sweep_result["error"] = str(exc)

        sweep_thread = threading.Thread(target=run_sweep, daemon=True)
        sweep_thread.start()
        deadline = time.time() + 120
        while time.time() < deadline:
            _, stats = get(active_port, "/stats")
            done = stats["cluster"]["sweep_points_completed"]
            if done >= 2:
                break
            if sweep_result:
                fail("ha sweep finished before the kill could land")
            time.sleep(0.1)
        else:
            fail("no ha sweep points completed within 120s")

        active.send_signal(signal.SIGKILL)
        active.wait()
        sweep_thread.join(60)
        print("killed the active coordinator mid-sweep "
              "(%d point(s) were done)" % done)

        # The standby must take the lease and report leadership.
        ready = wait_readyz(
            standby_port,
            lambda doc: doc.get("ha", {}).get("role") == "leader",
            "standby leadership",
            deadline_s=60.0,
        )
        if ready["ha"]["leader"] != "ha-b" or ready["ha"]["epoch"] < 2:
            fail("standby leadership looks wrong: %s" % ready["ha"])
        wait_readyz(
            standby_port,
            lambda doc: sorted(doc.get("routable", [])) ==
            ["ha-w0", "ha-w1", "ha-w2"],
            "workers re-registered with the new leader",
            deadline_s=90.0,
        )
        print("failover OK: ha-b leads epoch %d, workers followed"
              % ready["ha"]["epoch"])

        # The failover client resubmits its sweep with resume: the
        # handed-off checkpoint restores what the dead leader finished,
        # and the merged rows are byte-identical to the baseline.
        status, body = post(
            standby_port, "/sweep",
            {"dma": [2, 8], "packets": 1,
             "checkpoint": checkpoint, "resume": True}, timeout=600,
        )
        if status != 200 or body.get("status") != "ok":
            fail("resumed sweep on the new leader failed: %s %s"
                 % (status, {k: body.get(k) for k in
                             ("status", "completed", "total_points",
                              "errors")}))
        rows = json.dumps(body["rows"], indent=1, sort_keys=True) + "\n"
        if rows != baseline:
            fail("post-failover rows differ from the single-node "
                 "baseline (%d vs %d bytes)" % (len(rows), len(baseline)))
        print("failover sweep OK: %d/%d points, rows byte-identical, "
              "%d restored from the handed-off checkpoint"
              % (body["completed"], body["total_points"], body["restored"]))

        # The failover is visible on the metrics surface.
        _, stats = get(standby_port, "/stats")
        if stats["ha"]["failovers"] < 1:
            fail("/stats counts no failover: %s" % stats["ha"])
        _, exposition = get_text(standby_port, "/metrics")
        failover_lines = [
            line for line in exposition.splitlines()
            if line.startswith("repro_cluster_failovers_total")
        ]
        if not failover_lines or float(failover_lines[0].split()[-1]) < 1:
            fail("repro_cluster_failovers_total missing or zero in "
                 "/metrics: %r" % failover_lines)
        print("ha observability OK: failovers_total=%s, epoch=%d"
              % (failover_lines[0].split()[-1], stats["ha"]["epoch"]))

        # A restarted deposed coordinator must be fenced, not a second
        # brain: the lease is held, so it stays standby and answers
        # 503 not_leader on the data plane.
        restarted, restarted_port, log = spawn_coordinator(
            "ha-a", control_dir, "ha-restarted.jsonl",
            peers=["http://127.0.0.1:%d" % standby_port])
        processes.append(restarted)
        log_handles.append(log)
        status, body = post(restarted_port, "/sweep",
                            {"dma": [2], "packets": 1}, timeout=60)
        if status != 503 or body.get("reason") != "not_leader":
            fail("restarted deposed coordinator was not fenced: %s %s"
                 % (status, body))
        print("no-split-brain OK: restarted ha-a answers 503 not_leader")
    finally:
        terminate(processes, timeout=10)
        for handle in log_handles:
            handle.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""End-to-end smoke test of `repro serve` — the CI service gate.

Starts the server as a subprocess, then drives the acceptance scenario
from the outside, exactly as a deployment would see it:

0. startup is gated on polling /readyz (no fixed sleeps), the same
   readiness contract a deployment's health checks would use;
1. concurrent estimates for two bundled systems answer 200 with exact
   provenance (and carry X-Trace-Id correlation headers);
2. a chaos request (100% hw faults) answers 200 *degraded*, with the
   breaker for that site open in /stats;
3. /metrics is valid Prometheus text exposition and its provenance-tier
   and breaker-state samples agree with what the fault load did;
4. a burst beyond workers+queue sees explicit 429 backpressure with a
   Retry-After header;
5. SIGTERM drains gracefully: exit code 0, a drain report, structured
   JSON log lines (--log-json), and a flight-recorder dump on disk
   (uploaded as a CI artifact).

Exits non-zero (with a message) on the first violated expectation.
"""

import glob
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

from repro.obs.prometheus import validate_exposition

#: Where the server dumps its flight recorder; CI uploads this
#: directory as an artifact.
FLIGHT_DIR = os.environ.get("SMOKE_FLIGHT_DIR", "smoke-flight")


def post(port, body, timeout=120):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request("POST", "/estimate", body=json.dumps(body),
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        headers = dict(response.getheaders())
        return response.status, headers, json.loads(response.read())
    finally:
        connection.close()


def get(port, path):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def get_text(port, path):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        headers = dict(response.getheaders())
        return response.status, headers, response.read().decode("utf-8")
    finally:
        connection.close()


def fail(message):
    print("service smoke FAILED: %s" % message, file=sys.stderr)
    sys.exit(1)


def wait_ready(port, deadline_s=30.0, expect=None):
    """Poll /readyz until it answers 200 ready (no fixed sleeps).

    ``expect`` optionally asserts on the readiness document once ready —
    the cluster smoke uses it to wait for a specific worker-set shape.
    Returns the final document; fails the smoke on deadline.
    """
    deadline = time.time() + deadline_s
    last = None
    while time.time() < deadline:
        try:
            status, body = get(port, "/readyz")
            last = (status, body)
            if status == 200 and body.get("status") == "ready" and (
                expect is None or expect(body)
            ):
                return body
        except (OSError, ValueError):
            last = ("unreachable", None)
        time.sleep(0.2)
    fail("/readyz never became ready within %.0fs (last: %s)"
         % (deadline_s, last))


def main():
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--queue-depth", "4", "--deadline-s", "60",
         "--breaker-threshold", "2", "--log-json",
         "--flight-dump-dir", FLIGHT_DIR],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=dict(os.environ, PYTHONUNBUFFERED="1"), text=True,
    )
    # --log-json streams one JSON line per request step; drain the pipe
    # continuously so a chatty run can never fill the pipe buffer and
    # deadlock the server against its own stderr.
    captured = []

    def read_output():
        for line in process.stdout:
            captured.append(line)

    try:
        banner = process.stdout.readline()
        if "listening on http://" not in banner:
            fail("no startup banner: %r" % banner)
        port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0])
        reader = threading.Thread(target=read_output, daemon=True)
        reader.start()

        wait_ready(port)

        # 1. Concurrent clean estimates for two bundled systems.
        outcomes = {}

        def run_clean(system):
            outcomes[system] = post(port, {"system": system,
                                           "strategy": "full"})

        threads = [threading.Thread(target=run_clean, args=(system,))
                   for system in ("fig1", "tcpip")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        for system, (status, headers, body) in outcomes.items():
            if status != 200:
                fail("%s answered %s: %s" % (system, status, body))
            if body["degraded"]:
                fail("clean %s run reported degraded" % system)
            if set(body["provenance"]) != {"exact"}:
                fail("clean %s run not fully exact: %s"
                     % (system, body["provenance"]))
            if not headers.get("X-Trace-Id"):
                fail("%s response missing X-Trace-Id header" % system)
        print("clean estimates OK: fig1 + tcpip, all-exact provenance, "
              "trace-correlated")

        # 2. Chaos request: 100% hw faults must trip the breaker and
        #    still be answered from the degradation ladder.
        status, _, body = post(port, {
            "system": "fig1", "strategy": "full",
            "fault": {"rate": 1.0, "sites": ["hw"], "retries": 0},
        })
        if status != 200:
            fail("chaos request answered %s: %s" % (status, body))
        if not body["degraded"]:
            fail("100%% hw faults but degraded=false")
        if not any(level != "exact" for level in body["provenance"]):
            fail("no degraded provenance tag: %s" % body["provenance"])
        if body["breakers"].get("fig1:hw") != "open":
            fail("fig1:hw breaker not open: %s" % body["breakers"])
        _, stats = get(port, "/stats")
        breaker = stats["breakers"]["fig1:hw"]
        if breaker["opens"] < 1 or breaker["short_circuits"] < 1:
            fail("breaker never short-circuited: %s" % breaker)
        print("breaker OK: fig1:hw open, %d short-circuits, provenance %s"
              % (breaker["short_circuits"], body["provenance"]))

        # 3. /metrics: valid Prometheus exposition whose samples agree
        #    with what the fault load just did.
        status, headers, exposition = get_text(port, "/metrics")
        if status != 200:
            fail("/metrics answered %s" % status)
        if not headers.get("Content-Type", "").startswith(
            "text/plain; version=0.0.4"
        ):
            fail("/metrics content type %r" % headers.get("Content-Type"))
        errors = validate_exposition(exposition)
        if errors:
            fail("/metrics is not valid exposition format: %s" % errors)
        answer_lines = [
            line for line in exposition.splitlines()
            if line.startswith("repro_service_energy_answers_total{")
        ]
        if not any('provenance="exact"' in line for line in answer_lines):
            fail("no exact-provenance answer counter: %s" % answer_lines)
        degraded_tiers = [line for line in answer_lines
                          if 'provenance="exact"' not in line
                          and 'system="fig1"' in line]
        if not degraded_tiers:
            fail("chaos load produced no non-exact provenance counters: %s"
                 % answer_lines)
        if 'repro_service_breaker_state{site="fig1:hw"} 2' not in exposition:
            fail("fig1:hw breaker-state gauge is not open(2)")
        for family in ("repro_slo_latency_burn_rate",
                       "repro_slo_error_burn_rate",
                       "repro_http_requests_total",
                       "repro_service_request_latency_seconds_count"):
            if family not in exposition:
                fail("/metrics lacks %s" % family)
        print("metrics OK: valid exposition, %d provenance tier(s) "
              "degraded, breaker gauge open" % len(degraded_tiers))

        # 4. Saturation: a burst beyond workers+queue must see 429s
        #    (and every accepted request must still complete).
        burst = []
        start_together = threading.Barrier(24)

        def run_burst(index):
            start_together.wait(30)  # maximize submission collisions
            try:
                burst.append(post(port, {
                    "system": "tcpip", "strategy": "full",
                    "fault": {"rate": 0.01, "sites": ["hw"],
                              "seed": index, "retries": 1},
                }))
            except OSError:
                # A connection reset under overload is backpressure
                # too, just the TCP-level kind; tolerated, not counted.
                burst.append(("reset", {}, {}))

        threads = [threading.Thread(target=run_burst, args=(index,))
                   for index in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(180)
        statuses = sorted(str(status) for status, _, _ in burst)
        if "429" not in statuses:
            fail("24-request burst against workers=2/queue=4 saw no 429: %s"
                 % statuses)
        if statuses.count("200") < 1:
            fail("burst starved completely: %s" % statuses)
        for status, headers, _ in burst:
            if status == 429 and "Retry-After" not in headers:
                fail("429 without Retry-After header")
            if status not in (200, 429, 503, 504, "reset"):
                fail("unexpected burst status %s" % status)
        print("backpressure OK: burst statuses %s"
              % dict((status, statuses.count(status))
                     for status in sorted(set(statuses))))

        # 5. Graceful drain on SIGTERM.
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=120)
        reader.join(30)
        output = "".join(captured)
        if process.returncode != 0:
            fail("serve exited %s after SIGTERM:\n%s"
                 % (process.returncode, output))
        if "drain" not in output:
            fail("no drain report in output:\n%s" % output)

        # Structured logs: --log-json must have produced parseable,
        # trace-correlated event lines on stderr.
        events = []
        for line in output.splitlines():
            if not line.startswith("{"):
                continue
            try:
                record = json.loads(line)
            except ValueError:
                fail("unparseable --log-json line: %r" % line)
            if "event" not in record or "trace_id" not in record:
                fail("log line lacks event/trace_id: %r" % line)
            events.append(record["event"])
        for expected in ("request.admitted", "request.completed",
                         "breaker.transition", "drain.step"):
            if expected not in events:
                fail("no %s event in the JSON log (saw %s)"
                     % (expected, sorted(set(events))))
        print("structured logs OK: %d JSON lines, %d distinct events"
              % (len(events), len(set(events))))

        # Flight recorder: the drain must have dumped the event ring
        # (CI uploads the directory as a postmortem artifact).
        dumps = sorted(glob.glob(
            os.path.join(FLIGHT_DIR, "flightrecorder-*.json")
        ))
        if not dumps:
            fail("no flight-recorder dump in %s after drain" % FLIGHT_DIR)
        with open(dumps[-1]) as handle:
            document = json.load(handle)
        if not document.get("events"):
            fail("flight-recorder dump %s holds no events" % dumps[-1])
        print("flight recorder OK: %d dump(s), last holds %d events"
              % (len(dumps), len(document["events"])))
        print("drain OK: exit 0")
        print("service smoke PASSED")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()


if __name__ == "__main__":
    main()

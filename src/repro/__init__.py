"""repro — power co-estimation for HW/SW system-on-chip designs.

A from-scratch, self-contained reproduction of

    M. Lajolo, A. Raghunathan, S. Dey, L. Lavagno,
    "Efficient Power Co-Estimation Techniques for System-on-Chip
    Design", DATE 2000.

The package contains the complete stack the paper's framework sits on:

* :mod:`repro.cfsm` — CFSM behavioral system model (the POLIS role),
* :mod:`repro.master` — discrete-event co-simulation master (the
  PTOLEMY role), with an RTOS model for the software partition,
* :mod:`repro.sw` — SPARC-flavoured ISS with an instruction-level
  power model (the SPARCsim role),
* :mod:`repro.hw` — gate-level synthesis, simulation, and power
  estimation (the SIS role),
* :mod:`repro.cache` — the fast cache simulator attached to the master,
* :mod:`repro.bus` — the parameterizable shared-bus / DMA / arbiter
  model with switching-activity power,
* :mod:`repro.core` — the paper's contribution: co-estimation plus the
  acceleration techniques (energy caching, macro-modeling, statistical
  sampling), the separate-estimation baseline, and the design-space
  explorer,
* :mod:`repro.systems` — the paper's example systems (producer /
  consumer / timer, the TCP/IP network-interface subsystem, and an
  automotive dashboard controller),
* :mod:`repro.analysis` — statistics helpers used by the experiments.

Quickstart::

    from repro.core import PowerCoEstimator
    from repro.systems import tcpip

    system = tcpip.build_system(dma_block_words=16)
    estimator = PowerCoEstimator(system.network, system.config)
    result = estimator.estimate(system.stimuli(), strategy="caching")
    print(result.report.pretty())
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "cfsm",
    "sw",
    "hw",
    "cache",
    "bus",
    "master",
    "core",
    "systems",
    "analysis",
]

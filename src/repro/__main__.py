"""Command-line interface: ``python -m repro <command>``.

Commands operate on the built-in example systems:

* ``describe <system>`` — print the network, partition, and
  implementation sizes.
* ``estimate <system> [--strategy S] [--waveform-csv PATH]`` — run
  power co-estimation and print the energy report.
* ``explore [--dma ...] [--strategy S]`` — sweep the TCP/IP bus
  design space and report the minimum-energy configuration.
* ``characterize`` — run the software macro-model characterization and
  print the parameter file (the paper's Figure 3 artifact).
* ``lint <system> [--format text|json|sarif] [--baseline PATH]
  [--cost]`` — run the whole-design static analyzer (see
  docs/static-analysis.md); the exit code is 2 for errors, 1 for
  warnings, 0 otherwise.  ``--cost`` appends the static cost report
  (cycle/energy bounds, cache-table size, admission weight).
* ``transvalidate`` — prove every optimizer rewrite rule equivalent
  on its declared templates (exhaustive small-width, corner, and
  random vectors); exit 1 if any rule is unsound or dead.
* ``serve [--port N] [--workers N] [--queue-depth N]`` — run the
  long-lived co-estimation service (JSON over HTTP, bounded admission
  queue, circuit breakers, graceful SIGTERM drain; see
  docs/service.md).
* ``cluster [--workers N]`` — run the distributed coordinator plus N
  worker processes (consistent-hash sharding, heartbeat failure
  detection, re-dispatch, limplock quarantine; see docs/cluster.md).
* ``worker --coordinator URL`` — run one standalone cluster worker
  against an existing coordinator.

``estimate`` and ``explore`` run the fast lint subset as a pre-flight
gate over the system they are about to run; ``serve`` and ``cluster``
run it over *every* bundled system at startup (they accept requests
for any of them) and refuse to start on error-severity findings.
``--no-preflight`` opts out everywhere.

Systems: ``fig1`` (producer/timer/consumer), ``tcpip``, ``tcpip-out``
(TCP/IP with the outgoing path enabled), ``automotive``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cfsm.describe import describe_network, implementation_statistics
from repro.core import PowerCoEstimator
from repro.ioutil import atomic_write_text
from repro.core.explorer import (
    DesignSpaceExplorer,
    parallel_sweep,
    priority_permutations,
)
from repro.core.macromodel import MacroModelCharacterizer
from repro.master.export import export_power_csv, export_power_vcd
from repro.parallel import (
    JobSpec,
    PoolStats,
    job_seed,
    merge_metrics_snapshots,
    run_jobs,
    write_merged_chrome_trace,
)
from repro.systems import build_bundle, builder_spec, system_names, tcpip
from repro.systems.bundle import SystemBundle
from repro.telemetry import Telemetry, render_report, write_chrome_trace


def _bundle(name: str) -> SystemBundle:
    try:
        return build_bundle(name)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0])) from None


def cmd_describe(args: argparse.Namespace) -> int:
    bundle = _bundle(args.system)
    stats = implementation_statistics(bundle.network) if args.sizes else None
    print(describe_network(bundle.network, stats))
    return 0


def _fault_plan(args: argparse.Namespace):
    """The :class:`~repro.resilience.FaultPlan` the fault flags describe."""
    rate = getattr(args, "fault_rate", 0.0) or 0.0
    if rate <= 0:
        return None
    from repro.resilience import FaultPlan

    return FaultPlan.uniform(args.fault_sites, rate, seed=args.fault_seed)


def _preflight(network, args: argparse.Namespace, metrics=None,
               label: Optional[str] = None) -> None:
    """Fast-lint gate before expensive runs (opt out: --no-preflight).

    Errors abort the run (the same malformations would surface later
    as confusing mid-simulation failures); warnings and notes print a
    one-line summary and let the run proceed.
    """
    if getattr(args, "no_preflight", False):
        return
    from repro.lint import Severity, run_lint

    result = run_lint(network, fast_only=True, metrics=metrics)
    errors = result.count(Severity.ERROR)
    if errors:
        from repro.lint import render_text

        sys.stderr.write(render_text(result.diagnostics,
                                     title="pre-flight %s" % network.name))
        raise SystemExit(
            "pre-flight lint found %d error(s) in %r; fix them or rerun "
            "with --no-preflight" % (errors, network.name)
        )
    remainder = len(result.diagnostics)
    if remainder:
        print("pre-flight lint: %d advisory finding(s) in %r "
              "(run `repro lint %s` for details)"
              % (remainder, network.name, label or network.name))


def _preflight_service(args: argparse.Namespace, what: str) -> None:
    """Startup lint gate for the long-lived services.

    ``serve`` and ``cluster`` accept requests for any bundled system,
    so every one of them is fast-linted before the listener binds: an
    error-severity design is refused where the operator can see it
    instead of failing confusingly per-request.  ``--no-preflight``
    opts out, same as the one-shot commands.
    """
    if getattr(args, "no_preflight", False):
        return
    from repro.lint import Severity, render_text, run_lint

    for name in system_names():
        network = _bundle(name).network
        result = run_lint(network, fast_only=True)
        errors = result.count(Severity.ERROR)
        if errors:
            sys.stderr.write(render_text(
                result.diagnostics, title="pre-flight %s" % network.name))
            raise SystemExit(
                "pre-flight lint found %d error(s) in %r; %s refuses to "
                "start (rerun with --no-preflight to override)"
                % (errors, name, what)
            )


def _degraded_levels(report) -> List[str]:
    """Provenance levels below ``exact`` that contributed to ``report``.

    ``--fail-on-degraded`` turns these into a non-zero exit.  Replay
    strategies (caching/sampling/macromodel) tag their replayed
    estimates ``cached``/``macromodel`` by design, so the guard is
    meant for ``--strategy full`` runs, where every healthy estimate is
    ``exact`` and anything else means the resilience ladder answered.
    """
    return sorted(
        level
        for level, count in report.provenance.items()
        if level != "exact" and count > 0
    )


def cmd_estimate(args: argparse.Namespace) -> int:
    if len(args.system) > 1:
        if _fault_plan(args) is not None:
            raise SystemExit(
                "--fault-rate needs a single system (got %d)" % len(args.system)
            )
        return _estimate_many(args)
    bundle = _bundle(args.system[0])
    config = bundle.config
    fault_plan = _fault_plan(args)
    if fault_plan is not None:
        from dataclasses import replace

        from repro.resilience import ResilienceConfig

        config = replace(
            config,
            resilience=ResilienceConfig(
                fault_plan=fault_plan, max_retries=args.fault_retries
            ),
        )
    estimator = PowerCoEstimator(bundle.network, config)
    telemetry = None
    if args.trace or args.metrics or args.telemetry_report:
        telemetry = Telemetry()
    _preflight(bundle.network, args,
               metrics=telemetry.metrics if telemetry else None,
               label=args.system[0])
    result = estimator.estimate(
        bundle.stimuli(),
        strategy=args.strategy,
        shared_memory_image=bundle.shared_memory_image,
        telemetry=telemetry,
    )
    print(result.report.pretty())
    if telemetry is not None:
        if args.trace:
            write_chrome_trace(telemetry.tracer, args.trace)
            print("wrote %s (load in Perfetto / chrome://tracing)" % args.trace)
        if args.metrics:
            atomic_write_text(args.metrics, telemetry.metrics.to_json() + "\n")
            print("wrote %s" % args.metrics)
        print()
        print(render_report(telemetry))
    if args.waveform_csv:
        atomic_write_text(
            args.waveform_csv,
            export_power_csv(result.master.accountant, bin_ns=args.bin_ns),
        )
        print("wrote %s" % args.waveform_csv)
    if args.waveform_vcd:
        atomic_write_text(
            args.waveform_vcd,
            export_power_vcd(result.master.accountant, bin_ns=args.bin_ns),
        )
        print("wrote %s" % args.waveform_vcd)
    if args.fail_on_degraded:
        levels = _degraded_levels(result.report)
        if levels:
            print("FAIL: %d estimate(s) with provenance below exact (%s) "
                  "(--fail-on-degraded)"
                  % (sum(result.report.provenance[level] for level in levels),
                     ", ".join(levels)))
            return 3
    return 0


def _estimate_many(args: argparse.Namespace) -> int:
    """Fan independent system estimates out over the process pool."""
    for option in ("waveform_csv", "waveform_vcd", "trace", "metrics"):
        if getattr(args, option, None):
            raise SystemExit(
                "--%s needs a single system (got %d)"
                % (option.replace("_", "-"), len(args.system))
            )
    specs = []
    for name in args.system:
        builder, builder_kwargs = builder_spec(name)
        specs.append(
            JobSpec(
                fn="repro.parallel.runners:run_estimate",
                payload={
                    "builder": builder,
                    "builder_kwargs": builder_kwargs,
                    "strategy": args.strategy,
                    "label": name,
                },
                label=name,
                seed=job_seed(0, name),
            )
        )
    stats = PoolStats()
    results = run_jobs(specs, jobs=args.jobs, stats=stats)
    failed = 0
    degraded: List[str] = []
    for result in results:
        if result.ok:
            print(result.value.pretty())
            print()
            if _degraded_levels(result.value):
                degraded.append(result.label)
        else:
            failed += 1
            print("%s FAILED:\n%s" % (result.label, result.error))
    print("%d system(s) in %.2fs with %d worker(s)"
          % (stats.completed, stats.wall_seconds, stats.workers))
    if failed:
        return 1
    if args.fail_on_degraded and degraded:
        print("FAIL: degraded provenance in %s (--fail-on-degraded)"
              % ", ".join(degraded))
        return 3
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    # SIGTERM becomes an in-band SystemExit so a kill mid-sweep unwinds
    # through the pool's `finally` (no orphaned workers) after the
    # per-point checkpoint flush — the sweep stays resumable.
    import threading as _threading

    restore_signals = None
    if _threading.current_thread() is _threading.main_thread():
        from repro.service.lifecycle import raise_on_signals

        restore_signals = raise_on_signals()
    try:
        return _explore_body(args)
    finally:
        if restore_signals is not None:
            restore_signals()


def _explore_body(args: argparse.Namespace) -> int:
    _preflight(
        tcpip.build_system(
            dma_block_words=args.dma[0],
            num_packets=args.packets,
            packet_period_ns=args.period_ns,
        ).network,
        args,
        label="tcpip",
    )
    assignments = priority_permutations(list(tcpip.BUS_MASTERS))
    stats = PoolStats()
    points, results = parallel_sweep(
        "repro.systems.tcpip:build_system",
        args.dma,
        assignments,
        strategy=args.strategy,
        jobs=args.jobs,
        warm_start=args.warm_start,
        builder_kwargs={
            "num_packets": args.packets,
            "packet_period_ns": args.period_ns,
        },
        timeout_s=args.timeout_s,
        collect_telemetry=bool(args.trace or args.metrics),
        stats=stats,
        checkpoint_path=args.checkpoint,
        resume_path=args.resume,
        fault_plan=_fault_plan(args),
        fault_retries=args.fault_retries,
    )
    restored = sum(
        1 for result in results if result.ok and result.attempts == 0
    )
    if restored:
        print("%d point(s) restored from %s" % (restored, args.resume))
    failures = [result for result in results if not result.ok]
    for result in failures:
        print("point %s FAILED:\n%s" % (result.label, result.error))
    points = [point for point in points if point is not None]
    for point in points:
        print("dma=%4d  %-40s %10.3f uJ"
              % (point.dma_block_words, point.priority_label,
                 point.total_energy_j * 1e6))
    if points:
        best = DesignSpaceExplorer.minimum_energy_point(points)
        print("minimum: dma=%d, %s (%.3f uJ)"
              % (best.dma_block_words, best.priority_label,
                 best.total_energy_j * 1e6))
    if args.jobs > 1:
        print("%d points in %.2fs with %d workers (%d retries)"
              % (stats.completed, stats.wall_seconds, stats.workers,
                 stats.retries))
    if args.trace:
        write_merged_chrome_trace(results, args.trace)
        print("wrote %s (load in Perfetto / chrome://tracing)" % args.trace)
    if args.metrics:
        import json as _json

        merged = merge_metrics_snapshots(r.metrics for r in results)
        atomic_write_text(
            args.metrics,
            _json.dumps(merged, indent=1, sort_keys=True) + "\n",
        )
        print("wrote %s" % args.metrics)
    if args.out:
        _write_sweep_summary(args.out, points)
        print("wrote %s" % args.out)
    return 1 if failures else 0


def _write_sweep_summary(path: str, points) -> None:
    """Atomically write the deterministic sweep summary as JSON.

    Timing fields (``wall_seconds``, ``low_level_seconds``) are
    excluded, so an interrupted-and-resumed sweep produces a summary
    byte-identical to an uninterrupted one.  The cluster coordinator
    emits the same rows (:func:`repro.core.explorer.sweep_summary_rows`),
    which is what the cluster smoke test diffs against this file.
    """
    import json as _json

    from repro.core.explorer import sweep_summary_rows

    atomic_write_text(
        path,
        _json.dumps(sweep_summary_rows(points), indent=1, sort_keys=True)
        + "\n",
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint <system>`` — the whole-design static analyzer."""
    from repro.lint import (
        EMITTERS,
        load_baseline,
        run_lint,
        write_baseline,
    )

    bundle = _bundle(args.system)
    baseline = load_baseline(args.baseline) if args.baseline else None
    telemetry = Telemetry() if args.metrics else None
    result = run_lint(
        bundle.network,
        fast_only=args.fast,
        baseline=baseline,
        metrics=telemetry.metrics if telemetry else None,
    )
    if args.write_baseline:
        accepted = result.diagnostics + result.suppressed
        write_baseline(args.write_baseline, accepted)
        print("wrote %s (%d finding(s) accepted)"
              % (args.write_baseline, len(accepted)))
        return 0
    emitter = EMITTERS[args.format]
    text = emitter(result.diagnostics,
                   suppressed=len(result.suppressed),
                   title=bundle.network.name)
    if args.output:
        atomic_write_text(args.output, text)
        print("wrote %s" % args.output)
    else:
        print(text, end="")
    if args.metrics:
        atomic_write_text(args.metrics, telemetry.metrics.to_json() + "\n")
        print("wrote %s" % args.metrics)
    if args.cost or args.cost_output:
        from repro.lint import compute_cost_report

        cost_report = compute_cost_report(bundle.network)
        if args.cost:
            print(cost_report.render())
        if args.cost_output:
            import json as _json

            atomic_write_text(
                args.cost_output,
                _json.dumps(cost_report.to_payload(), indent=1,
                            sort_keys=True) + "\n",
            )
            print("wrote %s" % args.cost_output)
    return result.exit_code


def cmd_transvalidate(args: argparse.Namespace) -> int:
    """``repro transvalidate`` — prove the optimizer's rewrite rules."""
    from repro.lint import check_rewrite_rules, render_sarif, validate_rules

    report = validate_rules()
    for result in report.results:
        status = "SOUND" if result.sound else "UNSOUND"
        if not result.exercised:
            status = "DEAD"
        print("%-28s %-8s %6d vector(s), %d/%d template(s) fired"
              % (result.rule, status, result.vectors, result.fired,
                 result.templates))
        for counterexample in result.counterexamples:
            print("    counterexample: %s" % counterexample.render())
        for crash in result.crashes:
            print("    crash: %s" % crash)
    print("%d rule(s), %d vector(s): %s"
          % (len(report.results), report.total_vectors,
             "all sound and exercised"
             if report.all_sound and report.all_exercised
             else "UNSOUND OR DEAD RULES FOUND"))
    diagnostics = check_rewrite_rules()
    if args.output:
        import json as _json

        if args.format == "sarif":
            atomic_write_text(args.output, render_sarif(
                diagnostics, title="optimizer"))
        else:
            atomic_write_text(
                args.output,
                _json.dumps(report.to_payload(), indent=1, sort_keys=True)
                + "\n",
            )
        print("wrote %s" % args.output)
    return 0 if not diagnostics else 1


def cmd_characterize(args: argparse.Namespace) -> int:
    characterizer = MacroModelCharacterizer()
    parameter_file = characterizer.characterize()
    text = parameter_file.serialize()
    if args.output:
        atomic_write_text(args.output, text)
        print("wrote %s" % args.output)
    else:
        print(text, end="")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve`` — the long-running co-estimation service."""
    from repro.obs.slo import SLOConfig
    from repro.service import ServiceConfig, run_server

    _preflight_service(args, "serve")
    config = ServiceConfig(
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_deadline_s=args.deadline_s,
        drain_timeout_s=args.drain_timeout_s,
        breaker_threshold=args.breaker_threshold,
        breaker_recovery_s=args.breaker_recovery_s,
        checkpoint_path=args.checkpoint,
        slo=SLOConfig(
            latency_threshold_s=args.slo_latency_s,
            latency_objective=args.slo_latency_objective,
            availability_objective=args.slo_error_objective,
            window_s=args.slo_window_s,
        ),
        log_json=args.log_json,
        flight_recorder_capacity=args.flight_recorder_capacity,
        flight_dump_dir=args.flight_dump_dir,
    )
    return run_server(
        args.host,
        args.port,
        config=config,
        resume_path=args.resume,
    )


def cmd_cluster(args: argparse.Namespace) -> int:
    """``repro cluster`` — coordinator + N local worker processes."""
    from repro.cluster import ClusterConfig, run_cluster
    from repro.cluster.membership import MembershipConfig

    _preflight_service(args, "cluster")
    config = ClusterConfig(
        membership=MembershipConfig(
            suspect_after_s=args.suspect_after_s,
            dead_after_s=args.dead_after_s,
            limp_factor=args.limp_factor,
        ),
        heartbeat_interval_s=args.heartbeat_s,
        redispatch_budget=args.redispatch_budget,
        log_json=args.log_json,
        coordinator_id=args.coordinator_id or "",
        control_dir=args.control_dir,
        standby=args.standby,
        peers=list(args.peer or []),
        lease_ttl_s=args.lease_ttl_s,
        flight_dump_dir=args.flight_dump_dir,
    )
    if args.standby or args.workers == 0:
        # A standby (or a coordinator-only node) spawns no workers of
        # its own: the workers belong to the cluster, not the leader,
        # and re-register with whoever holds the lease.
        from repro.cluster import run_coordinator

        return run_coordinator(args.host, args.port, config=config)
    return run_cluster(
        args.host,
        args.port,
        workers=args.workers,
        config=config,
        worker_slots=args.slots,
    )


def cmd_worker(args: argparse.Namespace) -> int:
    """``repro worker`` — one standalone cluster worker process."""
    from repro.cluster import WorkerConfig, run_worker

    config = WorkerConfig(
        coordinator_url=args.coordinator,
        worker_id=args.worker_id or "",
        host=args.host,
        port=args.port,
        heartbeat_interval_s=args.heartbeat_s,
        slots=args.slots,
        limp_s=args.limp_s,
        peers=list(args.peer or []),
    )
    return run_worker(config)


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """Fault-injection flags shared by ``estimate`` and ``explore``."""
    group = parser.add_argument_group("fault injection (chaos testing)")
    group.add_argument("--fault-rate", type=float, default=0.0,
                       metavar="P",
                       help="per-invocation fault probability at each "
                            "injected boundary (0 disables injection)")
    group.add_argument("--fault-seed", type=int, default=0, metavar="N",
                       help="fault-schedule seed (same seed, same faults)")
    group.add_argument("--fault-sites", nargs="+",
                       default=["hw", "iss", "cache", "bus"],
                       choices=["hw", "iss", "cache", "bus"],
                       metavar="SITE",
                       help="which estimator boundaries to fault "
                            "(default: all four)")
    group.add_argument("--fault-retries", type=int, default=1, metavar="N",
                       help="supervised retries per faulted invocation "
                            "before degrading (0 makes every injected "
                            "fault visible as a non-exact provenance tag)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOC power co-estimation (Lajolo et al., DATE 2000)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    describe = commands.add_parser("describe", help="print a system summary")
    describe.add_argument("system", choices=system_names())
    describe.add_argument("--sizes", action="store_true",
                          help="compile/synthesize and report sizes")
    describe.set_defaults(func=cmd_describe)

    estimate = commands.add_parser("estimate", help="run co-estimation")
    estimate.add_argument("system", nargs="+", choices=system_names(),
                          help="one or more systems; several fan out "
                               "over --jobs workers")
    estimate.add_argument("--strategy", default="full",
                          choices=PowerCoEstimator.STRATEGIES)
    estimate.add_argument("--jobs", type=int, default=1, metavar="N",
                          help="worker processes for multi-system runs "
                               "(default: 1, sequential)")
    estimate.add_argument("--waveform-csv", metavar="PATH")
    estimate.add_argument("--waveform-vcd", metavar="PATH")
    estimate.add_argument("--bin-ns", type=float, default=1000.0)
    estimate.add_argument("--trace", metavar="FILE",
                          help="write a Chrome trace-event JSON file "
                               "(Perfetto / chrome://tracing)")
    estimate.add_argument("--metrics", metavar="FILE",
                          help="write the metrics registry snapshot as JSON")
    estimate.add_argument("--telemetry-report", action="store_true",
                          help="collect telemetry and print the "
                               "end-of-run report without writing files")
    estimate.add_argument("--no-preflight", action="store_true",
                          help="skip the fast pre-flight lint gate")
    estimate.add_argument("--fail-on-degraded", action="store_true",
                          help="exit 3 when any estimate's provenance is "
                               "below exact — a CI guard against silent "
                               "degradation (use with --strategy full; "
                               "replay strategies tag cached/macromodel "
                               "by design)")
    _add_fault_arguments(estimate)
    estimate.set_defaults(func=cmd_estimate)

    explore = commands.add_parser(
        "explore", help="sweep the TCP/IP bus design space"
    )
    explore.add_argument("--dma", type=int, nargs="+",
                         default=[2, 8, 32, 128])
    explore.add_argument("--packets", type=int, default=3)
    explore.add_argument("--period-ns", type=float, default=30_000.0)
    explore.add_argument("--strategy", default="caching",
                         choices=PowerCoEstimator.STRATEGIES)
    explore.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (default: 1 — sequential, "
                              "byte-identical to the single-process path)")
    explore.add_argument("--warm-start", action="store_true",
                         help="share the converged energy cache across "
                              "design points (per worker, validity-"
                              "guarded; see docs/parallelism.md)")
    explore.add_argument("--trace", metavar="FILE",
                         help="write a merged Chrome trace-event JSON "
                              "file; each worker is one Perfetto process")
    explore.add_argument("--metrics", metavar="FILE",
                         help="write the merged per-worker metrics "
                              "snapshot as JSON")
    explore.add_argument("--out", metavar="FILE",
                         help="write the deterministic sweep summary "
                              "(per-point reports without timing) as JSON")
    explore.add_argument("--checkpoint", metavar="FILE",
                         help="atomically rewrite FILE after every "
                              "completed point so the sweep survives kills")
    explore.add_argument("--resume", metavar="FILE",
                         help="load completed points from a checkpoint "
                              "and re-run only the unfinished ones")
    explore.add_argument("--timeout-s", type=float, default=None,
                         metavar="S",
                         help="wall-clock budget per design point "
                              "(enforced in both --jobs 1 and pooled modes)")
    explore.add_argument("--no-preflight", action="store_true",
                         help="skip the fast pre-flight lint gate")
    _add_fault_arguments(explore)
    explore.set_defaults(func=cmd_explore)

    lint = commands.add_parser(
        "lint", help="run the whole-design static analyzer"
    )
    lint.add_argument("system", choices=system_names())
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"],
                      help="report format (default: text)")
    lint.add_argument("--baseline", metavar="PATH",
                      help="suppress findings accepted in this baseline "
                           "file (see docs/static-analysis.md)")
    lint.add_argument("--write-baseline", metavar="PATH",
                      help="accept every current finding into PATH "
                           "and exit 0")
    lint.add_argument("--fast", action="store_true",
                      help="run only the fast passes (no synthesis, "
                           "no macro-model characterization) — the "
                           "same subset the pre-flight gate uses")
    lint.add_argument("--output", metavar="PATH",
                      help="write the report to PATH instead of stdout")
    lint.add_argument("--metrics", metavar="FILE",
                      help="write per-rule hit counters as a metrics "
                           "registry JSON snapshot")
    lint.add_argument("--cost", action="store_true",
                      help="append the static cost report: per-component "
                           "cycle and energy bounds, the Section 4.2 "
                           "cache-table size, and the admission weight "
                           "the service prices Retry-After with")
    lint.add_argument("--cost-output", metavar="PATH",
                      help="write the cost report as JSON to PATH")
    lint.set_defaults(func=cmd_lint)

    transvalidate = commands.add_parser(
        "transvalidate",
        help="prove the optimizer's rewrite rules sound (TV6xx)",
    )
    transvalidate.add_argument("--format", default="json",
                               choices=["json", "sarif"],
                               help="--output format (default: json)")
    transvalidate.add_argument("--output", metavar="PATH",
                               help="write the validation report to PATH")
    transvalidate.set_defaults(func=cmd_transvalidate)

    characterize = commands.add_parser(
        "characterize", help="build the SW macro-model parameter file"
    )
    characterize.add_argument("--output", metavar="PATH")
    characterize.set_defaults(func=cmd_characterize)

    serve = commands.add_parser(
        "serve", help="run the long-lived co-estimation service"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8090,
                       help="TCP port; 0 picks a free one (default: 8090)")
    serve.add_argument("--workers", type=int, default=2, metavar="N",
                       help="concurrent estimation worker threads "
                            "(default: 2)")
    serve.add_argument("--queue-depth", type=int, default=8, metavar="N",
                       help="admission queue capacity; beyond it requests "
                            "get 429 + Retry-After (default: 8)")
    serve.add_argument("--deadline-s", type=float, default=30.0, metavar="S",
                       help="default per-request deadline, queue wait "
                            "included (default: 30)")
    serve.add_argument("--drain-timeout-s", type=float, default=10.0,
                       metavar="S",
                       help="how long a SIGTERM drain may spend finishing "
                            "queued work before checkpointing the rest "
                            "(default: 10)")
    serve.add_argument("--breaker-threshold", type=int, default=3,
                       metavar="N",
                       help="consecutive supervised failures that open a "
                            "site's circuit breaker (default: 3)")
    serve.add_argument("--breaker-recovery-s", type=float, default=30.0,
                       metavar="S",
                       help="open time before a half-open probe "
                            "(default: 30)")
    serve.add_argument("--checkpoint", metavar="FILE",
                       help="write unfinished requests here on drain")
    obs_group = serve.add_argument_group("observability")
    obs_group.add_argument("--log-json", action="store_true",
                           help="emit one JSON log line per request "
                                "lifecycle event (trace-correlated)")
    obs_group.add_argument("--slo-latency-s", type=float, default=5.0,
                           metavar="S",
                           help="latency SLO threshold: a request slower "
                                "than this burns latency budget "
                                "(default %(default)s)")
    obs_group.add_argument("--slo-latency-objective", type=float,
                           default=0.95, metavar="F",
                           help="fraction of requests that must meet the "
                                "latency threshold (default %(default)s)")
    obs_group.add_argument("--slo-error-objective", type=float,
                           default=0.99, metavar="F",
                           help="fraction of requests that must not end "
                                "in a 5xx (default %(default)s)")
    obs_group.add_argument("--slo-window-s", type=float, default=300.0,
                           metavar="S",
                           help="sliding window of the SLO burn rates "
                                "(default %(default)s)")
    obs_group.add_argument("--flight-recorder-capacity", type=int,
                           default=256, metavar="N",
                           help="events kept in the in-memory flight "
                                "recorder ring (default %(default)s)")
    obs_group.add_argument("--flight-dump-dir", metavar="DIR",
                           help="directory for flight-recorder dumps on "
                                "500/504/drain (omit to disable dumps)")
    serve.add_argument("--resume", metavar="FILE",
                       help="re-enqueue the requests of a drain checkpoint "
                            "at startup")
    serve.add_argument("--no-preflight", action="store_true",
                       help="skip the startup fast-lint gate over the "
                            "bundled systems")
    serve.set_defaults(func=cmd_serve)

    cluster = commands.add_parser(
        "cluster",
        help="run the distributed coordinator plus N worker processes",
    )
    cluster.add_argument("--host", default="127.0.0.1",
                         help="coordinator bind address "
                              "(default: 127.0.0.1)")
    cluster.add_argument("--port", type=int, default=8095,
                         help="coordinator TCP port; 0 picks a free one "
                              "(default: 8095)")
    cluster.add_argument("--workers", type=int, default=3, metavar="N",
                         help="worker processes to spawn (default: 3)")
    cluster.add_argument("--slots", type=int, default=1, metavar="N",
                         help="concurrent job slots per worker "
                              "(default: 1)")
    cluster.add_argument("--heartbeat-s", type=float, default=1.0,
                         metavar="S",
                         help="worker heartbeat interval "
                              "(default %(default)s)")
    cluster.add_argument("--suspect-after-s", type=float, default=3.0,
                         metavar="S",
                         help="heartbeat age that marks a worker suspect "
                              "(default %(default)s)")
    cluster.add_argument("--dead-after-s", type=float, default=10.0,
                         metavar="S",
                         help="heartbeat age that declares a worker dead "
                              "and re-dispatches its jobs "
                              "(default %(default)s)")
    cluster.add_argument("--limp-factor", type=float, default=4.0,
                         metavar="X",
                         help="latency multiple over the peer median that "
                              "quarantines a limping worker "
                              "(default %(default)s)")
    cluster.add_argument("--redispatch-budget", type=int, default=2,
                         metavar="N",
                         help="re-dispatches allowed per job after "
                              "transport failures (default %(default)s)")
    cluster.add_argument("--coordinator-id", default="", metavar="ID",
                         help="stable coordinator identity for HA "
                              "(default: coord-<pid>); the smallest id "
                              "wins a contested election")
    cluster.add_argument("--control-dir", default=None, metavar="DIR",
                         help="shared directory for the control-plane "
                              "journal and leadership lease; setting it "
                              "enables coordinator HA "
                              "(see docs/cluster-ha.md)")
    cluster.add_argument("--standby", action="store_true",
                         help="start as a standby: tail the leader's "
                              "journal and take over only when the "
                              "lease expires or is released")
    cluster.add_argument("--peer", action="append", default=[],
                         metavar="URL",
                         help="another coordinator's URL (repeatable); "
                              "handed to workers and clients for "
                              "failover")
    cluster.add_argument("--lease-ttl-s", type=float, default=3.0,
                         metavar="S",
                         help="leadership lease TTL; a dead leader is "
                              "succeeded within this long (default: 3.0)")
    cluster.add_argument("--flight-dump-dir", default=None, metavar="DIR",
                         help="write flight-recorder dumps here on "
                              "takeover/deposition")
    cluster.add_argument("--log-json", action="store_true",
                         help="emit one JSON log line per cluster event "
                              "(registrations, state changes, "
                              "re-dispatches, quarantines)")
    cluster.add_argument("--no-preflight", action="store_true",
                         help="skip the startup fast-lint gate over the "
                              "bundled systems")
    cluster.set_defaults(func=cmd_cluster)

    worker = commands.add_parser(
        "worker", help="run one standalone cluster worker"
    )
    worker.add_argument("--coordinator", required=True, metavar="URL",
                        help="coordinator base URL, e.g. "
                             "http://127.0.0.1:8095")
    worker.add_argument("--worker-id", default="", metavar="ID",
                        help="stable worker identity "
                             "(default: worker-<pid>)")
    worker.add_argument("--host", default="127.0.0.1",
                        help="worker bind address (default: 127.0.0.1)")
    worker.add_argument("--port", type=int, default=0,
                        help="worker TCP port; 0 picks a free one "
                             "(default: 0)")
    worker.add_argument("--heartbeat-s", type=float, default=1.0,
                        metavar="S",
                        help="heartbeat interval (default %(default)s)")
    worker.add_argument("--slots", type=int, default=1, metavar="N",
                        help="concurrent job slots (default: 1)")
    worker.add_argument("--peer", action="append", default=[],
                        metavar="URL",
                        help="additional coordinator URL to fail over "
                             "through (repeatable)")
    worker.add_argument("--limp-s", type=float, default=0.0, metavar="S",
                        help="fault injection: sleep S seconds before "
                             "every job and heartbeat — makes this worker "
                             "limp for quarantine testing (default: 0)")
    worker.set_defaults(func=cmd_worker)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

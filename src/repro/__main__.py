"""Command-line interface: ``python -m repro <command>``.

Commands operate on the built-in example systems:

* ``describe <system>`` — print the network, partition, and
  implementation sizes.
* ``estimate <system> [--strategy S] [--waveform-csv PATH]`` — run
  power co-estimation and print the energy report.
* ``explore [--dma ...] [--strategy S]`` — sweep the TCP/IP bus
  design space and report the minimum-energy configuration.
* ``characterize`` — run the software macro-model characterization and
  print the parameter file (the paper's Figure 3 artifact).

Systems: ``fig1`` (producer/timer/consumer), ``tcpip``, ``automotive``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cfsm.describe import describe_network, implementation_statistics
from repro.core import PowerCoEstimator
from repro.core.explorer import DesignSpaceExplorer, priority_permutations
from repro.core.macromodel import MacroModelCharacterizer
from repro.master.export import export_power_csv, export_power_vcd
from repro.systems import automotive, producer_consumer, tcpip
from repro.systems.bundle import SystemBundle
from repro.telemetry import Telemetry, render_report, write_chrome_trace

_SYSTEMS = {
    "fig1": lambda: producer_consumer.build_system(num_packets=4),
    "tcpip": lambda: tcpip.build_system(dma_block_words=16),
    "automotive": lambda: automotive.build_system(),
}


def _bundle(name: str) -> SystemBundle:
    try:
        return _SYSTEMS[name]()
    except KeyError:
        raise SystemExit(
            "unknown system %r (choose from %s)" % (name, ", ".join(_SYSTEMS))
        )


def cmd_describe(args: argparse.Namespace) -> int:
    bundle = _bundle(args.system)
    stats = implementation_statistics(bundle.network) if args.sizes else None
    print(describe_network(bundle.network, stats))
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    bundle = _bundle(args.system)
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    telemetry = None
    if args.trace or args.metrics or args.telemetry_report:
        telemetry = Telemetry()
    result = estimator.estimate(
        bundle.stimuli(),
        strategy=args.strategy,
        shared_memory_image=bundle.shared_memory_image,
        telemetry=telemetry,
    )
    print(result.report.pretty())
    if telemetry is not None:
        if args.trace:
            write_chrome_trace(telemetry.tracer, args.trace)
            print("wrote %s (load in Perfetto / chrome://tracing)" % args.trace)
        if args.metrics:
            with open(args.metrics, "w") as handle:
                handle.write(telemetry.metrics.to_json())
                handle.write("\n")
            print("wrote %s" % args.metrics)
        print()
        print(render_report(telemetry))
    if args.waveform_csv:
        with open(args.waveform_csv, "w") as handle:
            handle.write(
                export_power_csv(result.master.accountant, bin_ns=args.bin_ns)
            )
        print("wrote %s" % args.waveform_csv)
    if args.waveform_vcd:
        with open(args.waveform_vcd, "w") as handle:
            handle.write(
                export_power_vcd(result.master.accountant, bin_ns=args.bin_ns)
            )
        print("wrote %s" % args.waveform_vcd)
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    assignments = priority_permutations(list(tcpip.BUS_MASTERS))
    points = []
    for priorities in assignments:
        for dma in args.dma:
            bundle = tcpip.build_system(
                dma_block_words=dma,
                num_packets=args.packets,
                packet_period_ns=args.period_ns,
                priorities=priorities,
            )
            explorer = DesignSpaceExplorer(
                bundle.network, bundle.config, bundle.stimuli_factory
            )
            point = explorer.evaluate(dma, priorities, strategy=args.strategy)
            points.append(point)
            print("dma=%4d  %-40s %10.3f uJ"
                  % (dma, point.priority_label, point.total_energy_j * 1e6))
    best = DesignSpaceExplorer.minimum_energy_point(points)
    print("minimum: dma=%d, %s (%.3f uJ)"
          % (best.dma_block_words, best.priority_label,
             best.total_energy_j * 1e6))
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    characterizer = MacroModelCharacterizer()
    parameter_file = characterizer.characterize()
    text = parameter_file.serialize()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print("wrote %s" % args.output)
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOC power co-estimation (Lajolo et al., DATE 2000)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    describe = commands.add_parser("describe", help="print a system summary")
    describe.add_argument("system", choices=sorted(_SYSTEMS))
    describe.add_argument("--sizes", action="store_true",
                          help="compile/synthesize and report sizes")
    describe.set_defaults(func=cmd_describe)

    estimate = commands.add_parser("estimate", help="run co-estimation")
    estimate.add_argument("system", choices=sorted(_SYSTEMS))
    estimate.add_argument("--strategy", default="full",
                          choices=PowerCoEstimator.STRATEGIES)
    estimate.add_argument("--waveform-csv", metavar="PATH")
    estimate.add_argument("--waveform-vcd", metavar="PATH")
    estimate.add_argument("--bin-ns", type=float, default=1000.0)
    estimate.add_argument("--trace", metavar="FILE",
                          help="write a Chrome trace-event JSON file "
                               "(Perfetto / chrome://tracing)")
    estimate.add_argument("--metrics", metavar="FILE",
                          help="write the metrics registry snapshot as JSON")
    estimate.add_argument("--telemetry-report", action="store_true",
                          help="collect telemetry and print the "
                               "end-of-run report without writing files")
    estimate.set_defaults(func=cmd_estimate)

    explore = commands.add_parser(
        "explore", help="sweep the TCP/IP bus design space"
    )
    explore.add_argument("--dma", type=int, nargs="+",
                         default=[2, 8, 32, 128])
    explore.add_argument("--packets", type=int, default=3)
    explore.add_argument("--period-ns", type=float, default=30_000.0)
    explore.add_argument("--strategy", default="caching",
                         choices=PowerCoEstimator.STRATEGIES)
    explore.set_defaults(func=cmd_explore)

    characterize = commands.add_parser(
        "characterize", help="build the SW macro-model parameter file"
    )
    characterize.add_argument("--output", metavar="PATH")
    characterize.set_defaults(func=cmd_characterize)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

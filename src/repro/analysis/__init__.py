"""Statistics helpers used by the experiment harness."""

from repro.analysis.correlate import PeakCorrelation, peak_bus_correlation
from repro.analysis.stats import (
    Histogram,
    linear_fit,
    mean,
    ranking_preserved,
    spearman_rank_correlation,
    variance,
)

__all__ = [
    "Histogram",
    "mean",
    "variance",
    "spearman_rank_correlation",
    "linear_fit",
    "ranking_preserved",
    "peak_bus_correlation",
    "PeakCorrelation",
]

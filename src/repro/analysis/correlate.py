"""Correlating functional activity with power (paper, Section 5.3).

"Another useful application of our environment is that it can
highlight peak periods in power consumption, and correlate functional
information with power information.  For example ... the peaks in
power consumption are associated with the points in time when the
modules handshake with the arbiter."

The helpers here quantify exactly that observation from a finished
run's energy accounting: which time bins are power peaks, which bins
contain bus (arbiter) activity, and how much more likely a peak bin is
to coincide with bus activity than an average bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.master.tracing import EnergyAccountant


@dataclass
class PeakCorrelation:
    """Result of a peak/activity correlation analysis."""

    peak_bins: int
    peak_bins_with_activity: int
    activity_bin_fraction: float
    lift: float

    @property
    def peak_activity_fraction(self) -> float:
        if self.peak_bins == 0:
            return 0.0
        return self.peak_bins_with_activity / self.peak_bins


def activity_bins(
    accountant: EnergyAccountant,
    bin_ns: float,
    component: str,
    end_ns: Optional[float] = None,
) -> List[bool]:
    """Whether each time bin contains any activity of ``component``."""
    if bin_ns <= 0:
        raise ValueError("bin size must be positive")
    horizon = end_ns
    if horizon is None:
        horizon = max((s.end_ns for s in accountant.samples), default=0.0)
    bins = max(1, int(horizon / bin_ns) + 1)
    active = [False] * bins
    for sample in accountant.samples:
        if sample.component != component:
            continue
        first = min(bins - 1, int(sample.start_ns / bin_ns))
        last = min(bins - 1, int(max(sample.start_ns, sample.end_ns - 1e-9)
                                 / bin_ns))
        for index in range(first, last + 1):
            active[index] = True
    return active


def peak_bus_correlation(
    accountant: EnergyAccountant,
    bin_ns: float,
    peak_fraction: float = 0.1,
    bus_component: str = "_bus",
) -> PeakCorrelation:
    """How strongly power peaks coincide with bus/arbiter handshakes.

    Args:
        accountant: energy accounting of a finished co-simulation.
        bin_ns: waveform bin size.
        peak_fraction: the top fraction of non-empty bins (by power)
            treated as "peaks".
        bus_component: the accounting component holding bus energy.

    Returns:
        Counts plus the *lift*: the probability that a peak bin has bus
        activity divided by the probability that any bin does.  A lift
        well above 1 reproduces the paper's observation.
    """
    if not 0.0 < peak_fraction <= 1.0:
        raise ValueError("peak fraction must be in (0, 1]")
    waveform = accountant.power_waveform(bin_ns)
    active = activity_bins(accountant, bin_ns, bus_component)
    length = min(len(waveform), len(active))
    powered = [
        (power, index)
        for index, (_, power) in enumerate(waveform[:length])
        if power > 0.0
    ]
    if not powered:
        return PeakCorrelation(0, 0, 0.0, 0.0)
    powered.sort(reverse=True)
    peak_count = max(1, int(len(powered) * peak_fraction))
    peak_indexes = [index for _, index in powered[:peak_count]]
    peaks_with_activity = sum(1 for index in peak_indexes if active[index])
    baseline = sum(1 for _, index in powered if active[index]) / len(powered)
    fraction = peaks_with_activity / peak_count
    lift = fraction / baseline if baseline > 0 else float("inf")
    return PeakCorrelation(
        peak_bins=peak_count,
        peak_bins_with_activity=peaks_with_activity,
        activity_bin_fraction=baseline,
        lift=lift,
    )

"""Small, dependency-free statistics used by the experiments.

These cover what the paper's evaluation needs: energy histograms
(Figure 4(b)), rank-preservation checks and linear fits for the
relative-accuracy study (Figure 6), and basic moments for the energy
cache analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (0.0 for fewer than two samples)."""
    n = len(values)
    if n < 2:
        return 0.0
    center = mean(values)
    return sum((value - center) ** 2 for value in values) / (n - 1)


@dataclass
class Histogram:
    """A fixed-bin histogram over a value range."""

    lo: float
    hi: float
    counts: List[int] = field(default_factory=list)

    @classmethod
    def of(cls, values: Sequence[float], bins: int = 12) -> "Histogram":
        """Bin ``values`` into ``bins`` equal-width buckets."""
        if bins < 1:
            raise ValueError("need at least one bin")
        if not values:
            return cls(0.0, 1.0, [0] * bins)
        lo = min(values)
        hi = max(values)
        if hi == lo:
            hi = lo + 1.0
        counts = [0] * bins
        width = (hi - lo) / bins
        for value in values:
            index = min(bins - 1, int((value - lo) / width))
            counts[index] += 1
        return cls(lo, hi, counts)

    @property
    def bins(self) -> int:
        return len(self.counts)

    def spread_score(self) -> float:
        """Fraction of samples outside the modal bin.

        Near 0 for the concentrated histogram of a low-variance path
        (Figure 4(b), path 1,4,7,8); large for a spread-out one (path
        1,3,6,8).
        """
        total = sum(self.counts)
        if total == 0:
            return 0.0
        return 1.0 - max(self.counts) / total

    def render(self, width: int = 40) -> str:
        """ASCII rendering (one row per bin)."""
        peak = max(self.counts) if self.counts else 0
        lines = []
        bin_width = (self.hi - self.lo) / max(1, self.bins)
        for index, count in enumerate(self.counts):
            bar = "#" * (0 if peak == 0 else int(round(width * count / peak)))
            lines.append(
                "%10.3g | %-*s %d"
                % (self.lo + index * bin_width, width, bar, count)
            )
        return "\n".join(lines)


def _ranks(values: Sequence[float]) -> List[float]:
    """Fractional ranks (ties get the average rank)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = rank
        i = j + 1
    return ranks


def spearman_rank_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman's rho between two samples (1.0 = same ranking)."""
    if len(x) != len(y):
        raise ValueError("samples must have equal length")
    if len(x) < 2:
        return 1.0
    rx = _ranks(x)
    ry = _ranks(y)
    mx = mean(rx)
    my = mean(ry)
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    sx = sum((a - mx) ** 2 for a in rx) ** 0.5
    sy = sum((b - my) ** 2 for b in ry) ** 0.5
    if sx == 0 or sy == 0:
        return 1.0
    return cov / (sx * sy)


def ranking_preserved(x: Sequence[float], y: Sequence[float]) -> bool:
    """Whether sorting by ``y`` orders items exactly as sorting by ``x``.

    This is the paper's "relative accuracy" criterion for Figure 6: the
    macro-model estimates rank the candidate configurations the same
    way the reference estimates do.
    """
    if len(x) != len(y):
        raise ValueError("samples must have equal length")
    order_x = sorted(range(len(x)), key=lambda i: x[i])
    order_y = sorted(range(len(y)), key=lambda i: y[i])
    return order_x == order_y


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares line through (x, y): returns (slope, intercept, r).

    ``r`` is Pearson's correlation coefficient — near 1.0 indicates the
    linear relationship the paper observes between macro-model and
    reference energies.
    """
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need two equal-length samples of size >= 2")
    mx = mean(x)
    my = mean(y)
    sxx = sum((a - mx) ** 2 for a in x)
    syy = sum((b - my) ** 2 for b in y)
    sxy = sum((a - mx) * (b - my) for a, b in zip(x, y))
    if sxx == 0:
        raise ValueError("x values are constant; no line fits")
    slope = sxy / sxx
    intercept = my - slope * mx
    r = 0.0 if syy == 0 else sxy / (sxx ** 0.5 * syy ** 0.5)
    return slope, intercept, r

"""SOC integration-architecture substrate (shared bus + arbiter + DMA).

Implements the paper's behavioral, parameterizable bus model: a shared
bus with a priority arbiter, optional DMA block transfers, and
per-line switching-activity tracking.  Bus power follows the paper's
formula ``P = 1/2 Vdd^2 f * sum_i Ceff(line_i) A(line_i)``: we count
actual toggles per line during co-simulation and charge
``1/2 Ceff Vdd^2`` per toggle.

All parameters (priorities, DMA block size, widths, capacitance) can be
changed between co-estimation runs without recompiling the system
description — the property the paper relies on for design-space
exploration (Section 5.3).
"""

from repro.bus.model import BusGrant, BusParameters, BusRequest
from repro.bus.arbiter import PriorityArbiter
from repro.bus.dma import block_sizes
from repro.bus.busmodel import SharedBus

__all__ = [
    "BusParameters",
    "BusRequest",
    "BusGrant",
    "PriorityArbiter",
    "SharedBus",
    "block_sizes",
]

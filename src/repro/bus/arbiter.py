"""Priority arbitration among pending bus requests."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bus.model import BusRequest


class ArbitrationPolicy:
    """Supported arbitration policies."""

    FIXED_PRIORITY = "fixed_priority"
    ROUND_ROBIN = "round_robin"

    ALL = (FIXED_PRIORITY, ROUND_ROBIN)


class PriorityArbiter:
    """Bus arbiter: fixed-priority (default) or round-robin.

    Fixed priority: lower priority value wins; ties (equal priority, or
    masters without an assigned priority) break by submission order,
    which keeps the model deterministic.  Round robin: the next master
    after the previously granted one (in name order) with a pending
    request wins — the fair alternative arbitration for the
    communication-architecture design space.

    Grant counts and cumulative wait statistics per master are recorded
    for the contention analyses of Section 5.3.
    """

    def __init__(self, priorities: Optional[Dict[str, int]] = None,
                 default_priority: int = 100,
                 policy: str = ArbitrationPolicy.FIXED_PRIORITY) -> None:
        if policy not in ArbitrationPolicy.ALL:
            raise ValueError("unknown arbitration policy %r" % policy)
        self.priorities = dict(priorities or {})
        self.default_priority = default_priority
        self.policy = policy
        self.grants: Dict[str, int] = {}
        self.wait_ns: Dict[str, float] = {}
        self._last_master: Optional[str] = None

    def priority_of(self, master: str) -> int:
        """Priority level of ``master`` (lower wins)."""
        return self.priorities.get(master, self.default_priority)

    def pick(self, pending: List[BusRequest]) -> BusRequest:
        """Select the next request to serve from ``pending``."""
        if not pending:
            raise ValueError("arbiter invoked with no pending requests")
        if self.policy == ArbitrationPolicy.ROUND_ROBIN:
            return self._pick_round_robin(pending)
        return min(
            pending,
            key=lambda r: (self.priority_of(r.master), r.submitted_ns, r.request_id),
        )

    def _pick_round_robin(self, pending: List[BusRequest]) -> BusRequest:
        masters = sorted({request.master for request in pending})
        chosen_master = masters[0]
        if self._last_master is not None:
            for name in masters:
                if name > self._last_master:
                    chosen_master = name
                    break
        candidates = [r for r in pending if r.master == chosen_master]
        return min(candidates, key=lambda r: (r.submitted_ns, r.request_id))

    def record_grant(self, request: BusRequest, start_ns: float) -> None:
        """Book-keeping for one grant."""
        self.grants[request.master] = self.grants.get(request.master, 0) + 1
        waited = max(0.0, start_ns - request.submitted_ns)
        self.wait_ns[request.master] = self.wait_ns.get(request.master, 0.0) + waited
        self._last_master = request.master

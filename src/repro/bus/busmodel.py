"""The shared-bus timeline model.

The bus is a queued resource: masters submit word transfers, the
arbiter grants the bus one DMA burst at a time (so higher-priority
masters can grab it between bursts of a long transfer), and every
granted burst advances a busy-until timeline.  Address and data line
toggles are counted against the actual values moved, which is the
switching activity ``A(line_i)`` in the paper's bus power formula.

The simulation master drives the model with two calls:

* :meth:`SharedBus.submit` when a transition produces a transfer, and
* :meth:`SharedBus.advance` before dispatching events at a new time,
  collecting completed grants to schedule their continuation events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bus.arbiter import PriorityArbiter
from repro.bus.dma import blocks_needed
from repro.bus.model import BusGrant, BusParameters, BusRequest
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class _Progress:
    first_start_ns: float
    blocks: int = 0
    cycles: int = 0
    energy_j: float = 0.0


class SharedBus:
    """Priority-arbitrated shared bus with DMA bursts."""

    def __init__(
        self,
        params: Optional[BusParameters] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.params = params or BusParameters()
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self.arbiter = PriorityArbiter(self.params.priorities,
                                       policy=self.params.arbitration)
        self.pending: List[BusRequest] = []
        self.busy_until_ns = 0.0
        self.addr_activity = [0] * self.params.addr_width
        self.data_activity = [0] * self.params.data_width
        self.total_energy = 0.0
        self.total_busy_cycles = 0
        self.total_words = 0
        self.total_grants = 0
        self._last_addr = 0
        self._last_data = 0
        self._next_id = 0
        self._progress: Dict[int, _Progress] = {}

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        master: str,
        is_write: bool,
        base_address: int,
        words: List[int],
        time_ns: float,
    ) -> BusRequest:
        """Queue a transfer of ``words`` starting at ``base_address``."""
        if not words:
            raise ValueError("bus transfer needs at least one word")
        request = BusRequest(
            master=master,
            is_write=is_write,
            base_address=base_address,
            words=list(words),
            submitted_ns=time_ns,
            request_id=self._next_id,
        )
        self._next_id += 1
        self.pending.append(request)
        return request

    # -- timeline ------------------------------------------------------------

    def advance(self, now_ns: float) -> List[BusGrant]:
        """Serve every burst that can start at or before ``now_ns``.

        Returns completed requests as grants; a grant's ``end_ns`` may
        lie slightly beyond ``now_ns`` when its final burst started
        before ``now_ns`` — the caller schedules the completion event
        at that future time.
        """
        completed: List[BusGrant] = []
        while self.pending:
            start = self.busy_until_ns
            ready = [r for r in self.pending if r.submitted_ns <= start]
            if not ready:
                earliest = min(r.submitted_ns for r in self.pending)
                start = earliest
                ready = [r for r in self.pending if r.submitted_ns <= start]
            if start > now_ns:
                break
            request = self.arbiter.pick(ready)
            grant = self._serve_burst(request, start)
            if grant is not None:
                completed.append(grant)
        return completed

    def _serve_burst(self, request: BusRequest, start_ns: float) -> Optional[BusGrant]:
        params = self.params
        progress = self._progress.get(request.request_id)
        if progress is None:
            progress = _Progress(first_start_ns=start_ns)
            self._progress[request.request_id] = progress
            self.arbiter.record_grant(request, start_ns)

        burst_words = params.dma_block_words if params.dma_enabled else 1
        count = min(burst_words, request.remaining)
        words = request.words[request.words_done:request.words_done + count]
        address = request.base_address + request.words_done

        energy = params.arbitration_energy_j
        energy += self._drive_address(address)
        for word in words:
            energy += self._drive_data(word)

        cycles = (
            params.handshake_cycles
            + params.memory_latency_cycles
            + count * params.cycles_per_word
        )
        self.busy_until_ns = start_ns + cycles * params.clock_period_ns
        self.total_busy_cycles += cycles
        self.total_energy += energy
        self.total_words += count
        self.total_grants += 1
        progress.blocks += 1
        progress.cycles += cycles
        progress.energy_j += energy
        request.words_done += count

        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter("bus.bursts").inc()
            telemetry.metrics.counter("bus.words").inc(count)

        if request.remaining > 0:
            return None
        self.pending.remove(request)
        self._progress.pop(request.request_id)
        grant = BusGrant(
            request=request,
            start_ns=progress.first_start_ns,
            end_ns=self.busy_until_ns,
            blocks=progress.blocks,
            bus_cycles=progress.cycles,
            energy_j=progress.energy_j,
        )
        if telemetry.enabled:
            telemetry.metrics.counter("bus.grants").inc()
            telemetry.tracer.instant(
                "bus.grant",
                track="bus",
                args={
                    "master": request.master,
                    "words": len(request.words),
                    "start_ns": grant.start_ns,
                    "end_ns": grant.end_ns,
                    "energy_j": grant.energy_j,
                },
            )
        return grant

    # -- line activity ------------------------------------------------------------

    def _drive_address(self, address: int) -> float:
        mask = (1 << self.params.addr_width) - 1
        flipped = (self._last_addr ^ address) & mask
        toggles = 0
        bit = 0
        while flipped:
            if flipped & 1:
                self.addr_activity[bit] += 1
                toggles += 1
            flipped >>= 1
            bit += 1
        self._last_addr = address & mask
        return toggles * self.params.energy_per_toggle()

    def _drive_data(self, word: int) -> float:
        mask = (1 << self.params.data_width) - 1
        flipped = (self._last_data ^ word) & mask
        toggles = 0
        bit = 0
        while flipped:
            if flipped & 1:
                self.data_activity[bit] += 1
                toggles += 1
            flipped >>= 1
            bit += 1
        self._last_data = word & mask
        return toggles * self.params.energy_per_toggle()

    # -- reporting ------------------------------------------------------------

    def expected_blocks(self, total_words: int) -> int:
        """Arbitrations a transfer of ``total_words`` will need."""
        return blocks_needed(
            total_words, self.params.dma_enabled, self.params.dma_block_words
        )

    def line_activity(self) -> Dict[str, List[int]]:
        """Toggle counts per address/data line (LSB first)."""
        return {
            "addr": list(self.addr_activity),
            "data": list(self.data_activity),
        }

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of elapsed time the bus was driving a burst."""
        if elapsed_ns <= 0:
            return 0.0
        busy_ns = self.total_busy_cycles * self.params.clock_period_ns
        return min(1.0, busy_ns / elapsed_ns)

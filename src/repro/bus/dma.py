"""DMA block-transfer policy.

With DMA enabled, a transfer of N words is moved in bursts of at most
``dma_block_words`` words; each burst pays one arbitration handshake
and one memory-latency setup, and the bus is re-arbitrated *between*
bursts, so large DMA blocks trade arbitration overhead (fewer
handshakes) against responsiveness for higher-priority masters (longer
bus tenures).  This is the exact mechanism behind the paper's Table 1
and Figure 7 sweeps over DMA size.
"""

from __future__ import annotations

from typing import Iterator


def block_sizes(total_words: int, dma_enabled: bool, dma_block_words: int) -> Iterator[int]:
    """Yield the burst sizes used to move ``total_words`` words.

    Without DMA every word is its own bus transaction.
    """
    if total_words < 0:
        raise ValueError("cannot transfer a negative number of words")
    if total_words == 0:
        return
    burst = dma_block_words if dma_enabled else 1
    remaining = total_words
    while remaining > 0:
        size = min(burst, remaining)
        yield size
        remaining -= size


def blocks_needed(total_words: int, dma_enabled: bool, dma_block_words: int) -> int:
    """Number of bursts (arbitrations) a transfer requires."""
    if total_words <= 0:
        return 0
    burst = dma_block_words if dma_enabled else 1
    return (total_words + burst - 1) // burst

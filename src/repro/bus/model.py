"""Bus parameters, requests, and grants."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class BusParameters:
    """User-specified integration-architecture parameters.

    These are the knobs the paper's behavioral bus model exposes; all
    of them can be changed between co-estimation runs without
    recompiling the system.

    Attributes:
        addr_width: address bus width in bits.
        data_width: data bus width in bits.
        vdd: supply voltage in volts.
        clock_period_ns: bus clock period.
        line_capacitance_f: effective capacitance per bus line in
            farads (wiring plus buffers/repeaters, from the floorplan
            budget as described in the paper).
        handshake_cycles: request/grant/acknowledge overhead paid per
            arbitration (once per DMA block).
        memory_latency_cycles: shared-memory access setup per block.
        cycles_per_word: data beats per word transferred.
        dma_enabled: when False every word is its own arbitration.
        dma_block_words: maximum words moved per bus tenure when DMA is
            enabled (the paper's "DMA size" parameter).
        priorities: master name to priority level; lower value wins.
        arbitration_energy_j: arbiter energy per grant.
        arbitration: "fixed_priority" (the paper's scheme) or
            "round_robin" (the fair alternative).
    """

    addr_width: int = 8
    data_width: int = 8
    vdd: float = 3.3
    clock_period_ns: float = 10.0
    line_capacitance_f: float = 10e-9
    handshake_cycles: int = 3
    memory_latency_cycles: int = 2
    cycles_per_word: int = 1
    dma_enabled: bool = True
    dma_block_words: int = 16
    priorities: Dict[str, int] = field(default_factory=dict)
    arbitration_energy_j: float = 0.4e-9
    arbitration: str = "fixed_priority"

    def __post_init__(self) -> None:
        if self.addr_width <= 0 or self.data_width <= 0:
            raise ValueError("bus widths must be positive")
        if self.dma_block_words <= 0:
            raise ValueError("DMA block size must be positive")
        if self.clock_period_ns <= 0:
            raise ValueError("bus clock period must be positive")

    @classmethod
    def paper_figure7(cls, dma_block_words: int = 16,
                      priorities: Optional[Dict[str, int]] = None) -> "BusParameters":
        """The parameter point reported for Figure 7 of the paper:
        Vdd = 3.3 V, Cbit = 10 nF, 8-bit address and data buses."""
        return cls(
            addr_width=8,
            data_width=8,
            vdd=3.3,
            line_capacitance_f=10e-9,
            dma_block_words=dma_block_words,
            priorities=dict(priorities or {}),
        )

    def with_dma(self, dma_block_words: int) -> "BusParameters":
        """Copy with a different DMA block size."""
        return BusParameters(
            addr_width=self.addr_width,
            data_width=self.data_width,
            vdd=self.vdd,
            clock_period_ns=self.clock_period_ns,
            line_capacitance_f=self.line_capacitance_f,
            handshake_cycles=self.handshake_cycles,
            memory_latency_cycles=self.memory_latency_cycles,
            cycles_per_word=self.cycles_per_word,
            dma_enabled=self.dma_enabled,
            dma_block_words=dma_block_words,
            priorities=dict(self.priorities),
            arbitration_energy_j=self.arbitration_energy_j,
            arbitration=self.arbitration,
        )

    def with_priorities(self, priorities: Dict[str, int]) -> "BusParameters":
        """Copy with a different priority assignment."""
        return BusParameters(
            addr_width=self.addr_width,
            data_width=self.data_width,
            vdd=self.vdd,
            clock_period_ns=self.clock_period_ns,
            line_capacitance_f=self.line_capacitance_f,
            handshake_cycles=self.handshake_cycles,
            memory_latency_cycles=self.memory_latency_cycles,
            cycles_per_word=self.cycles_per_word,
            dma_enabled=self.dma_enabled,
            dma_block_words=self.dma_block_words,
            priorities=dict(priorities),
            arbitration_energy_j=self.arbitration_energy_j,
            arbitration=self.arbitration,
        )

    def energy_per_toggle(self) -> float:
        """``1/2 Ceff Vdd^2`` for one line transition, in joules."""
        return 0.5 * self.line_capacitance_f * self.vdd * self.vdd


@dataclass
class BusRequest:
    """One shared-memory transfer submitted by a master.

    ``words`` carries the data values so that the model can compute
    true switching activity on the data lines.
    """

    master: str
    is_write: bool
    base_address: int
    words: List[int]
    submitted_ns: float
    request_id: int = 0
    words_done: int = 0

    @property
    def remaining(self) -> int:
        return len(self.words) - self.words_done


@dataclass
class BusGrant:
    """Completion record for one request."""

    request: BusRequest
    start_ns: float
    end_ns: float
    blocks: int
    bus_cycles: int
    energy_j: float

    @property
    def wait_ns(self) -> float:
        """Time the request spent waiting for its first grant."""
        return max(0.0, self.start_ns - self.request.submitted_ns)

"""Bus power from switching activity: the paper's formula.

``P_bus = 1/2 Vdd^2 f * sum_i Ceff(line_i) A(line_i)`` where
``A(line_i)`` is the per-cycle toggle probability of line ``i``.  The
co-simulation counts actual toggles, so the formula is evaluated with
``A = toggles_i / cycles``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.bus.busmodel import SharedBus
from repro.bus.model import BusParameters


def average_bus_power(
    params: BusParameters,
    line_toggles: Sequence[int],
    total_cycles: int,
    line_capacitance_f: Optional[Sequence[float]] = None,
) -> float:
    """Average power in watts over ``total_cycles`` bus cycles.

    Args:
        params: bus parameters (voltage, clock).
        line_toggles: toggle count for each line.
        total_cycles: bus cycles elapsed.
        line_capacitance_f: per-line effective capacitance; defaults to
            the uniform ``params.line_capacitance_f``.
    """
    if total_cycles <= 0:
        return 0.0
    frequency = 1.0 / (params.clock_period_ns * 1e-9)
    capacitances = (
        list(line_capacitance_f)
        if line_capacitance_f is not None
        else [params.line_capacitance_f] * len(line_toggles)
    )
    if len(capacitances) != len(line_toggles):
        raise ValueError("capacitance list does not match line count")
    total = 0.0
    for toggles, capacitance in zip(line_toggles, capacitances):
        activity = toggles / total_cycles
        total += capacitance * activity
    return 0.5 * params.vdd * params.vdd * frequency * total


def bus_power_report(bus: SharedBus, elapsed_ns: float) -> Dict[str, float]:
    """Summary of a bus's activity after a co-simulation run."""
    cycles = max(1, int(elapsed_ns / bus.params.clock_period_ns))
    activity = bus.line_activity()
    return {
        "energy_j": bus.total_energy,
        "avg_power_w": (
            average_bus_power(bus.params, activity["addr"], cycles)
            + average_bus_power(bus.params, activity["data"], cycles)
        ),
        "utilization": bus.utilization(elapsed_ns),
        "grants": float(bus.total_grants),
        "words": float(bus.total_words),
    }

"""Cache-simulator substrate.

As in the paper, the instruction-set simulator assumes 100% cache hits;
cache behaviour is modeled by a fast cache simulator attached directly
to the simulation master, which feeds it the memory references produced
by executing the discrete-event model of each CFSM.  This architecture
is also why the energy-caching speedup introduces no error in the cache
statistics: skipping an ISS invocation does not change the reference
stream seen by the cache simulator (Table 1 discussion).
"""

from repro.cache.cachesim import CacheAccess, CacheConfig, CacheSimulator

__all__ = ["CacheConfig", "CacheSimulator", "CacheAccess"]

"""Set-associative cache simulator with energy and stall accounting.

The simulator is deliberately fast (dictionary tag stores, true-LRU via
access counters) because, as in the paper, it is invoked for every
memory reference the master extracts from behavioral execution — it
must never become the bottleneck the low-level simulators are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from repro.errors import ReproError

from repro.telemetry import NULL_TELEMETRY, Telemetry


class CacheConfigError(ReproError):
    """Raised for invalid cache geometries."""


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Cache geometry and cost parameters.

    Attributes:
        size_bytes: total capacity.
        line_bytes: line (block) size.
        associativity: ways per set.
        word_bytes: addressable word size used by the CFSM memory maps.
        hit_energy_j: energy per hit access.
        miss_energy_j: extra energy per miss (tag miss + line fill
            control; the main-memory/bus traffic itself is charged by
            the caller).
        miss_penalty_cycles: processor stall cycles per miss.
        write_back: write-back with dirty bits when True, else
            write-through.
    """

    size_bytes: int = 4096
    line_bytes: int = 16
    associativity: int = 2
    word_bytes: int = 4
    hit_energy_j: float = 0.12e-9
    miss_energy_j: float = 0.95e-9
    miss_penalty_cycles: int = 8
    write_back: bool = True

    def __post_init__(self) -> None:
        for name in ("size_bytes", "line_bytes", "associativity", "word_bytes"):
            if not _is_power_of_two(getattr(self, name)):
                raise CacheConfigError("%s must be a power of two" % name)
        if self.line_bytes > self.size_bytes:
            raise CacheConfigError("line larger than cache")
        if self.line_bytes < self.word_bytes:
            raise CacheConfigError("line smaller than a word")

    @property
    def num_sets(self) -> int:
        lines = self.size_bytes // self.line_bytes
        return max(1, lines // self.associativity)


@dataclass(slots=True)
class CacheAccess:
    """Outcome of one access."""

    hit: bool
    writeback: bool = False
    energy_j: float = 0.0
    stall_cycles: int = 0


@dataclass
class _Line:
    tag: int
    dirty: bool = False
    last_used: int = 0


class CacheSimulator:
    """A fast set-associative cache model."""

    def __init__(
        self,
        config: Optional[CacheConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config or CacheConfig()
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        # ``access`` is the framework's hottest call site; bind the two
        # instruments once instead of a registry lookup per reference.
        if self.telemetry.enabled:
            self._hit_counter = self.telemetry.metrics.counter("datacache.hits")
            self._miss_counter = self.telemetry.metrics.counter("datacache.misses")
        else:
            self._hit_counter = None
            self._miss_counter = None
        # ``num_sets`` is a derived property; freeze the geometry into
        # plain ints — ``_locate`` runs once per memory reference.
        self._num_sets = self.config.num_sets
        self._word_bytes = self.config.word_bytes
        self._line_bytes = self.config.line_bytes
        self._sets: List[Dict[int, _Line]] = [
            {} for _ in range(self._num_sets)
        ]
        self._tick = 0
        self.reads = 0
        self.writes = 0
        self.read_misses = 0
        self.write_misses = 0
        self.writebacks = 0
        self.total_energy = 0.0
        self.total_stall_cycles = 0

    # -- helpers ------------------------------------------------------------

    def _locate(self, word_address: int) -> Tuple[int, int]:
        line_number = (word_address * self._word_bytes) // self._line_bytes
        return line_number % self._num_sets, line_number // self._num_sets

    # -- public API ------------------------------------------------------------

    def access(self, word_address: int, is_write: bool) -> CacheAccess:
        """Look up one word; updates statistics and LRU state."""
        self._tick += 1
        set_index, tag = self._locate(word_address)
        lines = self._sets[set_index]
        config = self.config
        if is_write:
            self.writes += 1
        else:
            self.reads += 1

        line = lines.get(tag)
        if line is not None:
            line.last_used = self._tick
            if is_write and config.write_back:
                line.dirty = True
            outcome = CacheAccess(hit=True, energy_j=config.hit_energy_j)
            self._account(outcome)
            if self._hit_counter is not None:
                self._hit_counter.inc()
            return outcome

        # Miss: fill, possibly evicting the LRU way.
        if is_write:
            self.write_misses += 1
        else:
            self.read_misses += 1
        writeback = False
        if len(lines) >= config.associativity:
            victim_tag = min(lines, key=lambda t: lines[t].last_used)
            victim = lines.pop(victim_tag)
            if victim.dirty:
                writeback = True
                self.writebacks += 1
        lines[tag] = _Line(
            tag=tag, dirty=is_write and config.write_back, last_used=self._tick
        )
        outcome = CacheAccess(
            hit=False,
            writeback=writeback,
            energy_j=config.hit_energy_j + config.miss_energy_j,
            stall_cycles=config.miss_penalty_cycles,
        )
        self._account(outcome)
        if self._miss_counter is not None:
            self._miss_counter.inc()
        return outcome

    def _account(self, outcome: CacheAccess) -> None:
        self.total_energy += outcome.energy_j
        self.total_stall_cycles += outcome.stall_cycles

    @property
    def accesses(self) -> int:
        """Total accesses so far."""
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        """Total misses so far."""
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction (1.0 when no accesses yet)."""
        if self.accesses == 0:
            return 1.0
        return 1.0 - self.misses / self.accesses

    def reset_statistics(self) -> None:
        """Clear counters but keep cache contents."""
        self.reads = self.writes = 0
        self.read_misses = self.write_misses = 0
        self.writebacks = 0
        self.total_energy = 0.0
        self.total_stall_cycles = 0

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines."""
        dirty = sum(
            1 for lines in self._sets for line in lines.values() if line.dirty
        )
        self._sets = [{} for _ in range(self._num_sets)]
        return dirty

"""Macro-operations: the unit of software macro-modeling.

POLIS compiles every s-graph into a sequence of *macro-operations* —
assignment of a variable to a variable (AVV), assignment of a constant
(AIVC), emission of an event (AEMIT), tests on a variable value that
evaluate true or false (TIVART / TIVARF), and calls into the library of
pre-defined arithmetic/relational/logical functions (ADD, SUB, EQ, ...).

The execution trace of a transition (see :mod:`repro.cfsm.sgraph`)
records the macro-operation stream it performed.  The software
macro-modeling acceleration technique (Section 4.1 of the paper)
estimates the energy and delay of a transition directly from this
stream using a pre-characterized parameter file, without invoking the
instruction set simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cfsm import expr as _expr


class MacroOpKind:
    """Names of the non-arithmetic POLIS macro-operations."""

    AVV = "AVV"  # assign variable := variable
    AIVC = "AIVC"  # assign variable := constant
    AEMIT = "AEMIT"  # emit an event (optionally carrying a value)
    ADETECT = "ADETECT"  # read the value of an input event
    TIVART = "TIVART"  # test on a variable value, outcome: true
    TIVARF = "TIVARF"  # test on a variable value, outcome: false
    TLOOPT = "TLOOPT"  # loop-bound test, outcome: continue
    TLOOPF = "TLOOPF"  # loop-bound test, outcome: exit
    ASHRD = "ASHRD"  # shared-memory word read (bus transaction)
    ASHWR = "ASHWR"  # shared-memory word write (bus transaction)

    CONTROL_OPS = (
        AVV, AIVC, AEMIT, ADETECT, TIVART, TIVARF, TLOOPT, TLOOPF, ASHRD, ASHWR,
    )


def all_macro_op_names() -> Tuple[str, ...]:
    """Every macro-operation name that may appear in a trace.

    This is the set the macro-model characterizer must cover: the
    control macro-operations plus the arithmetic/relational/logical
    library functions.
    """
    names = list(MacroOpKind.CONTROL_OPS)
    names.extend(_expr.binary_operator_names())
    names.extend(_expr.unary_operator_names())
    # Preserve order but drop duplicates defensively.
    seen = set()
    unique = []
    for name in names:
        if name not in seen:
            seen.add(name)
            unique.append(name)
    return tuple(unique)


@dataclass(frozen=True)
class MacroOp:
    """One macro-operation instance in an execution trace.

    Attributes:
        name: macro-operation name (one of :func:`all_macro_op_names`).
        operand: human-readable operand description (variable or event
            name), used for tracing and debugging only.
    """

    name: str
    operand: str = ""

    def __repr__(self) -> str:
        if self.operand:
            return "%s(%s)" % (self.name, self.operand)
        return self.name


_INTERNED: dict = {}


def interned_macro_op(name: str, operand: str = "") -> MacroOp:
    """Shared immutable instance for a (name, operand) pair.

    Traces append millions of macro-operations during long
    co-simulations; interning avoids allocating identical objects in
    the interpreter's hot loop.
    """
    key = (name, operand)
    op = _INTERNED.get(key)
    if op is None:
        op = MacroOp(name, operand)
        _INTERNED[key] = op
    return op

"""Fluent construction API for CFSM networks.

System descriptions read like the paper's pseudo-code::

    net = NetworkBuilder("example")
    producer = net.cfsm("producer", mapping=Implementation.SW)
    producer.input("START")
    producer.output("END_COMP")
    producer.var("count", 0)
    producer.transition(
        "on_start",
        trigger=["START"],
        body=[
            loop(const(NUM_PKTS), [
                assign("count", add(var("count"), const(1))),
                emit("END_COMP"),
            ]),
        ],
    )
    network = net.build()
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.cfsm.events import EventType
from repro.cfsm.expr import Expression
from repro.cfsm.model import Cfsm, Implementation, Network, Transition
from repro.cfsm.sgraph import SGraph, Statement


class CfsmBuilder:
    """Incrementally assembles one :class:`Cfsm`."""

    def __init__(self, name: str, width: int = 16, clock_period_ns: float = 10.0) -> None:
        self._cfsm = Cfsm(name=name, width=width, clock_period_ns=clock_period_ns)

    @property
    def name(self) -> str:
        return self._cfsm.name

    def input(self, name: str, has_value: bool = False, width: int = 16) -> "CfsmBuilder":
        """Declare an input event."""
        self._cfsm.inputs[name] = EventType(name, has_value=has_value, width=width)
        return self

    def output(self, name: str, has_value: bool = False, width: int = 16) -> "CfsmBuilder":
        """Declare an output event."""
        self._cfsm.outputs[name] = EventType(name, has_value=has_value, width=width)
        return self

    def var(self, name: str, initial: int = 0, shared: bool = False) -> "CfsmBuilder":
        """Declare a persistent variable, optionally in shared memory."""
        self._cfsm.variables[name] = initial
        if shared:
            self._cfsm.shared_variables.add(name)
        return self

    def transition(
        self,
        name: str,
        trigger: Sequence[str],
        body: Sequence[Statement],
        guard: Optional[Expression] = None,
        consumes: Sequence[str] = (),
    ) -> "CfsmBuilder":
        """Add a transition (declaration order is priority order)."""
        for event in trigger:
            if event not in self._cfsm.inputs:
                raise ValueError(
                    "transition %r of %r triggers on undeclared input %r"
                    % (name, self._cfsm.name, event)
                )
        self._cfsm.transitions.append(
            Transition(
                name=name,
                trigger=tuple(trigger),
                body=SGraph(body),
                guard=guard,
                consumes=tuple(consumes),
            )
        )
        return self

    def build(self) -> Cfsm:
        """Finish and return the CFSM."""
        return self._cfsm


class NetworkBuilder:
    """Incrementally assembles a :class:`Network`."""

    def __init__(self, name: str) -> None:
        self._network = Network(name=name)
        self._builders: Dict[str, CfsmBuilder] = {}
        self._mappings: Dict[str, str] = {}

    def cfsm(
        self,
        name: str,
        mapping: str,
        width: int = 16,
        clock_period_ns: float = 10.0,
    ) -> CfsmBuilder:
        """Start a new CFSM with the given HW/SW mapping."""
        if name in self._builders:
            raise ValueError("duplicate CFSM name %r" % name)
        builder = CfsmBuilder(name, width=width, clock_period_ns=clock_period_ns)
        self._builders[name] = builder
        self._mappings[name] = Implementation.check(mapping)
        return builder

    def on_bus(self, *event_names: str) -> "NetworkBuilder":
        """Map the named events onto the shared system bus."""
        self._network.bus_events.update(event_names)
        return self

    def environment_input(self, *event_names: str) -> "NetworkBuilder":
        """Declare events driven by the testbench."""
        self._network.environment_inputs.update(event_names)
        return self

    def watching(self, *event_names: str) -> "NetworkBuilder":
        """Mark reset events (the paper's ``watching RESET`` construct).

        A delivery of a reset event re-initializes every process that
        declares it as an input: variables return to their initial
        values and all pending input events are dropped.
        """
        self._network.reset_events.update(event_names)
        return self

    def build(self, validate: bool = True) -> Network:
        """Assemble (and by default validate) the network."""
        for name, builder in self._builders.items():
            self._network.add(builder.build(), self._mappings[name])
        if validate:
            from repro.cfsm.validate import validate_network

            validate_network(self._network)
        return self._network

"""Human-readable network summaries.

Co-design flows live or die by whether the designer can see what the
tool thinks the system *is*: the partition, the event wiring, the bus
mapping, and the size of each implementation.  These helpers render a
network (optionally with implementation statistics) as aligned text.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cfsm.model import Cfsm, Implementation, Network
from repro.cfsm.sgraph import SGraph


def transition_summary(cfsm: Cfsm) -> List[str]:
    """One line per transition: trigger, guard presence, body size."""
    lines = []
    for transition in cfsm.transitions:
        guard = " [guarded]" if transition.guard is not None else ""
        body: SGraph = transition.body
        emits = body.events_emitted()
        shared = " shared-mem" if body.uses_shared_memory() else ""
        lines.append(
            "    %-16s on %-24s %2d nodes%s%s%s"
            % (
                transition.name,
                "+".join(transition.trigger),
                body.node_count,
                guard,
                (" -> " + ",".join(emits)) if emits else "",
                shared,
            )
        )
    return lines


def describe_network(
    network: Network,
    implementation_stats: Optional[Dict[str, Dict[str, int]]] = None,
) -> str:
    """Render the full system description as text.

    Args:
        network: the system.
        implementation_stats: optional per-process statistics (e.g.
            ``{"checksum": {"gates": 1500, "dffs": 220}}`` for hardware
            blocks or ``{"ip_check": {"code_bytes": 1280}}`` for
            software) merged into the listing.
    """
    stats = implementation_stats or {}
    lines = ["network %s" % network.name]

    for name in sorted(network.cfsms):
        cfsm = network.cfsms[name]
        mapping = network.implementation(name)
        extra = ""
        if name in stats:
            extra = "  (" + ", ".join(
                "%s=%s" % (key, value)
                for key, value in sorted(stats[name].items())
            ) + ")"
        lines.append("  %-16s %-3s%s" % (name, mapping.upper(), extra))
        inputs = ", ".join(sorted(cfsm.inputs)) or "-"
        outputs = ", ".join(sorted(cfsm.outputs)) or "-"
        lines.append("    inputs : %s" % inputs)
        lines.append("    outputs: %s" % outputs)
        if cfsm.variables:
            lines.append(
                "    vars   : %s"
                % ", ".join("%s=%d" % (var, val)
                            for var, val in sorted(cfsm.variables.items()))
            )
        lines.extend(transition_summary(cfsm))

    if network.bus_events:
        lines.append("  bus events    : %s" % ", ".join(sorted(network.bus_events)))
    if network.environment_inputs:
        lines.append(
            "  env inputs    : %s" % ", ".join(sorted(network.environment_inputs))
        )
    if network.reset_events:
        lines.append(
            "  watching      : %s" % ", ".join(sorted(network.reset_events))
        )
    return "\n".join(lines)


def implementation_statistics(network: Network) -> Dict[str, Dict[str, int]]:
    """Compile/synthesize every process and collect size statistics.

    Software processes report generated code and data sizes; hardware
    processes report gate and flip-flop counts.  This runs real
    compilation/synthesis, so it is as truthful as the estimators — and
    correspondingly not free (fractions of a second per block).
    """
    from repro.hw.synth import synthesize_cfsm
    from repro.sw.codegen import compile_cfsm

    stats: Dict[str, Dict[str, int]] = {}
    for name in sorted(network.cfsms):
        cfsm = network.cfsms[name]
        if network.implementation(name) == Implementation.SW:
            compiled = compile_cfsm(cfsm)
            stats[name] = {
                "code_bytes": compiled.program.size_bytes,
                "data_words": compiled.memory_map.size_words,
            }
        else:
            block = synthesize_cfsm(cfsm)
            stats[name] = {
                "gates": block.netlist.gate_count,
                "dffs": block.netlist.dff_count,
                "states": len(block.micro_program.ops),
            }
    return stats

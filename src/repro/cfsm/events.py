"""Event types, event instances, and one-place event buffers.

CFSMs communicate exclusively through events.  An event has a name that
is global to the network (the POLIS convention: connections are made by
name) and may carry an integer value.  Receivers store incoming events
in *one-place buffers*: a newly delivered event overwrites any pending
occurrence of the same event that has not yet been consumed.  This
lossy, overwrite semantics is what makes the behaviour of reactive
systems timing-sensitive, and is the mechanism behind the paper's
motivating example (Section 2): the value of ``TIME`` observed by the
consumer depends on *when* the consumer reacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class EventType:
    """Static description of an event used in a network.

    Attributes:
        name: global event name (the wire label in the network).
        has_value: whether occurrences carry an integer value.
        width: bit width of the carried value (used by the bus model to
            compute switching activity and by HW synthesis for port
            sizing).
    """

    name: str
    has_value: bool = False
    width: int = 16

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("event type requires a non-empty name")
        if self.width <= 0:
            raise ValueError("event width must be positive, got %d" % self.width)


@dataclass(frozen=True)
class Event:
    """A single occurrence of an event.

    Attributes:
        name: name of the :class:`EventType` this occurrence belongs to.
        value: carried integer value (0 for pure events).
        time: emission timestamp in simulation time units (cycles of the
            master clock).  ``None`` for occurrences that have not been
            scheduled yet.
        source: name of the emitting CFSM, or ``"env"`` for stimuli.
    """

    name: str
    value: int = 0
    time: Optional[float] = None
    source: str = "env"

    def at(self, time: float) -> "Event":
        """Return a copy of this occurrence stamped with ``time``."""
        return Event(self.name, self.value, time, self.source)

    def with_value(self, value: int) -> "Event":
        """Return a copy of this occurrence carrying ``value``."""
        return Event(self.name, value, self.time, self.source)


@dataclass
class BufferedEvent:
    """An event occurrence held in a receiver's one-place buffer."""

    value: int
    time: float
    source: str
    overwrites: int = 0


@dataclass
class EventBuffer:
    """One-place input buffers for a single CFSM.

    Each input event name maps to at most one pending occurrence.  A
    delivery of an event that is already pending *overwrites* the stored
    occurrence (and the overwrite is counted, because lost events are a
    useful diagnostic for reactive systems).
    """

    inputs: List[str] = field(default_factory=list)
    _pending: Dict[str, BufferedEvent] = field(default_factory=dict)
    overwrite_count: int = 0

    def deliver(self, event: Event) -> None:
        """Store ``event``; overwrite any pending occurrence of it."""
        if event.name not in self.inputs:
            raise KeyError(
                "event %r is not an input of this buffer (inputs: %s)"
                % (event.name, ", ".join(self.inputs))
            )
        previous = self._pending.get(event.name)
        overwrites = 0
        if previous is not None:
            overwrites = previous.overwrites + 1
            self.overwrite_count += 1
        self._pending[event.name] = BufferedEvent(
            value=event.value,
            time=event.time if event.time is not None else 0.0,
            source=event.source,
            overwrites=overwrites,
        )

    def present(self, name: str) -> bool:
        """Whether an occurrence of ``name`` is pending."""
        return name in self._pending

    def value(self, name: str) -> int:
        """Value of the pending occurrence of ``name``.

        Raises ``KeyError`` when no occurrence is pending; transitions
        must only read values of events they were triggered by.
        """
        return self._pending[name].value

    def pending_names(self) -> List[str]:
        """Names of all pending events (sorted for determinism)."""
        return sorted(self._pending)

    def consume(self, names: Iterable[str]) -> Dict[str, int]:
        """Remove the named occurrences, returning ``{name: value}``."""
        consumed: Dict[str, int] = {}
        for name in names:
            entry = self._pending.pop(name, None)
            if entry is not None:
                consumed[name] = entry.value
        return consumed

    def clear(self) -> None:
        """Drop all pending occurrences (used by RESET handling)."""
        self._pending.clear()

    def snapshot(self) -> Dict[str, int]:
        """Copy of the pending ``{name: value}`` map (for tracing)."""
        return {name: entry.value for name, entry in self._pending.items()}

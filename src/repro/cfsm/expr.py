"""Expression AST used in s-graph statements.

Expressions are integer-valued and side-effect free.  They are the
shared intermediate form consumed by

* the behavioral interpreter (:mod:`repro.cfsm.sgraph`),
* the software code generator (:mod:`repro.sw.codegen`),
* the hardware synthesizer (:mod:`repro.hw.synth`), and
* the macro-operation extractor (:mod:`repro.cfsm.actions`).

Only the operators that the POLIS software library pre-characterizes
(ADD, SUB, MUL, DIV, MOD, bitwise ops, shifts, comparisons, logical
connectives, negation) are provided.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

#: Evaluation environment: variable and event-value bindings.
Env = Mapping[str, int]

# Binary operator tables.  ``_BINOP_FUNCS`` maps the operator mnemonic to
# its Python semantics; ``BINOP_MACRO`` maps it to the POLIS library
# function name used for macro-modeling and characterization.
_BINOP_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "ADD": operator.add,
    "SUB": operator.sub,
    "MUL": operator.mul,
    # Division truncates toward zero; division by zero yields 0 and the
    # corresponding MOD yields the dividend.  These conventions are shared
    # verbatim by the ISS and the hardware datapath so that all three
    # execution engines agree on every input.
    "DIV": lambda a, b: int(a / b) if b != 0 else 0,
    "MOD": lambda a, b: a - (int(a / b) if b != 0 else 0) * b,
    "AND": operator.and_,
    "OR": operator.or_,
    "XOR": operator.xor,
    "SHL": lambda a, b: a << (b & 31),
    "SHR": lambda a, b: (a % (1 << 32)) >> (b & 31),
    "EQ": lambda a, b: int(a == b),
    "NE": lambda a, b: int(a != b),
    "LT": lambda a, b: int(a < b),
    "LE": lambda a, b: int(a <= b),
    "GT": lambda a, b: int(a > b),
    "GE": lambda a, b: int(a >= b),
    "LAND": lambda a, b: int(bool(a) and bool(b)),
    "LOR": lambda a, b: int(bool(a) or bool(b)),
}

_UNOP_FUNCS: Dict[str, Callable[[int], int]] = {
    "NEG": operator.neg,
    "NOT": lambda a: int(not a),
    "BNOT": lambda a: ~a,
}


class Expression:
    """Base class for expression nodes."""

    def evaluate(self, env: Env) -> int:
        """Evaluate under variable/event bindings ``env``."""
        raise NotImplementedError

    def variables(self) -> List[str]:
        """Names of CFSM variables read by this expression (in order)."""
        return []

    def event_values(self) -> List[str]:
        """Names of event values read by this expression (in order)."""
        return []

    def macro_ops(self) -> List[str]:
        """POLIS library function names this expression expands to."""
        return []

    def depth(self) -> int:
        """Height of the expression tree (1 for leaves)."""
        return 1

    # Operator overloading keeps system descriptions readable.
    def __add__(self, other: "Expression") -> "Expression":
        return BinaryOp("ADD", self, _coerce(other))

    def __sub__(self, other: "Expression") -> "Expression":
        return BinaryOp("SUB", self, _coerce(other))

    def __mul__(self, other: "Expression") -> "Expression":
        return BinaryOp("MUL", self, _coerce(other))


def _coerce(value) -> "Expression":
    """Turn plain ints into :class:`Const` nodes."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, int):
        return Const(value)
    raise TypeError("cannot use %r in an expression" % (value,))


@dataclass(frozen=True)
class Const(Expression):
    """Integer literal."""

    value: int

    def evaluate(self, env: Env) -> int:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expression):
    """Read of a CFSM variable."""

    name: str

    def evaluate(self, env: Env) -> int:
        if self.name not in env:
            raise KeyError("variable %r is unbound" % self.name)
        return env[self.name]

    def variables(self) -> List[str]:
        return [self.name]

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class EventValue(Expression):
    """Read of the value carried by a triggering input event.

    Event values are injected into the environment under the key
    ``"@<event name>"`` by the transition executor, so that they can
    never collide with variable names.
    """

    event: str

    @property
    def env_key(self) -> str:
        return "@" + self.event

    def evaluate(self, env: Env) -> int:
        if self.env_key not in env:
            raise KeyError(
                "value of event %r is not available in this transition" % self.event
            )
        return env[self.env_key]

    def event_values(self) -> List[str]:
        return [self.event]

    def __repr__(self) -> str:
        return "value(%s)" % self.event


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Binary operator application.

    The structural queries (variables, event values, macro-ops) are
    memoized on first use: expression trees are immutable, and the
    behavioral interpreter asks for these lists on every execution of
    every statement — the hottest loop of the whole co-simulation.
    """

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _BINOP_FUNCS:
            raise ValueError("unknown binary operator %r" % self.op)
        object.__setattr__(self, "_func", _BINOP_FUNCS[self.op])

    def evaluate(self, env: Env) -> int:
        return self._func(self.left.evaluate(env), self.right.evaluate(env))

    def variables(self) -> List[str]:
        cached = self.__dict__.get("_vars")
        if cached is None:
            cached = list(self.left.variables()) + list(self.right.variables())
            object.__setattr__(self, "_vars", cached)
        return cached

    def event_values(self) -> List[str]:
        cached = self.__dict__.get("_events")
        if cached is None:
            cached = (list(self.left.event_values())
                      + list(self.right.event_values()))
            object.__setattr__(self, "_events", cached)
        return cached

    def macro_ops(self) -> List[str]:
        cached = self.__dict__.get("_ops")
        if cached is None:
            cached = (list(self.left.macro_ops())
                      + list(self.right.macro_ops()) + [self.op])
            object.__setattr__(self, "_ops", cached)
        return cached

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())

    def __repr__(self) -> str:
        return "%s(%r, %r)" % (self.op, self.left, self.right)


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary operator application."""

    op: str
    operand: Expression

    def __post_init__(self) -> None:
        if self.op not in _UNOP_FUNCS:
            raise ValueError("unknown unary operator %r" % self.op)
        object.__setattr__(self, "_func", _UNOP_FUNCS[self.op])

    def evaluate(self, env: Env) -> int:
        return self._func(self.operand.evaluate(env))

    def variables(self) -> List[str]:
        return self.operand.variables()

    def event_values(self) -> List[str]:
        return self.operand.event_values()

    def macro_ops(self) -> List[str]:
        cached = self.__dict__.get("_ops")
        if cached is None:
            cached = list(self.operand.macro_ops()) + [self.op]
            object.__setattr__(self, "_ops", cached)
        return cached

    def depth(self) -> int:
        return 1 + self.operand.depth()

    def __repr__(self) -> str:
        return "%s(%r)" % (self.op, self.operand)


# ---------------------------------------------------------------------------
# Construction helpers.  These keep system descriptions terse:
#     assign("n", add(var("n"), const(1)))
# ---------------------------------------------------------------------------


def const(value: int) -> Const:
    """Integer literal node."""
    return Const(value)


def var(name: str) -> Var:
    """Variable read node."""
    return Var(name)


def event_value(event: str) -> EventValue:
    """Event-value read node."""
    return EventValue(event)


def _binop(op: str) -> Callable[..., BinaryOp]:
    def make(left, right) -> BinaryOp:
        return BinaryOp(op, _coerce(left), _coerce(right))

    make.__name__ = op.lower()
    make.__doc__ = "Build a %s expression node." % op
    return make


add = _binop("ADD")
sub = _binop("SUB")
mul = _binop("MUL")
div = _binop("DIV")
mod = _binop("MOD")
band = _binop("AND")
bor = _binop("OR")
bxor = _binop("XOR")
shl = _binop("SHL")
shr = _binop("SHR")
eq = _binop("EQ")
ne = _binop("NE")
lt = _binop("LT")
le = _binop("LE")
gt = _binop("GT")
ge = _binop("GE")
land = _binop("LAND")
lor = _binop("LOR")


def lnot(operand) -> UnaryOp:
    """Logical negation node."""
    return UnaryOp("NOT", _coerce(operand))


def neg(operand) -> UnaryOp:
    """Arithmetic negation node."""
    return UnaryOp("NEG", _coerce(operand))


def binary_operator_names() -> Tuple[str, ...]:
    """All supported binary operator mnemonics."""
    return tuple(sorted(_BINOP_FUNCS))


def unary_operator_names() -> Tuple[str, ...]:
    """All supported unary operator mnemonics."""
    return tuple(sorted(_UNOP_FUNCS))

"""Structural fingerprints of CFSMs and transition bodies.

Design-space exploration rebuilds the same system over and over with
slightly different parameters, and several acceleration layers (the
compiled-simulator cache, the codegen/synthesis caches, warm-started
energy caching) need a *value identity* for a CFSM: two CFSM objects
with equal fingerprints behave identically under simulation, synthesis
and code generation.

``repr`` alone is not enough — ``If``/``Loop`` statements summarize
their bodies as statement counts, so two transitions that differ only
inside a nested block would compare equal.  The walkers here descend
recursively; expression reprs are already fully recursive.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from repro.cfsm.model import Cfsm, Transition
from repro.cfsm.sgraph import Emit, If, Loop, Statement


def statement_signature(stmt: Statement) -> tuple:
    """Recursive structural signature of one s-graph statement."""
    if isinstance(stmt, If):
        return (
            "if",
            repr(stmt.cond),
            tuple(statement_signature(child) for child in stmt.then),
            tuple(statement_signature(child) for child in stmt.els),
        )
    if isinstance(stmt, Loop):
        return (
            "loop",
            repr(stmt.count),
            tuple(statement_signature(child) for child in stmt.body),
        )
    if isinstance(stmt, Emit):
        # Emit's repr shows only the event name, not the value
        # expression — spell the value out explicitly.
        return (
            "emit",
            stmt.event,
            None if stmt.value is None else repr(stmt.value),
        )
    # Remaining leaves (Assign/SharedRead/SharedWrite) embed their
    # expressions in repr, and expression reprs are fully recursive.
    return (type(stmt).__name__, repr(stmt))


def transition_signature(transition: Transition) -> tuple:
    """Structural signature of one transition (trigger, guard, body)."""
    return (
        transition.name,
        tuple(transition.trigger),
        None if transition.guard is None else repr(transition.guard),
        tuple(transition.consumes),
        tuple(statement_signature(stmt) for stmt in transition.body.statements),
    )


def cfsm_signature(cfsm: Cfsm) -> Tuple:
    """Hashable value identity of a CFSM.

    Covers everything synthesis, code generation and simulation read:
    interface event types, variables and initial values, shared-memory
    residency, datapath width, clock, and every transition body
    recursively.
    """
    return (
        cfsm.name,
        cfsm.width,
        cfsm.clock_period_ns,
        tuple(sorted((name, repr(t)) for name, t in cfsm.inputs.items())),
        tuple(sorted((name, repr(t)) for name, t in cfsm.outputs.items())),
        tuple(sorted(cfsm.variables.items())),
        tuple(sorted(cfsm.shared_variables)),
        tuple(transition_signature(t) for t in cfsm.transitions),
    )


def cfsm_digest(cfsm: Cfsm, *extras) -> str:
    """SHA-256 hex digest of a CFSM signature plus caller context.

    ``extras`` lets callers fold in whatever else their cached artifact
    depends on (a library signature, a power-model repr, a memory
    base); anything with a deterministic ``repr`` works.
    """
    payload = (cfsm_signature(cfsm),) + tuple(extras)
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()

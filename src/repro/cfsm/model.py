"""CFSM, transition, and network models.

A :class:`Cfsm` is a reactive process: a set of input/output events,
persistent integer variables, and transitions.  A :class:`Transition`
fires when all of its trigger events are pending in the process's
one-place input buffer and its optional guard holds; its body (an
s-graph) then executes atomically.

A :class:`Network` groups CFSMs, records the HW/SW mapping of each one
(the co-design partition), and declares which events travel over the
shared system bus and which variables live in shared memory.  These are
precisely the knobs the paper's co-estimation framework exposes: the
partition determines which component estimator is invoked per
transition, and the bus/shared-memory declarations determine the
traffic seen by the communication-architecture power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfsm.events import Event, EventBuffer, EventType
from repro.cfsm.expr import Expression
from repro.cfsm.sgraph import ExecutionTrace, SGraph


class Implementation:
    """HW/SW mapping of a CFSM."""

    HW = "hw"
    SW = "sw"

    CHOICES = (HW, SW)

    @staticmethod
    def check(value: str) -> str:
        if value not in Implementation.CHOICES:
            raise ValueError(
                "implementation must be one of %s, got %r"
                % (Implementation.CHOICES, value)
            )
        return value


@dataclass
class Transition:
    """One atomic reaction of a CFSM.

    Attributes:
        name: transition label, unique within the owning CFSM.
        trigger: input event names that must all be pending.
        guard: optional boolean expression over variables and the values
            of the trigger events; the transition is enabled only when
            it evaluates non-zero.
        body: the s-graph executed when the transition fires.
        consumes: input events removed from the buffer when the
            transition fires.  Defaults to the trigger events plus every
            event whose value the body reads.
    """

    name: str
    trigger: Tuple[str, ...]
    body: SGraph
    guard: Optional[Expression] = None
    consumes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("transition requires a name")
        self.trigger = tuple(self.trigger)
        if not self.consumes:
            consumed = list(self.trigger)
            for event in self.body.event_values_read():
                if event not in consumed:
                    consumed.append(event)
            if self.guard is not None:
                for event in self.guard.event_values():
                    if event not in consumed:
                        consumed.append(event)
            self.consumes = tuple(consumed)


@dataclass
class Cfsm:
    """A single codesign finite state machine.

    Attributes:
        name: process name, unique within the network.
        inputs: input event types by name.
        outputs: output event types by name.
        variables: persistent variables and their initial values.
        transitions: reactions in priority order (first enabled wins).
        shared_variables: variables resident in *shared memory*;
            accesses to them become bus transactions instead of local
            cache references.
        width: datapath bit width used by hardware synthesis.
        clock_period_ns: component clock period (HW blocks and the
            embedded processor may run at different rates).
    """

    name: str
    inputs: Dict[str, EventType] = field(default_factory=dict)
    outputs: Dict[str, EventType] = field(default_factory=dict)
    variables: Dict[str, int] = field(default_factory=dict)
    transitions: List[Transition] = field(default_factory=list)
    shared_variables: Set[str] = field(default_factory=set)
    width: int = 16
    clock_period_ns: float = 10.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("CFSM requires a name")

    def make_buffer(self) -> EventBuffer:
        """Fresh one-place input buffer for this CFSM."""
        return EventBuffer(inputs=sorted(self.inputs))

    def initial_state(self) -> Dict[str, int]:
        """Fresh copy of the initial variable bindings."""
        return dict(self.variables)

    def enabled_transition(
        self, buffer: EventBuffer, state: Dict[str, int]
    ) -> Optional[Transition]:
        """First transition whose trigger and guard are satisfied."""
        for transition in self.transitions:
            if all(buffer.present(event) for event in transition.trigger):
                if transition.guard is None:
                    return transition
                env = dict(state)
                for event in transition.guard.event_values():
                    if not buffer.present(event):
                        break
                    env["@" + event] = buffer.value(event)
                else:
                    if transition.guard.evaluate(env):
                        return transition
        return None

    def react(
        self,
        transition: Transition,
        buffer: EventBuffer,
        state: Dict[str, int],
        shared=None,
    ) -> ExecutionTrace:
        """Execute ``transition`` against ``buffer``/``state``.

        This is the reference (behavioral) semantics: the environment is
        seeded with the values of every pending trigger event, the body
        runs, consumed events are removed, and ``state`` is updated in
        place.  ``shared`` provides the system's shared memory when the
        body performs bus-mapped accesses.
        """
        env: Dict[str, int] = dict(state)
        for event in transition.consumes:
            if buffer.present(event):
                env["@" + event] = buffer.value(event)
        trace = transition.body.execute(env, shared=shared)
        buffer.consume(transition.consumes)
        for name, value in trace.var_updates.items():
            state[name] = value
        return trace

    def transition_by_name(self, name: str) -> Transition:
        """Look up a transition by its label."""
        for transition in self.transitions:
            if transition.name == name:
                return transition
        raise KeyError("CFSM %r has no transition %r" % (self.name, name))


@dataclass
class Network:
    """A complete system: CFSMs, mapping, and integration architecture.

    Attributes:
        name: system name.
        cfsms: processes by name.
        mapping: per-process HW/SW implementation choice.
        bus_events: event names whose communication is mapped onto the
            shared system bus (others use dedicated point-to-point
            wires, which the bus power model ignores).
        environment_inputs: events driven by the testbench/environment.
    """

    name: str
    cfsms: Dict[str, Cfsm] = field(default_factory=dict)
    mapping: Dict[str, str] = field(default_factory=dict)
    bus_events: Set[str] = field(default_factory=set)
    environment_inputs: Set[str] = field(default_factory=set)
    #: Events with the paper's ``do ... watching RESET`` semantics: a
    #: delivery re-initializes every consumer that declares the event
    #: as an input (variables back to initial values, pending events
    #: dropped) instead of triggering a transition.
    reset_events: Set[str] = field(default_factory=set)

    def add(self, cfsm: Cfsm, mapping: str) -> None:
        """Register ``cfsm`` with the given HW/SW ``mapping``."""
        if cfsm.name in self.cfsms:
            raise ValueError("duplicate CFSM name %r" % cfsm.name)
        self.cfsms[cfsm.name] = cfsm
        self.mapping[cfsm.name] = Implementation.check(mapping)

    def implementation(self, cfsm_name: str) -> str:
        """HW/SW mapping of ``cfsm_name``."""
        return self.mapping[cfsm_name]

    def remap(self, cfsm_name: str, mapping: str) -> None:
        """Change the partition of one process (design exploration)."""
        if cfsm_name not in self.cfsms:
            raise KeyError("no CFSM named %r" % cfsm_name)
        self.mapping[cfsm_name] = Implementation.check(mapping)

    def software_cfsms(self) -> List[Cfsm]:
        """Processes mapped to embedded software (sorted by name)."""
        return [
            self.cfsms[name]
            for name in sorted(self.cfsms)
            if self.mapping.get(name) == Implementation.SW
        ]

    def hardware_cfsms(self) -> List[Cfsm]:
        """Processes mapped to application-specific hardware (sorted)."""
        return [
            self.cfsms[name]
            for name in sorted(self.cfsms)
            if self.mapping.get(name) == Implementation.HW
        ]

    def consumers_of(self, event_name: str) -> List[Cfsm]:
        """CFSMs that list ``event_name`` among their inputs."""
        return [
            cfsm
            for _, cfsm in sorted(self.cfsms.items())
            if event_name in cfsm.inputs
        ]

    def producers_of(self, event_name: str) -> List[Cfsm]:
        """CFSMs that list ``event_name`` among their outputs."""
        return [
            cfsm
            for _, cfsm in sorted(self.cfsms.items())
            if event_name in cfsm.outputs
        ]

    def all_event_types(self) -> Dict[str, EventType]:
        """Union of every declared event type, keyed by name."""
        types: Dict[str, EventType] = {}
        for _, cfsm in sorted(self.cfsms.items()):
            for collection in (cfsm.inputs, cfsm.outputs):
                for name, event_type in collection.items():
                    known = types.get(name)
                    if known is None:
                        types[name] = event_type
                    elif known != event_type:
                        raise ValueError(
                            "event %r declared with conflicting types" % name
                        )
        return types

    def external_inputs(self) -> Set[str]:
        """Events consumed somewhere but produced by no CFSM."""
        produced = set()
        consumed = set()
        for cfsm in self.cfsms.values():
            produced.update(cfsm.outputs)
            consumed.update(cfsm.inputs)
        return consumed - produced

"""S-graph optimization passes.

POLIS-style behavioral descriptions are written for clarity, not
efficiency; these classic transformations tighten them *before* code
generation and hardware synthesis, with behaviour preserved by
construction (and checked by property tests against the interpreter):

* **constant folding** — operator applications over constants collapse
  to constants, including algebraic identities (``x+0``, ``x*1``,
  ``x&0``, ``x|0``, ``x^0``);
* **strength reduction** — multiplication/division by a power of two
  becomes a shift, and multiplication by small constants becomes
  shift/add forms.  Besides saving the 4-/12-cycle multiply and divide
  units in software, this makes otherwise-unsynthesizable
  multiply-by-constant processes mappable to the shared-ALU hardware
  datapath;
* **dead-branch elimination** — ``if`` statements with constant
  conditions keep only the live branch; loops with constant bound 0
  disappear;
* **loop unrolling** (optional) — loops with small constant bounds are
  replaced by repeated bodies, removing per-iteration test/decrement
  overhead (and controller states, in hardware).

The optimizer is deliberately conservative: anything it does not
recognize passes through untouched.

Every expression rewrite lives in a declarative :class:`RewriteRule`
registered in :data:`REWRITE_RULES`.  The registry is the single
source of truth for both the optimizer (which applies the rules in
order) and the translation validator
(:mod:`repro.lint.transvalidate`, which proves each rule semantically
equivalent by exhaustive small-bit-width evaluation plus corner
vectors).  Adding a rule here without templates, or with unsound
semantics, is a CI failure — the ``SHR(x, 0) -> x`` bug class cannot
reach the optimizer silently anymore.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.cfsm.expr import BinaryOp, Const, Expression, UnaryOp, Var
from repro.cfsm.model import Cfsm, Transition
from repro.cfsm.sgraph import (
    Assign,
    Emit,
    If,
    Loop,
    SGraph,
    SharedRead,
    SharedWrite,
    Statement,
)


@dataclass
class OptimizationReport:
    """What the passes changed (for logs and tests)."""

    folded_constants: int = 0
    strength_reduced: int = 0
    dead_branches: int = 0
    dead_loops: int = 0
    unrolled_loops: int = 0

    @property
    def total(self) -> int:
        return (self.folded_constants + self.strength_reduced
                + self.dead_branches + self.dead_loops + self.unrolled_loops)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


# ---------------------------------------------------------------------------
# Declarative rewrite rules
# ---------------------------------------------------------------------------

#: A binary-expression rewriter: ``(op, left, right)`` of an already
#: recursively-optimized node; returns the replacement expression or
#: ``None`` when the rule does not apply.
Rewriter = Callable[[str, Expression, Expression], Optional[Expression]]


@dataclass(frozen=True)
class RewriteRule:
    """One named, independently-validated expression rewrite.

    ``templates`` are concrete LHS instances (over :class:`Var` leaves)
    that the rule is expected to fire on; the translation validator
    instantiates them, applies the rule, and proves
    ``lhs.evaluate(env) == rhs.evaluate(env)`` over exhaustive
    small-bit-width environments plus corner/random full-width
    vectors.  A rule whose templates never fire is flagged (TV602) —
    dead rules rot into unsound ones unnoticed.
    """

    name: str
    #: ``identity`` rewrites count as folded constants in the report;
    #: ``strength`` rewrites count as strength reductions.
    category: str
    description: str
    rewrite: Rewriter
    templates: Tuple[BinaryOp, ...] = field(default=())

    def apply(self, op: str, left: Expression,
              right: Expression) -> Optional[Expression]:
        return self.rewrite(op, left, right)


def _const_of(expr: Expression) -> Optional[int]:
    return expr.value if isinstance(expr, Const) else None


def _make_neutral_rule(rule_op: str, value: int, *, left_side: bool,
                       name: str) -> RewriteRule:
    """``op(x, value) -> x`` (or the mirrored ``op(value, x) -> x``)."""

    def rewrite(op: str, left: Expression,
                right: Expression) -> Optional[Expression]:
        if op != rule_op:
            return None
        if left_side:
            if _const_of(left) == value:
                return right
            return None
        if _const_of(right) == value:
            return left
        return None

    template = (BinaryOp(rule_op, Const(value), Var("a")) if left_side
                else BinaryOp(rule_op, Var("a"), Const(value)))
    side = "left" if left_side else "right"
    return RewriteRule(
        name=name,
        category="identity",
        description="%s neutral element %d on the %s collapses"
                    % (rule_op, value, side),
        rewrite=rewrite,
        templates=(template,),
    )


def _annihilator_rewrite(op: str, left: Expression,
                         right: Expression) -> Optional[Expression]:
    """``MUL``/``AND`` by constant zero annihilate to zero."""
    if op not in ("MUL", "AND"):
        return None
    if _const_of(left) == 0 or _const_of(right) == 0:
        return Const(0)
    return None


def _strength_reduce_mul(op: str, left: Expression,
                         right: Expression) -> Optional[Expression]:
    """x*2^k -> x<<k;  x*(2^j+1)*2^k -> ((x<<j)+x)<<k;  x*(2^j-1)*2^k
    -> ((x<<j)-x)<<k.  Division is only reducible for powers of two
    when the operand is known non-negative — which we cannot prove
    here, so only the multiply family is rewritten (its semantics are
    exact for all integers)."""
    if op != "MUL":
        return None
    const_side = None
    var_side: Expression = left
    if isinstance(right, Const):
        const_side, var_side = right.value, left
    elif isinstance(left, Const):
        const_side, var_side = left.value, right
    if const_side is None or const_side < 2:
        return None

    # Factor the constant as odd * 2^k; the 2^k part is a final
    # shift, and odd parts of the form 2^j (+/-) 1 become
    # shift-and-add/subtract.
    even_shift = 0
    odd = const_side
    while odd % 2 == 0:
        odd //= 2
        even_shift += 1
    if even_shift > 31:
        return None

    if odd == 1:
        core: Optional[Expression] = var_side
    elif (_is_power_of_two(odd - 1) and odd - 1 >= 2
          and (odd - 1).bit_length() - 1 <= 31):
        shift = (odd - 1).bit_length() - 1
        core = BinaryOp(
            "ADD", BinaryOp("SHL", var_side, Const(shift)), var_side
        )
    elif _is_power_of_two(odd + 1) and (odd + 1).bit_length() - 1 <= 31:
        shift = (odd + 1).bit_length() - 1
        core = BinaryOp(
            "SUB", BinaryOp("SHL", var_side, Const(shift)), var_side
        )
    else:
        return None
    if even_shift == 0:
        return core
    return BinaryOp("SHL", core, Const(even_shift))


#: The ordered rewrite registry.  Order is semantics-relevant only in
#: that identities are tried before strength reduction (matching the
#: historical pass structure); within a category the patterns are
#: disjoint.  ``SHR(x, 0) -> x`` is deliberately absent: the
#: interpreter's SHR wraps its operand to 32-bit unsigned, so
#: ``SHR(x, 0) != x`` for negative x — exactly the kind of fact the
#: translation validator exists to enforce.
REWRITE_RULES: Tuple[RewriteRule, ...] = (
    _make_neutral_rule("ADD", 0, left_side=False, name="add-zero-right"),
    _make_neutral_rule("ADD", 0, left_side=True, name="add-zero-left"),
    _make_neutral_rule("SUB", 0, left_side=False, name="sub-zero-right"),
    _make_neutral_rule("MUL", 1, left_side=False, name="mul-one-right"),
    _make_neutral_rule("MUL", 1, left_side=True, name="mul-one-left"),
    RewriteRule(
        name="mul-and-zero-annihilate",
        category="identity",
        description="MUL/AND with a constant zero operand is zero",
        rewrite=_annihilator_rewrite,
        templates=(
            BinaryOp("MUL", Var("a"), Const(0)),
            BinaryOp("MUL", Const(0), Var("a")),
            BinaryOp("AND", Var("a"), Const(0)),
            BinaryOp("AND", Const(0), Var("a")),
        ),
    ),
    _make_neutral_rule("DIV", 1, left_side=False, name="div-one-right"),
    _make_neutral_rule("OR", 0, left_side=False, name="or-zero-right"),
    _make_neutral_rule("OR", 0, left_side=True, name="or-zero-left"),
    _make_neutral_rule("XOR", 0, left_side=False, name="xor-zero-right"),
    _make_neutral_rule("XOR", 0, left_side=True, name="xor-zero-left"),
    _make_neutral_rule("SHL", 0, left_side=False, name="shl-zero-right"),
    RewriteRule(
        name="mul-const-to-shifts",
        category="strength",
        description="multiplication by odd*2^k constants becomes "
                    "shift / shift-add / shift-subtract forms",
        rewrite=_strength_reduce_mul,
        templates=(
            BinaryOp("MUL", Var("a"), Const(2)),
            BinaryOp("MUL", Var("a"), Const(3)),
            BinaryOp("MUL", Var("a"), Const(5)),
            BinaryOp("MUL", Var("a"), Const(7)),
            BinaryOp("MUL", Var("a"), Const(8)),
            BinaryOp("MUL", Var("a"), Const(12)),
            BinaryOp("MUL", Var("a"), Const(24)),
            BinaryOp("MUL", Var("a"), Const(31)),
            BinaryOp("MUL", Var("a"), Const(96)),
            BinaryOp("MUL", Const(6), Var("a")),
            BinaryOp("MUL", Var("a"), Const(1 << 31)),
        ),
    ),
)


def rewrite_rule_names() -> Tuple[str, ...]:
    """Stable names of every registered rewrite rule (in order)."""
    return tuple(rule.name for rule in REWRITE_RULES)


class SGraphOptimizer:
    """Applies the optimization passes to expressions and statements."""

    def __init__(self, unroll_limit: int = 0) -> None:
        """``unroll_limit``: loops with a constant bound of at most this
        many iterations are fully unrolled (0 disables unrolling)."""
        self.unroll_limit = unroll_limit
        self.report = OptimizationReport()

    # -- expressions -----------------------------------------------------------

    def expression(self, expr: Expression) -> Expression:
        """Optimized copy of ``expr``."""
        if isinstance(expr, BinaryOp):
            left = self.expression(expr.left)
            right = self.expression(expr.right)
            return self._binary(expr.op, left, right)
        if isinstance(expr, UnaryOp):
            operand = self.expression(expr.operand)
            if isinstance(operand, Const):
                self.report.folded_constants += 1
                return Const(UnaryOp(expr.op, operand).evaluate({}))
            return UnaryOp(expr.op, operand)
        return expr

    def _binary(self, op: str, left: Expression, right: Expression) -> Expression:
        if isinstance(left, Const) and isinstance(right, Const):
            self.report.folded_constants += 1
            return Const(BinaryOp(op, left, right).evaluate({}))

        for rule in REWRITE_RULES:
            rewritten = rule.apply(op, left, right)
            if rewritten is not None:
                if rule.category == "identity":
                    self.report.folded_constants += 1
                else:
                    self.report.strength_reduced += 1
                return rewritten
        return BinaryOp(op, left, right)

    # -- statements -----------------------------------------------------------

    def block(self, statements: Sequence[Statement]) -> List[Statement]:
        """Optimized copy of a statement block."""
        result: List[Statement] = []
        for statement in statements:
            result.extend(self.statement(statement))
        return result

    def statement(self, statement: Statement) -> List[Statement]:
        """Optimized replacement statements (possibly empty or many)."""
        if isinstance(statement, Assign):
            return [Assign(statement.target, self.expression(statement.value))]
        if isinstance(statement, Emit):
            value = (None if statement.value is None
                     else self.expression(statement.value))
            return [Emit(statement.event, value)]
        if isinstance(statement, SharedRead):
            return [SharedRead(statement.target,
                               self.expression(statement.address))]
        if isinstance(statement, SharedWrite):
            return [SharedWrite(self.expression(statement.address),
                                self.expression(statement.value))]
        if isinstance(statement, If):
            return self._if(statement)
        if isinstance(statement, Loop):
            return self._loop(statement)
        return [statement]

    def _if(self, statement: If) -> List[Statement]:
        cond = self.expression(statement.cond)
        if isinstance(cond, Const):
            self.report.dead_branches += 1
            live = statement.then if cond.value else statement.els
            return self.block(live)
        return [If(cond, self.block(statement.then), self.block(statement.els))]

    def _loop(self, statement: Loop) -> List[Statement]:
        count = self.expression(statement.count)
        body = self.block(statement.body)
        if isinstance(count, Const):
            if count.value <= 0:
                self.report.dead_loops += 1
                return []
            if 0 < count.value <= self.unroll_limit:
                self.report.unrolled_loops += 1
                unrolled: List[Statement] = []
                for _ in range(count.value):
                    # Bodies must be fresh objects: node ids are
                    # assigned per occurrence.
                    unrolled.extend(self.block(statement.body))
                return unrolled
        return [Loop(count, body)]


def optimize_sgraph(
    graph: SGraph, unroll_limit: int = 0
) -> "tuple[SGraph, OptimizationReport]":
    """Optimized copy of one s-graph plus the change report."""
    optimizer = SGraphOptimizer(unroll_limit=unroll_limit)
    statements = optimizer.block(graph.statements)
    return SGraph(statements, max_iterations=graph.max_iterations), optimizer.report


def optimize_network(network, unroll_limit: int = 0):
    """Optimized copy of a whole network (mappings preserved).

    Returns ``(network, {cfsm name: OptimizationReport})``.
    """
    from repro.cfsm.model import Network

    optimized = Network(
        name=network.name,
        bus_events=set(network.bus_events),
        environment_inputs=set(network.environment_inputs),
        reset_events=set(network.reset_events),
    )
    reports = {}
    for name in sorted(network.cfsms):
        cfsm, report = optimize_cfsm(network.cfsms[name], unroll_limit)
        optimized.add(cfsm, network.implementation(name))
        reports[name] = report
    return optimized, reports


def optimize_cfsm(cfsm: Cfsm, unroll_limit: int = 0) -> "tuple[Cfsm, OptimizationReport]":
    """Optimized copy of a CFSM (all transitions)."""
    total = OptimizationReport()
    optimized = Cfsm(
        name=cfsm.name,
        inputs=dict(cfsm.inputs),
        outputs=dict(cfsm.outputs),
        variables=dict(cfsm.variables),
        shared_variables=set(cfsm.shared_variables),
        width=cfsm.width,
        clock_period_ns=cfsm.clock_period_ns,
    )
    for transition in cfsm.transitions:
        graph, report = optimize_sgraph(transition.body, unroll_limit)
        for field_name in ("folded_constants", "strength_reduced",
                           "dead_branches", "dead_loops", "unrolled_loops"):
            setattr(total, field_name,
                    getattr(total, field_name) + getattr(report, field_name))
        optimizer = SGraphOptimizer()
        guard = (None if transition.guard is None
                 else optimizer.expression(transition.guard))
        optimized.transitions.append(
            Transition(
                name=transition.name,
                trigger=transition.trigger,
                body=graph,
                guard=guard,
                consumes=transition.consumes,
            )
        )
    return optimized, total

"""S-graphs: the structured bodies of CFSM transitions.

An s-graph is a small structured program (assignments, event emissions,
two-way tests, and counted loops) executed atomically when a transition
fires.  The behavioral interpreter in this module is the *reference
semantics* used by the simulation master; the software code generator
and the hardware synthesizer must agree with it (this is checked by
property-based tests).

Executing an s-graph produces an :class:`ExecutionTrace` that records

* the macro-operation stream (consumed by software macro-modeling),
* the *path signature* — the sequence of test outcomes — which is the
  lookup key used by energy/delay caching (Section 4.2),
* the memory references performed (fed to the cache simulator by the
  master, exactly as in the paper where the ISS assumes 100% hits and
  the cache simulator is attached directly to PTOLEMY),
* the events emitted, and
* the visited node sequence (the hardware estimator maps one s-graph
  node to one controller state / clock cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from repro.errors import ReproError

from repro.cfsm.actions import MacroOp, MacroOpKind, interned_macro_op
from repro.cfsm.expr import Expression, _coerce

#: Safety bound on loop iterations; a behavioral model that exceeds it
#: almost certainly encodes a non-terminating reaction.
DEFAULT_MAX_ITERATIONS = 1_000_000


class SGraphError(ReproError):
    """Raised for malformed s-graphs or runaway executions."""


@dataclass(frozen=True)
class MemoryReference:
    """One variable access performed during execution.

    Attributes:
        name: variable name (or ``"@event"`` for an event mailbox read).
        is_write: ``True`` for stores, ``False`` for loads.
    """

    name: str
    is_write: bool


_REF_CACHE: Dict[Tuple[str, bool], MemoryReference] = {}


def _memory_ref(name: str, is_write: bool) -> MemoryReference:
    """Interned reference instances for the interpreter's hot loop."""
    key = (name, is_write)
    ref = _REF_CACHE.get(key)
    if ref is None:
        ref = MemoryReference(name, is_write)
        _REF_CACHE[key] = ref
    return ref


class Statement:
    """Base class for s-graph statements.

    ``node_id`` is assigned by :class:`SGraph` in depth-first order and
    mirrors the node numbering of the paper's Figure 4(a).
    """

    node_id: int = -1

    def _assign_ids(self, next_id: int) -> int:
        self.node_id = next_id
        return next_id + 1


class Assign(Statement):
    """``var := expr`` — an AVV/AIVC macro-operation plus operator calls."""

    def __init__(self, target: str, value) -> None:
        if not target:
            raise SGraphError("assignment requires a target variable name")
        self.target = target
        self.value: Expression = _coerce(value)

    def __repr__(self) -> str:
        return "Assign(%s := %r)" % (self.target, self.value)


class Emit(Statement):
    """``emit(event[, value])`` — an AEMIT macro-operation."""

    def __init__(self, event: str, value=None) -> None:
        if not event:
            raise SGraphError("emit requires an event name")
        self.event = event
        self.value: Optional[Expression] = None if value is None else _coerce(value)

    def __repr__(self) -> str:
        return "Emit(%s)" % self.event


class If(Statement):
    """Two-way test: TIVART when the condition holds, TIVARF otherwise."""

    def __init__(self, cond, then: Sequence[Statement], els: Sequence[Statement] = ()) -> None:
        self.cond: Expression = _coerce(cond)
        self.then = list(then)
        self.els = list(els)

    def _assign_ids(self, next_id: int) -> int:
        next_id = Statement._assign_ids(self, next_id)
        for stmt in self.then:
            next_id = stmt._assign_ids(next_id)
        for stmt in self.els:
            next_id = stmt._assign_ids(next_id)
        return next_id

    def __repr__(self) -> str:
        return "If(%r, then=%d stmts, else=%d stmts)" % (
            self.cond,
            len(self.then),
            len(self.els),
        )


class SharedRead(Statement):
    """``var := shared_memory[address]`` — a word read over the bus.

    Shared-memory accesses are the bus traffic of the system: the
    master groups the reads of one transition into DMA bursts and
    charges them to the shared-bus model instead of the local cache.
    """

    def __init__(self, target: str, address) -> None:
        if not target:
            raise SGraphError("shared read requires a target variable")
        self.target = target
        self.address: Expression = _coerce(address)

    def __repr__(self) -> str:
        return "SharedRead(%s := M[%r])" % (self.target, self.address)


class SharedWrite(Statement):
    """``shared_memory[address] := value`` — a word write over the bus."""

    def __init__(self, address, value) -> None:
        self.address: Expression = _coerce(address)
        self.value: Expression = _coerce(value)

    def __repr__(self) -> str:
        return "SharedWrite(M[%r] := %r)" % (self.address, self.value)


class Loop(Statement):
    """Counted loop: the body runs ``count`` times (0 if negative).

    The iteration count is *not* part of the path signature: the paper's
    energy-caching technique keys on the control path, so a path whose
    loop bound is data-dependent shows a spread-out energy histogram
    (Figure 4(b)) and is filtered out by the variance threshold.
    """

    def __init__(self, count, body: Sequence[Statement]) -> None:
        self.count: Expression = _coerce(count)
        self.body = list(body)

    def _assign_ids(self, next_id: int) -> int:
        next_id = Statement._assign_ids(self, next_id)
        for stmt in self.body:
            next_id = stmt._assign_ids(next_id)
        return next_id

    def __repr__(self) -> str:
        return "Loop(%r, body=%d stmts)" % (self.count, len(self.body))


@dataclass
class ExecutionTrace:
    """Everything observed while executing an s-graph once."""

    ops: List[MacroOp] = field(default_factory=list)
    path: Tuple = ()
    emitted: List[Tuple[str, int]] = field(default_factory=list)
    memory_refs: List[MemoryReference] = field(default_factory=list)
    var_updates: Dict[str, int] = field(default_factory=dict)
    visited: List[int] = field(default_factory=list)
    loop_iterations: int = 0
    shared_reads: List[Tuple[int, int]] = field(default_factory=list)
    shared_writes: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def op_names(self) -> List[str]:
        """Macro-operation names in execution order."""
        return [op.name for op in self.ops]


class SGraph:
    """A transition body: an ordered list of statements.

    The constructor assigns node ids depth-first so that path
    signatures and hardware controller states are stable.
    """

    def __init__(self, statements: Sequence[Statement], max_iterations: int = DEFAULT_MAX_ITERATIONS) -> None:
        self.statements = list(statements)
        self.max_iterations = max_iterations
        self._shared = None
        next_id = 1
        for stmt in self.statements:
            next_id = stmt._assign_ids(next_id)
        self.node_count = next_id - 1

    def nodes(self) -> List[Statement]:
        """All statements in node-id order."""
        found: List[Statement] = []

        def collect(stmts: Sequence[Statement]) -> None:
            for stmt in stmts:
                found.append(stmt)
                if isinstance(stmt, If):
                    collect(stmt.then)
                    collect(stmt.els)
                elif isinstance(stmt, Loop):
                    collect(stmt.body)

        collect(self.statements)
        return sorted(found, key=lambda s: s.node_id)

    def variables_read(self) -> List[str]:
        """Variables possibly read anywhere in the body (sorted)."""
        names = set()
        for stmt in self.nodes():
            for expression in _expressions_of(stmt):
                names.update(expression.variables())
        return sorted(names)

    def variables_written(self) -> List[str]:
        """Variables possibly written anywhere in the body (sorted)."""
        return sorted(
            {
                stmt.target
                for stmt in self.nodes()
                if isinstance(stmt, (Assign, SharedRead))
            }
        )

    def uses_shared_memory(self) -> bool:
        """Whether the body contains shared-memory accesses."""
        return any(
            isinstance(stmt, (SharedRead, SharedWrite)) for stmt in self.nodes()
        )

    def events_emitted(self) -> List[str]:
        """Events possibly emitted anywhere in the body (sorted)."""
        return sorted({stmt.event for stmt in self.nodes() if isinstance(stmt, Emit)})

    def event_values_read(self) -> List[str]:
        """Event values possibly read anywhere in the body (sorted)."""
        names = set()
        for stmt in self.nodes():
            for expression in _expressions_of(stmt):
                names.update(expression.event_values())
        return sorted(names)

    def execute(self, env: Dict[str, int], shared=None) -> ExecutionTrace:
        """Run the body once under ``env`` and return the trace.

        ``env`` holds variable bindings plus ``"@event"`` keys for the
        values of the triggering events.  The environment is updated in
        place with assignments (mirroring the CFSM's persistent state).
        ``shared`` must provide ``read(addr)``/``write(addr, value)``
        when the body contains shared-memory statements.
        """
        trace = ExecutionTrace()
        path: List[Tuple[int, str]] = []
        self._shared = shared
        try:
            self._run_block(self.statements, env, trace, path)
        finally:
            self._shared = None
        trace.path = tuple(path)
        return trace

    # -- interpreter ------------------------------------------------------

    def _run_block(
        self,
        stmts: Sequence[Statement],
        env: Dict[str, int],
        trace: ExecutionTrace,
        path: List[Tuple[int, str]],
    ) -> None:
        for stmt in stmts:
            self._run_statement(stmt, env, trace, path)

    def _run_statement(
        self,
        stmt: Statement,
        env: Dict[str, int],
        trace: ExecutionTrace,
        path: List[Tuple[int, str]],
    ) -> None:
        trace.visited.append(stmt.node_id)
        if isinstance(stmt, Assign):
            value = self._eval(stmt.value, env, trace)
            env[stmt.target] = value
            trace.var_updates[stmt.target] = value
            trace.memory_refs.append(_memory_ref(stmt.target, True))
            if isinstance_const(stmt.value):
                trace.ops.append(interned_macro_op(MacroOpKind.AIVC, stmt.target))
            else:
                trace.ops.append(interned_macro_op(MacroOpKind.AVV, stmt.target))
        elif isinstance(stmt, Emit):
            value = 0
            if stmt.value is not None:
                value = self._eval(stmt.value, env, trace)
            trace.emitted.append((stmt.event, value))
            trace.ops.append(interned_macro_op(MacroOpKind.AEMIT, stmt.event))
        elif isinstance(stmt, SharedRead):
            if self._shared is None:
                raise SGraphError(
                    "shared read at node %d without a shared memory" % stmt.node_id
                )
            address = self._eval(stmt.address, env, trace)
            value = self._shared.read(address)
            env[stmt.target] = value
            trace.var_updates[stmt.target] = value
            trace.shared_reads.append((address, value))
            trace.memory_refs.append(_memory_ref(stmt.target, True))
            trace.ops.append(interned_macro_op(MacroOpKind.ASHRD, stmt.target))
        elif isinstance(stmt, SharedWrite):
            if self._shared is None:
                raise SGraphError(
                    "shared write at node %d without a shared memory" % stmt.node_id
                )
            address = self._eval(stmt.address, env, trace)
            value = self._eval(stmt.value, env, trace)
            self._shared.write(address, value)
            trace.shared_writes.append((address, value))
            trace.ops.append(interned_macro_op(MacroOpKind.ASHWR, "n%d" % stmt.node_id))
        elif isinstance(stmt, If):
            taken = bool(self._eval(stmt.cond, env, trace))
            outcome = "T" if taken else "F"
            path.append((stmt.node_id, outcome))
            kind = MacroOpKind.TIVART if taken else MacroOpKind.TIVARF
            trace.ops.append(interned_macro_op(kind, "n%d" % stmt.node_id))
            self._run_block(stmt.then if taken else stmt.els, env, trace, path)
        elif isinstance(stmt, Loop):
            count = self._eval(stmt.count, env, trace)
            count = max(0, count)
            if count > self.max_iterations:
                raise SGraphError(
                    "loop at node %d requested %d iterations (max %d)"
                    % (stmt.node_id, count, self.max_iterations)
                )
            for _ in range(count):
                trace.ops.append(interned_macro_op(MacroOpKind.TLOOPT, "n%d" % stmt.node_id))
                trace.loop_iterations += 1
                self._run_block(stmt.body, env, trace, path)
            trace.ops.append(interned_macro_op(MacroOpKind.TLOOPF, "n%d" % stmt.node_id))
        else:
            raise SGraphError("unknown statement type %r" % type(stmt).__name__)

    def _eval(self, expression: Expression, env: Dict[str, int], trace: ExecutionTrace) -> int:
        # The trace side effects of evaluating an expression (memory
        # references and macro-op records) are static properties of the
        # expression tree; build them once per expression object and
        # bulk-extend the trace on every subsequent evaluation.
        prelude = expression.__dict__.get("_sg_prelude")
        if prelude is None:
            refs = [_memory_ref(name, False) for name in expression.variables()]
            ops = []
            for event in expression.event_values():
                ops.append(interned_macro_op(MacroOpKind.ADETECT, event))
                refs.append(_memory_ref("@" + event, False))
            ops.extend(interned_macro_op(op_name) for op_name in expression.macro_ops())
            prelude = (tuple(refs), tuple(ops))
            object.__setattr__(expression, "_sg_prelude", prelude)
        trace.memory_refs.extend(prelude[0])
        trace.ops.extend(prelude[1])
        return expression.evaluate(env)


def isinstance_const(expression: Expression) -> bool:
    """Whether ``expression`` is a plain constant (AIVC vs. AVV)."""
    from repro.cfsm.expr import Const

    return isinstance(expression, Const)


# ---------------------------------------------------------------------------
# Construction helpers mirroring repro.cfsm.expr's lower-case builders.
# ---------------------------------------------------------------------------


def assign(target: str, value) -> Assign:
    """``target := value`` statement."""
    return Assign(target, value)


def emit(event: str, value=None) -> Emit:
    """``emit(event[, value])`` statement."""
    return Emit(event, value)


def if_(cond, then: Sequence[Statement], els: Sequence[Statement] = ()) -> If:
    """Two-way test statement."""
    return If(cond, then, els)


def loop(count, body: Sequence[Statement]) -> Loop:
    """Counted-loop statement."""
    return Loop(count, body)


def shared_read(target: str, address) -> SharedRead:
    """``target := shared_memory[address]`` statement."""
    return SharedRead(target, address)


def shared_write(address, value) -> SharedWrite:
    """``shared_memory[address] := value`` statement."""
    return SharedWrite(address, value)


def _expressions_of(stmt: Statement) -> List[Expression]:
    """All expression roots contained directly in ``stmt``."""
    if isinstance(stmt, Assign):
        return [stmt.value]
    if isinstance(stmt, Emit):
        return [] if stmt.value is None else [stmt.value]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, Loop):
        return [stmt.count]
    if isinstance(stmt, SharedRead):
        return [stmt.address]
    if isinstance(stmt, SharedWrite):
        return [stmt.address, stmt.value]
    return []

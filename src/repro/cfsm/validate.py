"""Static checks on CFSM networks (legacy string-list façade).

The checks themselves now live in the :mod:`repro.lint` rule catalog —
this module re-renders the subset marked ``in_validate`` (the
historical contract of ``NetworkBuilder.build(validate=True)``) back
into the plain strings this API has always returned.  New, advisory
analyses (races, unconsumed outputs, path/cacheability reports) are
deliberately NOT part of this subset: strict builds must not start
failing on designs that were previously accepted.  Run ``repro lint``
for the full analysis.
"""

from __future__ import annotations

from typing import List
from repro.errors import ReproError

from repro.cfsm.model import Cfsm, Network


class NetworkValidationError(ReproError):
    """Raised when a network fails validation in strict mode."""

    def __init__(self, issues: List[str]) -> None:
        super().__init__("network validation failed:\n" + "\n".join(issues))
        self.issues = issues


def _legacy_strings(diagnostics) -> List[str]:
    """Render lint diagnostics in the historical ``proc.t: message``
    form, keeping only the rules in the validate contract."""
    from repro.lint.diagnostics import RULES

    issues: List[str] = []
    for diagnostic in diagnostics:
        if not RULES[diagnostic.code].in_validate:
            continue
        location = diagnostic.location
        if location.cfsm and location.transition:
            issues.append(
                "%s.%s: %s"
                % (location.cfsm, location.transition, diagnostic.message)
            )
        elif location.cfsm:
            issues.append("%s: %s" % (location.cfsm, diagnostic.message))
        else:
            issues.append(diagnostic.message)
    return issues


def validate_cfsm(cfsm: Cfsm) -> List[str]:
    """Return a list of problems found in one CFSM (empty if clean)."""
    from repro.lint.network_rules import check_cfsm

    return _legacy_strings(check_cfsm(cfsm))


def validate_network(network: Network, strict: bool = True) -> List[str]:
    """Validate every CFSM and the inter-process wiring.

    Returns the list of issues; raises :class:`NetworkValidationError`
    in strict mode when the list is non-empty.
    """
    from repro.lint.network_rules import check_cfsm, check_network

    issues: List[str] = []
    for _, cfsm in sorted(network.cfsms.items()):
        issues.extend(_legacy_strings(check_cfsm(cfsm)))
    issues.extend(_legacy_strings(check_network(network)))
    if strict and issues:
        raise NetworkValidationError(issues)
    return issues

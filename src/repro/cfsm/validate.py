"""Static checks on CFSM networks.

The checks catch the system-description mistakes that otherwise show up
as confusing co-simulation behaviour: undeclared variables, emissions of
events that are not declared outputs, value reads of pure events,
dangling inputs that no process or testbench drives, and transitions
that can never fire.
"""

from __future__ import annotations

from typing import List
from repro.errors import ReproError

from repro.cfsm.model import Cfsm, Network
from repro.cfsm.sgraph import (
    Assign,
    Emit,
    SGraph,
    SharedRead,
    _expressions_of,
)


class NetworkValidationError(ReproError):
    """Raised when a network fails validation in strict mode."""

    def __init__(self, issues: List[str]) -> None:
        super().__init__("network validation failed:\n" + "\n".join(issues))
        self.issues = issues


def validate_cfsm(cfsm: Cfsm) -> List[str]:
    """Return a list of problems found in one CFSM (empty if clean)."""
    issues: List[str] = []
    seen_transitions = set()
    for transition in cfsm.transitions:
        prefix = "%s.%s: " % (cfsm.name, transition.name)
        if transition.name in seen_transitions:
            issues.append(prefix + "duplicate transition name")
        seen_transitions.add(transition.name)
        if not transition.trigger:
            issues.append(prefix + "has no trigger events (would never fire)")
        for event in transition.trigger:
            if event not in cfsm.inputs:
                issues.append(prefix + "triggers on undeclared input %r" % event)
        issues.extend(prefix + issue for issue in _check_body(cfsm, transition.body))
        if transition.guard is not None:
            for name in transition.guard.variables():
                if name not in cfsm.variables:
                    issues.append(prefix + "guard reads undeclared variable %r" % name)
            for event in transition.guard.event_values():
                issues.extend(prefix + issue for issue in _check_value_read(cfsm, event))
    return issues


def _check_body(cfsm: Cfsm, body: SGraph) -> List[str]:
    issues: List[str] = []
    for stmt in body.nodes():
        if isinstance(stmt, (Assign, SharedRead)) and stmt.target not in cfsm.variables:
            issues.append("assigns undeclared variable %r" % stmt.target)
        if isinstance(stmt, Emit):
            if stmt.event not in cfsm.outputs:
                issues.append("emits undeclared output %r" % stmt.event)
            elif stmt.value is not None and not cfsm.outputs[stmt.event].has_value:
                issues.append("emits a value on pure event %r" % stmt.event)
        for expression in _expressions_of(stmt):
            for name in expression.variables():
                if name not in cfsm.variables:
                    issues.append("reads undeclared variable %r" % name)
            for event in expression.event_values():
                issues.extend(_check_value_read(cfsm, event))
    for name in cfsm.shared_variables:
        if name not in cfsm.variables:
            issues.append("shared variable %r is not declared" % name)
    return issues


def _check_value_read(cfsm: Cfsm, event: str) -> List[str]:
    if event not in cfsm.inputs:
        return ["reads value of undeclared input %r" % event]
    if not cfsm.inputs[event].has_value:
        return ["reads value of pure event %r" % event]
    return []


def validate_network(network: Network, strict: bool = True) -> List[str]:
    """Validate every CFSM and the inter-process wiring.

    Returns the list of issues; raises :class:`NetworkValidationError`
    in strict mode when the list is non-empty.
    """
    issues: List[str] = []
    for _, cfsm in sorted(network.cfsms.items()):
        issues.extend(validate_cfsm(cfsm))
        if network.mapping.get(cfsm.name) is None:
            issues.append("%s: has no HW/SW mapping" % cfsm.name)

    # Event wiring: every consumed event must be produced by a CFSM or
    # declared as an environment input.
    dangling = network.external_inputs() - network.environment_inputs
    for event in sorted(dangling):
        consumers = ", ".join(c.name for c in network.consumers_of(event))
        issues.append(
            "event %r is consumed by [%s] but produced by no CFSM and "
            "not declared as an environment input" % (event, consumers)
        )

    # Events mapped to the bus must actually exist.
    known_events = set(network.all_event_types())
    for event in sorted(network.bus_events):
        if event not in known_events:
            issues.append("bus event %r is not declared by any CFSM" % event)

    # Reset events must reach at least one process, and it makes no
    # sense for a transition to trigger on one (the reset pre-empts
    # normal reaction).
    for event in sorted(network.reset_events):
        if not network.consumers_of(event):
            issues.append("reset event %r has no watching process" % event)
        for _, cfsm in sorted(network.cfsms.items()):
            for transition in cfsm.transitions:
                if event in transition.trigger:
                    issues.append(
                        "%s.%s: triggers on reset event %r"
                        % (cfsm.name, transition.name, event)
                    )

    # Conflicting value-ness between producer and consumer declarations
    # is caught by Network.all_event_types; surface it as an issue
    # rather than an exception for consistency.
    try:
        network.all_event_types()
    except ValueError as error:
        issues.append(str(error))

    if strict and issues:
        raise NetworkValidationError(issues)
    return issues

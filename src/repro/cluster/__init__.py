"""`repro.cluster` — distributed co-estimation: coordinator + workers.

The service layer made the framework a long-running process; this
package makes it a *cluster*.  A coordinator fronts the same JSON/HTTP
estimate protocol and shards work over N worker processes, each of
which reuses :func:`repro.parallel.pool.execute_spec` as its unit of
execution — the cluster is a distribution layer, not a second engine.

* :mod:`repro.cluster.hashring` — consistent hashing with virtual
  replicas; estimates route by request fingerprint, sweep points by
  job label, so identical requests coalesce cluster-wide and each
  worker's §4.2 caches stay hot for its shard.
* :mod:`repro.cluster.membership` — the worker state machine
  (live/suspect/dead/limplocked/decommissioned) driven by HDFS-style
  heartbeats, including the limplock detector that quarantines
  alive-but-slow workers.
* :mod:`repro.cluster.protocol` — the tiny JSON-over-HTTP wire layer
  (stdlib only) shared by both halves; socket-level failures surface
  as :class:`~repro.cluster.protocol.TransportError`, the signal that
  makes re-dispatch safe to decide.
* :mod:`repro.cluster.worker` — the worker process (``repro worker``):
  registers, heartbeats, runs jobs, drains gracefully.
* :mod:`repro.cluster.coordinator` — membership + routing +
  re-dispatch + sweep sharding with checkpoint-backed shard handoff
  (``repro cluster``).
* :mod:`repro.cluster.journal` — the append-only, fsync'd
  control-plane journal a standby replays to take over.
* :mod:`repro.cluster.ha` — lease-based leader election with a
  deterministic tiebreak, plus the peer-walking failover client;
  together with per-request epoch fencing this is the coordinator
  high-availability layer (docs/cluster-ha.md).

Determinism contract: every job's seed is a pure function of its
identity (:func:`repro.parallel.jobs.job_seed`), so a job re-dispatched
after a worker death — or resumed from a handed-off checkpoint —
reproduces its original result byte for byte.  See docs/cluster.md.
"""

from repro.cluster.coordinator import (
    ClusterConfig,
    ClusterCoordinator,
    ROLE_FENCED,
    ROLE_LEADER,
    ROLE_STANDBY,
    run_cluster,
    run_coordinator,
)
from repro.cluster.ha import Lease, LeaseFile, failover_request
from repro.cluster.hashring import HashRing
from repro.cluster.journal import (
    ControlPlaneJournal,
    ControlPlaneState,
    JournalEntry,
    JournalError,
)
from repro.cluster.membership import (
    DEAD,
    DECOMMISSIONED,
    LIMPLOCKED,
    LIVE,
    SUSPECT,
    MembershipConfig,
    MembershipTable,
    WorkerInfo,
)
from repro.cluster.protocol import (
    JOB_KIND_ESTIMATE,
    JOB_KIND_SPEC,
    ProtocolError,
    TransportError,
    get_json,
    http_json,
    post_json,
)
from repro.cluster.worker import ClusterWorker, WorkerConfig, run_worker

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "run_coordinator",
    "run_cluster",
    "HashRing",
    "MembershipConfig",
    "MembershipTable",
    "WorkerInfo",
    "LIVE",
    "SUSPECT",
    "DEAD",
    "LIMPLOCKED",
    "DECOMMISSIONED",
    "JOB_KIND_ESTIMATE",
    "JOB_KIND_SPEC",
    "TransportError",
    "ProtocolError",
    "http_json",
    "post_json",
    "get_json",
    "WorkerConfig",
    "ClusterWorker",
    "run_worker",
    "ROLE_LEADER",
    "ROLE_STANDBY",
    "ROLE_FENCED",
    "Lease",
    "LeaseFile",
    "failover_request",
    "ControlPlaneJournal",
    "ControlPlaneState",
    "JournalEntry",
    "JournalError",
]

"""The cluster coordinator (``repro cluster``).

The coordinator fronts the same JSON/HTTP estimate protocol the
single-node service speaks, but instead of running jobs on local
threads it routes them to registered worker nodes:

* **consistent-hash sharding** — estimates route by their structural
  :func:`~repro.service.api.request_fingerprint`, sweep points by job
  label, so identical requests land on the same worker (cluster-wide
  in-flight coalescing stays effective) and each worker's
  process-local §4.2 caches stay hot for its shard;
* **failure detection and re-dispatch** — HDFS-style heartbeats drive
  the membership state machine (live/suspect/dead); a transport-level
  failure mid-job marks the worker dead and re-dispatches the job to
  the next worker on the ring.  Per-job seeds are deterministic
  (:func:`~repro.parallel.jobs.job_seed`), so a re-dispatched job
  reproduces the original result byte for byte.  HTTP-level errors are
  *never* re-dispatched — the job ran; its answer stands;
* **limplock quarantine** — a worker that stays alive but runs far
  slower than its peers (observed-latency EWMA above the peer median
  by the limp factor) is quarantined out of routing, so one limping
  node cannot drag cluster latency to its speed;
* **shard handoff** — sweeps flush a
  :class:`~repro.resilience.checkpoint.CheckpointWriter` per point
  under the *same signature* ``repro explore`` uses, so a partially
  drained shard resumes on any other worker — or on a single node —
  with byte-identical merged output;
* **the shared warm-cache tier** — workers push/pull §4.2 warm-start
  snapshots through the coordinator (fingerprint-guarded, wholesale
  adoption), transferring cache convergence across nodes.

The coordinator core is HTTP-agnostic with an injectable transport and
clock, so the failure machinery is unit-testable without sockets.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import Observability, labeled
from repro.obs.context import RequestContext, use_context
from repro.obs.logging import JsonLogger, NULL_LOGGER
from repro.obs.names import (
    EVENT_COALESCED,
    EVENT_JOB_REDISPATCHED,
    EVENT_SHARD_HANDOFF,
    EVENT_SWEEP_STEP,
    EVENT_WORKER_QUARANTINED,
    EVENT_WORKER_REGISTERED,
    EVENT_WORKER_STATE,
    METRIC_CLUSTER_HEARTBEAT_AGE,
    METRIC_CLUSTER_QUARANTINES,
    METRIC_CLUSTER_REDISPATCHES,
    METRIC_CLUSTER_WORKER_QUEUE_DEPTH,
    METRIC_CLUSTER_WORKERS,
)
from repro.cluster.hashring import HashRing
from repro.cluster.membership import (
    DEAD,
    DECOMMISSIONED,
    LIMPLOCKED,
    LIVE,
    SUSPECT,
    MembershipConfig,
    MembershipTable,
)
from repro.cluster.protocol import (
    JOB_KIND_ESTIMATE,
    JOB_KIND_SPEC,
    TransportError,
    post_json,
)
from repro.core.explorer import (
    design_point_from_payload,
    priority_label,
    priority_permutations,
    sweep_summary_rows,
)
from repro.parallel.jobs import JobSpec, job_seed, spec_to_wire
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
    resilience_signature,
    sweep_signature,
)
from repro.resilience.supervisor import retry_backoff_s
from repro.service.api import (
    BadRequest,
    EstimateRequest,
    parse_request,
    request_fingerprint,
)
from repro.service.dedup import InflightTable
from repro.service.httpbase import JsonRequestHandler, QuietHTTPServer
from repro.service.lifecycle import DrainController, install_drain_signals
from repro.service.server import PendingResult
from repro.systems import build_bundle, system_names
from repro.telemetry import Telemetry

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "run_coordinator",
    "run_cluster",
]

_ALL_STATES = (LIVE, SUSPECT, DEAD, LIMPLOCKED, DECOMMISSIONED)
_SWEEP_STRATEGIES = ("full", "caching", "macromodel", "sampling")

#: The fig.7 sweep's builder — the same one ``repro explore`` names.
_SWEEP_BUILDER = "repro.systems.tcpip:build_system"


@dataclass
class ClusterConfig:
    """Tuning knobs of one coordinator (see docs/cluster.md)."""

    #: Membership thresholds (suspect/dead ages, limplock factor).
    membership: MembershipConfig = field(default_factory=MembershipConfig)
    #: Interval the refresher thread advances the membership state
    #: machine and republishes the cluster gauges at.
    refresh_interval_s: float = 0.5
    #: Heartbeat interval workers are told to use at registration.
    heartbeat_interval_s: float = 1.0
    #: How many times one job may be re-dispatched to another worker
    #: after transport failures before answering 502.
    redispatch_budget: int = 2
    #: Deterministic backoff between re-dispatch attempts.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    #: Socket budget for one dispatched sweep point.
    request_timeout_s: float = 120.0
    default_deadline_s: float = 30.0
    ring_replicas: int = 64
    log_json: bool = False

    def __post_init__(self) -> None:
        if self.refresh_interval_s <= 0:
            raise ValueError("refresh_interval_s must be positive")
        if self.redispatch_budget < 0:
            raise ValueError("redispatch_budget must be non-negative")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")


@dataclass
class _SweepPlan:
    """Validated parameters of one ``POST /sweep``."""

    dma_sizes: List[int]
    num_packets: int
    packet_period_ns: float
    strategy: str
    warm_start: bool
    checkpoint_path: Optional[str]
    resume: bool


@dataclass
class _EstimateEntry:
    """One estimate riding through coalescing and dispatch."""

    request: EstimateRequest
    fingerprint: str
    pending: PendingResult
    submitted_at: float
    context: Optional[RequestContext] = None


class ClusterCoordinator:
    """Membership + routing + re-dispatch + shard handoff, HTTP-agnostic.

    ``transport(url, path, body, timeout_s) -> (status, body)`` is
    injectable (tests drive the failure machinery with fakes); the
    default is the stdlib JSON client, which raises
    :class:`~repro.cluster.protocol.TransportError` on socket failures.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Callable[[], float] = time.monotonic,
        transport=None,
        logger: Optional[JsonLogger] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.clock = clock
        self.transport = transport if transport is not None else post_json
        if logger is None:
            logger = (JsonLogger(component="coordinator")
                      if self.config.log_json else NULL_LOGGER)
        self.obs = Observability(
            metrics=self.telemetry.metrics, logger=logger
        )
        self.membership = MembershipTable(
            self.config.membership, clock=clock,
            on_transition=self._on_transition,
        )
        self._ring_lock = threading.Lock()
        self.ring = HashRing(self.config.ring_replicas)
        self.dedup = InflightTable()
        self.drain_controller = DrainController()
        self._lock = threading.Lock()
        self._completed = 0
        self._failed = 0
        self._coalesced = 0
        self._redispatches = 0
        self._quarantines = 0
        self._sweeps = 0
        self._sweep_points = 0
        self._cache_lock = threading.Lock()
        self._cache_tier: Dict[str, Dict[str, Any]] = {}

    # -- membership plumbing ---------------------------------------------

    def _on_transition(self, worker_id: str, old: str, new: str,
                       reason: str) -> None:
        with self._ring_lock:
            if new == LIVE:
                self.ring.add(worker_id)
            else:
                self.ring.remove(worker_id)
        if not old:
            self.obs.event(EVENT_WORKER_REGISTERED, worker=worker_id)
        elif new == LIMPLOCKED:
            with self._lock:
                self._quarantines += 1
            self.obs.metrics.counter(METRIC_CLUSTER_QUARANTINES).inc()
            self.obs.event(EVENT_WORKER_QUARANTINED, worker=worker_id,
                           reason=reason)
        else:
            self.obs.event(EVENT_WORKER_STATE, worker=worker_id,
                           old=old, new=new, reason=reason)

    def register_worker(self, worker_id: str,
                        url: str) -> Tuple[int, Dict[str, Any]]:
        if not worker_id or not url:
            return 400, {"status": "error",
                         "reason": "worker_id and url are required"}
        self.membership.register(worker_id, url)
        return 200, {
            "status": "ok",
            "worker_id": worker_id,
            "heartbeat_interval_s": self.config.heartbeat_interval_s,
        }

    def heartbeat(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        worker_id = str(body.get("worker_id") or "")
        known = self.membership.heartbeat(
            worker_id,
            queue_depth=int(body.get("queue_depth") or 0),
            in_flight=int(body.get("in_flight") or 0),
            completed=int(body.get("completed") or 0),
            reported_run_s=float(body.get("mean_run_s") or 0.0),
        )
        return 200, {"status": "ok" if known else "unknown"}

    def refresh_membership(self) -> None:
        """Advance liveness/limplock; transitions fan out via the hook."""
        self.membership.refresh()

    def decommission_worker(
        self, worker_id: str, reason: str = "requested"
    ) -> Tuple[int, Dict[str, Any]]:
        """Planned removal: unroutable now; its in-progress shard is
        re-queued by the sweep engine (checkpoint-backed handoff)."""
        url = self.membership.url_of(worker_id)
        if not self.membership.decommission(worker_id, reason):
            return 404, {"status": "error",
                         "reason": "unknown worker %r" % worker_id}
        if url is not None:
            try:
                self.transport(url, "/decommission", {"reason": reason}, 5.0)
            except TransportError:
                pass  # it will be declared dead by heartbeat age instead
        return 200, {"status": "ok", "worker_id": worker_id,
                     "state": DECOMMISSIONED}

    # -- ring access (transitions mutate it from several threads) --------

    def _ring_preference(self, key: str) -> List[str]:
        with self._ring_lock:
            return self.ring.preference(key)

    def _ring_node_for(self, key: str) -> Optional[str]:
        with self._ring_lock:
            return self.ring.node_for(key)

    # -- estimates -------------------------------------------------------

    def submit(self, request: EstimateRequest) -> Tuple[PendingResult, bool]:
        """Route one estimate; returns ``(pending, coalesced)``.

        The primary dispatches synchronously in the calling thread and
        resolves the shared :class:`PendingResult`; identical in-flight
        requests (same fingerprint) coalesce onto it without another
        dispatch — and because the ring routes by the same fingerprint,
        replicas of this coordinator behind one worker set would land
        the duplicates on the same worker too.
        """
        if self.drain_controller.draining:
            raise _Rejected("coordinator is draining", 503, "draining")
        bundle = build_bundle(request.system)
        fingerprint = request_fingerprint(bundle, request)
        context = RequestContext.new(request.request_id)
        entry = _EstimateEntry(
            request=request,
            fingerprint=fingerprint,
            pending=PendingResult(),
            submitted_at=self.clock(),
            context=context,
        )
        entry.pending.trace_id = context.trace_id
        primary = self.dedup.admit(fingerprint, entry)
        if primary is not entry:
            with self._lock:
                self._coalesced += 1
            with use_context(context):
                self.obs.event(
                    EVENT_COALESCED,
                    fingerprint=fingerprint,
                    primary_trace_id=(
                        primary.context.trace_id if primary.context else ""
                    ),
                )
            return primary.pending, True
        try:
            with use_context(context):
                self._dispatch_estimate(entry)
        finally:
            self.dedup.complete(fingerprint)
        return entry.pending, False

    def _dispatch_estimate(self, entry: _EstimateEntry) -> None:
        request = entry.request
        wire = {
            "kind": JOB_KIND_ESTIMATE,
            "request": request.to_payload(),
            "trace": (entry.context.to_payload()
                      if entry.context is not None else None),
        }
        timeout_s = request.deadline_s + 5.0
        redispatches = 0
        while True:
            target = None
            for candidate in self._ring_preference(entry.fingerprint):
                target = candidate
                break
            if target is None:
                self._resolve(entry, 503, {
                    "status": "rejected",
                    "reason": "no_workers",
                    "request_id": request.request_id,
                })
                return
            url = self.membership.url_of(target)
            if url is None:
                self.membership.mark_dead(target, "no url on record")
                continue
            started = self.clock()
            try:
                status, body = self.transport(url, "/run", wire, timeout_s)
            except TransportError as exc:
                # The worker vanished mid-job.  Safe to re-dispatch:
                # the job's seed is a pure function of its identity, so
                # a re-run on any worker is byte-identical.
                self.membership.mark_dead(
                    target, "estimate dispatch failed: %s" % exc
                )
                redispatches += 1
                self._note_redispatch(target, request.request_id, str(exc))
                if redispatches > self.config.redispatch_budget:
                    self._resolve(entry, 502, {
                        "status": "error",
                        "reason": "redispatch_budget_exhausted",
                        "request_id": request.request_id,
                        "detail": "%d dispatch attempt(s) failed"
                                  % redispatches,
                    })
                    return
                time.sleep(retry_backoff_s(
                    "estimate:%s" % entry.fingerprint, redispatches,
                    self.config.backoff_base_s, self.config.backoff_cap_s,
                ))
                continue
            self.membership.observe_run(target, self.clock() - started)
            if status == 503 and body.get("reason") == "draining":
                # The worker is decommissioning; its shard belongs to
                # its ring successor now.  Not a failure — no penalty
                # beyond the handoff.
                self.membership.decommission(target, "worker draining")
                redispatches += 1
                self.obs.event(EVENT_SHARD_HANDOFF, worker=target,
                               job=request.request_id, kind="estimate")
                if redispatches > self.config.redispatch_budget:
                    self._resolve(entry, 503, {
                        "status": "rejected",
                        "reason": "no_workers",
                        "request_id": request.request_id,
                    })
                    return
                continue
            # The job ran — success or worker-side error, the answer
            # stands; re-dispatching a completed computation would be a
            # duplicate, not a retry.
            out = dict(body)
            out["fingerprint"] = entry.fingerprint
            out["cluster"] = {
                "worker": target,
                "redispatches": redispatches,
            }
            with self._lock:
                if status == 200:
                    self._completed += 1
                else:
                    self._failed += 1
            self._resolve(entry, status, out)
            return

    def _resolve(self, entry: _EstimateEntry, status: int,
                 body: Dict[str, Any]) -> None:
        headers = {}
        if entry.context is not None:
            headers["X-Trace-Id"] = entry.context.trace_id
        entry.pending.resolve(status, body, headers)
        self.obs.record_outcome(status, self.clock() - entry.submitted_at)

    def _note_redispatch(self, worker_id: str, job: str,
                         detail: str) -> None:
        with self._lock:
            self._redispatches += 1
        self.membership.count_redispatch(worker_id)
        self.obs.metrics.counter(METRIC_CLUSTER_REDISPATCHES).inc()
        self.obs.event(EVENT_JOB_REDISPATCHED, worker=worker_id, job=job,
                       detail=detail)

    # -- sweeps ----------------------------------------------------------

    def run_sweep(self, params: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Run one fig.7 sweep sharded over the live workers.

        Jobs are enumerated exactly like
        :func:`~repro.core.explorer.parallel_sweep` (same labels, same
        deterministic seeds) and the checkpoint uses the same sweep
        signature, so a cluster checkpoint resumes on a single node —
        and vice versa — and the summary rows are byte-identical to
        ``repro explore --out`` regardless of worker deaths, re-dispatch
        order, or handoffs along the way.
        """
        try:
            plan = self._parse_sweep(params)
        except BadRequest as exc:
            return 400, {"status": "error", "reason": str(exc)}
        with self._lock:
            self._sweeps += 1
        assignments = self._sweep_assignments()
        specs: List[JobSpec] = []
        sweep_order: List[Tuple[int, int]] = []
        warm_key = "%s/%s" % (_SWEEP_BUILDER, plan.strategy)
        builder_kwargs = {
            "num_packets": plan.num_packets,
            "packet_period_ns": plan.packet_period_ns,
        }
        for dma_index, dma in enumerate(plan.dma_sizes):
            for prio_index, priorities in enumerate(assignments):
                label = "dma=%d,%s" % (dma, priority_label(priorities))
                specs.append(JobSpec(
                    fn="repro.parallel.runners:run_explorer_point",
                    payload={
                        "builder": _SWEEP_BUILDER,
                        "strategy": plan.strategy,
                        "builder_kwargs": dict(builder_kwargs),
                        "warm_start": plan.warm_start,
                        "warm_key": warm_key,
                        "dma_block_words": dma,
                        "priorities": dict(priorities),
                    },
                    label=label,
                    seed=job_seed(0, label),
                ))
                sweep_order.append((prio_index, dma_index))
        signature = sweep_signature(
            builder=_SWEEP_BUILDER,
            strategy=plan.strategy,
            builder_kwargs=dict(builder_kwargs),
            warm_start=plan.warm_start,
            root_seed=0,
            resilience=resilience_signature(),
        )
        completed_payloads: Dict[str, Any] = {}
        if plan.resume and plan.checkpoint_path is not None:
            try:
                completed_payloads = load_checkpoint(
                    plan.checkpoint_path, signature
                )
            except CheckpointError as exc:
                return 409, {"status": "error",
                             "reason": "checkpoint_mismatch",
                             "detail": str(exc)}
        writer = (
            CheckpointWriter(plan.checkpoint_path, signature,
                             completed=completed_payloads)
            if plan.checkpoint_path is not None else None
        )
        results: Dict[int, Dict[str, Any]] = {}
        errors: Dict[int, str] = {}
        for index, spec in enumerate(specs):
            payload = completed_payloads.get(spec.label)
            if payload is not None:
                results[index] = payload
        restored = len(results)
        pending: List[int] = [i for i in range(len(specs))
                              if i not in results]
        lock = threading.Lock()
        workers_used: Dict[str, int] = {}
        if writer is not None:
            writer.flush()

        def run_for(worker_id: str) -> None:
            url = self.membership.url_of(worker_id)
            if url is None:
                return
            while True:
                with lock:
                    if not pending:
                        return
                    # Shard affinity first (keeps the worker's local
                    # warm caches hot), then steal from slower shards.
                    pick = None
                    for index in pending:
                        owner = self._ring_node_for(specs[index].label)
                        if owner == worker_id:
                            pick = index
                            break
                    if pick is None:
                        pick = pending[0]
                    pending.remove(pick)
                spec = specs[pick]
                body = {"kind": JOB_KIND_SPEC, "job": spec_to_wire(spec)}
                started = self.clock()
                try:
                    status, reply = self.transport(
                        url, "/run", body, self.config.request_timeout_s
                    )
                except TransportError as exc:
                    self.membership.mark_dead(
                        worker_id, "sweep dispatch failed: %s" % exc
                    )
                    with lock:
                        pending.insert(0, pick)
                    self._note_redispatch(worker_id, spec.label, str(exc))
                    return
                self.membership.observe_run(
                    worker_id, self.clock() - started
                )
                if status == 503:
                    # Draining worker: hand its shard back for the
                    # ring successors (the checkpoint already holds
                    # everything it finished).
                    self.membership.decommission(
                        worker_id, "worker draining"
                    )
                    with lock:
                        pending.insert(0, pick)
                    self.obs.event(EVENT_SHARD_HANDOFF, worker=worker_id,
                                   job=spec.label, kind="sweep")
                    return
                if status != 200 or reply.get("status") != "ok":
                    with lock:
                        errors[pick] = str(
                            reply.get("detail") or reply.get("reason")
                            or "HTTP %d" % status
                        )
                    continue
                result = reply.get("result") or {}
                payload = (result.get("payload")
                           if result.get("type") == "design_point"
                           else None)
                if not isinstance(payload, dict):
                    with lock:
                        errors[pick] = (
                            "worker %s returned a non-design-point result"
                            % worker_id
                        )
                    continue
                with lock:
                    results[pick] = payload
                    workers_used[worker_id] = (
                        workers_used.get(worker_id, 0) + 1
                    )
                    if writer is not None:
                        writer.record_and_flush(
                            spec.label, payload,
                            meta={"total_points": len(specs)},
                        )
                with self._lock:
                    self._sweep_points += 1
                self.obs.event(
                    EVENT_SWEEP_STEP, label=spec.label, worker=worker_id,
                    run_seconds=round(
                        float(reply.get("run_seconds") or 0.0), 6
                    ),
                )

        # Dispatch rounds: one thread per routable worker; a thread
        # exits when its worker dies/drains (job re-queued) or no work
        # is left.  Each round re-reads membership, so workers that
        # register mid-sweep join and dead ones drop out.
        while True:
            with lock:
                if not pending:
                    break
            self.refresh_membership()
            routable = self.membership.routable()
            if not routable:
                break
            threads = [
                threading.Thread(target=run_for, args=(worker_id,),
                                 name="cluster-sweep-%s" % worker_id,
                                 daemon=True)
                for worker_id in routable
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        ordered = sorted(range(len(specs)), key=lambda i: sweep_order[i])
        points = [
            design_point_from_payload(results[index])
            for index in ordered if index in results
        ]
        complete = len(results) == len(specs) and not errors
        body: Dict[str, Any] = {
            "status": "ok" if complete else "partial",
            "total_points": len(specs),
            "completed": len(results),
            "restored": restored,
            "rows": sweep_summary_rows(points),
            "workers": dict(sorted(workers_used.items())),
            "redispatches": self._counters()["redispatches"],
            "checkpoint": plan.checkpoint_path,
        }
        if not complete:
            body["pending_labels"] = sorted(
                specs[index].label for index in range(len(specs))
                if index not in results and index not in errors
            )
            body["errors"] = {
                specs[index].label: message
                for index, message in sorted(errors.items())
            }
        return 200, body

    @staticmethod
    def _sweep_assignments() -> List[Dict[str, int]]:
        from repro.systems import tcpip

        return priority_permutations(list(tcpip.BUS_MASTERS))

    @staticmethod
    def _parse_sweep(params: Dict[str, Any]) -> _SweepPlan:
        if not isinstance(params, dict):
            raise BadRequest("sweep body must be a JSON object")
        dma = params.get("dma", [2, 8, 32, 128])
        if (not isinstance(dma, list) or not dma
                or not all(isinstance(v, int) and not isinstance(v, bool)
                           and v > 0 for v in dma)):
            raise BadRequest("'dma' must be a non-empty list of positive "
                             "integers")
        packets = params.get("packets", 3)
        if isinstance(packets, bool) or not isinstance(packets, int) \
                or packets < 1:
            raise BadRequest("'packets' must be a positive integer")
        period_ns = params.get("period_ns", 30_000.0)
        if isinstance(period_ns, bool) \
                or not isinstance(period_ns, (int, float)) or period_ns <= 0:
            raise BadRequest("'period_ns' must be a positive number")
        strategy = params.get("strategy", "caching")
        if strategy not in _SWEEP_STRATEGIES:
            raise BadRequest("unknown strategy %r (choose from %s)"
                             % (strategy, ", ".join(_SWEEP_STRATEGIES)))
        warm_start = params.get("warm_start", False)
        if not isinstance(warm_start, bool):
            raise BadRequest("'warm_start' must be a boolean")
        checkpoint = params.get("checkpoint")
        if checkpoint is not None and not isinstance(checkpoint, str):
            raise BadRequest("'checkpoint' must be a path string")
        resume = params.get("resume", False)
        if not isinstance(resume, bool):
            raise BadRequest("'resume' must be a boolean")
        if resume and checkpoint is None:
            raise BadRequest("'resume' needs a 'checkpoint' path")
        return _SweepPlan(
            dma_sizes=list(dma),
            num_packets=packets,
            packet_period_ns=float(period_ns),
            strategy=strategy,
            warm_start=warm_start,
            checkpoint_path=checkpoint,
            resume=resume,
        )

    # -- warm-cache tier -------------------------------------------------

    def cache_get(self, key: str) -> Tuple[int, Dict[str, Any]]:
        with self._cache_lock:
            slot = self._cache_tier.get(key)
            state = dict(slot["state"]) if slot is not None else None
        return 200, {"status": "ok", "key": key, "state": state}

    def cache_put(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        key = body.get("key")
        state = body.get("state")
        worker = str(body.get("worker") or "")
        if not isinstance(key, str) or not key:
            return 400, {"status": "error", "reason": "'key' is required"}
        if (not isinstance(state, dict)
                or not isinstance(state.get("cache"), dict)
                or not isinstance(state.get("fingerprints"), dict)):
            return 400, {"status": "error",
                         "reason": "malformed cache state"}
        entries = len(state["cache"].get("entries") or [])
        with self._cache_lock:
            slot = self._cache_tier.get(key)
            # Newer fingerprints win wholesale (the design changed);
            # same fingerprints keep whichever snapshot converged
            # further.  Never merged: the §4.2 statistics are means.
            adopt = (
                slot is None
                or slot["state"]["fingerprints"] != state["fingerprints"]
                or entries >= slot["entries"]
            )
            if adopt:
                self._cache_tier[key] = {
                    "state": state,
                    "entries": entries,
                    "worker": worker,
                    "updates": (slot["updates"] + 1 if slot else 1),
                }
        return 200, {"status": "ok", "adopted": adopt, "entries": entries}

    # -- views -----------------------------------------------------------

    def readyz_snapshot(self) -> Tuple[int, Dict[str, Any]]:
        """The /readyz document: per-worker membership + routability."""
        self.refresh_membership()
        workers = self.membership.snapshot()
        routable = self.membership.routable()
        states: Dict[str, List[str]] = {}
        for worker_id, state in sorted(self.membership.states().items()):
            states.setdefault(state, []).append(worker_id)
        body = {
            "workers": workers,
            "routable": routable,
            "states": states,
        }
        if self.drain_controller.draining:
            return 503, dict(body, status="draining")
        if not routable:
            return 503, dict(body, status="no_workers")
        return 200, dict(body, status="ready")

    def _counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "completed": self._completed,
                "failed": self._failed,
                "coalesced": self._coalesced,
                "redispatches": self._redispatches,
                "quarantines": self._quarantines,
                "sweeps": self._sweeps,
                "sweep_points_completed": self._sweep_points,
            }

    def stats_snapshot(self) -> Dict[str, Any]:
        self.publish_cluster_metrics()
        counts: Dict[str, int] = {state: 0 for state in _ALL_STATES}
        for state in self.membership.states().values():
            counts[state] = counts.get(state, 0) + 1
        with self._cache_lock:
            cache_tier = {
                key: {"entries": slot["entries"],
                      "worker": slot["worker"],
                      "updates": slot["updates"]}
                for key, slot in sorted(self._cache_tier.items())
            }
        return {
            "cluster": dict(
                self._counters(),
                state=("draining" if self.drain_controller.draining
                       else "ready"),
                workers_by_state=counts,
            ),
            "workers": self.membership.snapshot(),
            "dedup": self.dedup.snapshot(),
            "cache_tier": cache_tier,
            "metrics": self.telemetry.metrics.snapshot(),
        }

    def publish_cluster_metrics(self) -> None:
        """Refresh the cluster gauge families from membership."""
        metrics = self.obs.metrics
        counts: Dict[str, int] = {state: 0 for state in _ALL_STATES}
        for state in self.membership.states().values():
            counts[state] = counts.get(state, 0) + 1
        for state, count in counts.items():
            metrics.gauge(
                labeled(METRIC_CLUSTER_WORKERS, state=state)
            ).set(count)
        for worker_id, age in sorted(
                self.membership.heartbeat_ages().items()):
            metrics.gauge(
                labeled(METRIC_CLUSTER_HEARTBEAT_AGE, worker=worker_id)
            ).set(round(age, 3))
        for worker_id, info in sorted(self.membership.snapshot().items()):
            metrics.gauge(
                labeled(METRIC_CLUSTER_WORKER_QUEUE_DEPTH, worker=worker_id)
            ).set(float(info["queue_depth"]))

    def metrics_exposition(self) -> str:
        self.publish_cluster_metrics()
        return self.obs.render_metrics()


class _Rejected(Exception):
    """Internal: a submission was refused before dispatch."""

    def __init__(self, message: str, status: int, reason: str) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class _CoordinatorHandler(JsonRequestHandler):
    WAIT_GRACE_S = 5.0

    KNOWN_PATHS = (
        "/estimate", "/sweep", "/healthz", "/readyz", "/stats", "/metrics",
        "/cluster/register", "/cluster/heartbeat", "/cluster/cache",
        "/cluster/decommission",
    )

    @property
    def coordinator(self) -> ClusterCoordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    def record_http(self, label: str, status: int) -> None:
        self.coordinator.obs.record_http(label, status)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self.respond_json(200, {
                "status": "alive",
                "role": "coordinator",
                "draining": self.coordinator.drain_controller.draining,
            })
        elif self.path == "/readyz":
            status, body = self.coordinator.readyz_snapshot()
            self.respond_json(status, body)
        elif self.path == "/stats":
            self.respond_json(200, self.coordinator.stats_snapshot())
        elif self.path == "/metrics":
            self.respond_text(200, self.coordinator.metrics_exposition())
        elif self.path.startswith("/cluster/cache"):
            key = ""
            if "?" in self.path:
                from urllib.parse import parse_qs, urlsplit

                query = parse_qs(urlsplit(self.path).query)
                key = (query.get("key") or [""])[0]
            if not key:
                self.respond_json(400, {"status": "error",
                                        "reason": "'key' is required"})
                return
            status, body = self.coordinator.cache_get(key)
            self.respond_json(status, body)
        else:
            self.respond_json(404, {"status": "error",
                                    "reason": "unknown path %s" % self.path})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        body = self.read_json_body()
        if body is None:
            return
        if self.path == "/estimate":
            self._post_estimate(body)
        elif self.path == "/sweep":
            status, reply = self.coordinator.run_sweep(body)
            self.respond_json(status, reply)
        elif self.path == "/cluster/register":
            status, reply = self.coordinator.register_worker(
                str(body.get("worker_id") or ""), str(body.get("url") or "")
            )
            self.respond_json(status, reply)
        elif self.path == "/cluster/heartbeat":
            status, reply = self.coordinator.heartbeat(body)
            self.respond_json(status, reply)
        elif self.path == "/cluster/cache":
            status, reply = self.coordinator.cache_put(body)
            self.respond_json(status, reply)
        elif self.path == "/cluster/decommission":
            status, reply = self.coordinator.decommission_worker(
                str(body.get("worker") or ""),
                str(body.get("reason", "requested")),
            )
            self.respond_json(status, reply)
        else:
            self.respond_json(404, {"status": "error",
                                    "reason": "unknown path %s" % self.path})

    def _post_estimate(self, body: Dict[str, Any]) -> None:
        try:
            request = parse_request(
                body,
                known_systems=system_names(),
                default_deadline_s=(
                    self.coordinator.config.default_deadline_s
                ),
            )
        except BadRequest as exc:
            self.respond_json(400, {"status": "error", "reason": str(exc)})
            return
        try:
            pending, coalesced = self.coordinator.submit(request)
        except _Rejected as exc:
            self.respond_json(exc.status, {
                "status": "rejected",
                "reason": exc.reason,
                "request_id": request.request_id,
            })
            return
        if not pending.wait(request.deadline_s + self.WAIT_GRACE_S):
            self.respond_json(504, {
                "status": "error",
                "reason": "deadline_exceeded",
                "request_id": request.request_id,
            })
            return
        reply = dict(pending.body)
        if coalesced:
            reply["coalesced"] = True
        self.respond_json(pending.status, reply, pending.headers)


def run_coordinator(
    host: str,
    port: int,
    config: Optional[ClusterConfig] = None,
    install_signals: bool = True,
    quiet: bool = False,
    ready_callback=None,
) -> int:
    """The body of ``repro cluster`` (coordinator half).

    Serves HTTP, advances the membership state machine on the refresh
    interval, and blocks until SIGTERM/SIGINT (or a programmatic drain)
    — then exits 0.
    """
    coordinator = ClusterCoordinator(config)
    httpd = QuietHTTPServer((host, port), _CoordinatorHandler)
    httpd.coordinator = coordinator  # type: ignore[attr-defined]
    restore = None
    if install_signals:
        restore = install_drain_signals(coordinator.drain_controller)

    def refresher() -> None:
        interval = coordinator.config.refresh_interval_s
        while not coordinator.drain_controller.wait(interval):
            coordinator.refresh_membership()
            coordinator.publish_cluster_metrics()

    refresh_thread = threading.Thread(
        target=refresher, name="cluster-refresh", daemon=True
    )
    refresh_thread.start()
    serve_thread = threading.Thread(
        target=httpd.serve_forever, name="cluster-http", daemon=True
    )
    serve_thread.start()
    if not quiet:
        print("cluster coordinator listening on http://%s:%d "
              "(heartbeat=%.1fs suspect=%.1fs dead=%.1fs limp=%.1fx) — "
              "SIGTERM drains gracefully"
              % (host, httpd.server_address[1],
                 coordinator.config.heartbeat_interval_s,
                 coordinator.config.membership.suspect_after_s,
                 coordinator.config.membership.dead_after_s,
                 coordinator.config.membership.limp_factor), flush=True)
    if ready_callback is not None:
        ready_callback(coordinator, httpd)
    try:
        while not coordinator.drain_controller.wait(0.2):
            pass
    finally:
        httpd.shutdown()
        httpd.server_close()
        if restore is not None:
            restore()
        if not quiet:
            counters = coordinator._counters()
            print("coordinator drain (%s): %d estimate(s), %d sweep "
                  "point(s), %d redispatch(es)"
                  % (coordinator.drain_controller.reason or "requested",
                     counters["completed"],
                     counters["sweep_points_completed"],
                     counters["redispatches"]), flush=True)
    return 0


def run_cluster(
    host: str,
    port: int,
    workers: int,
    config: Optional[ClusterConfig] = None,
    worker_slots: int = 1,
    quiet: bool = False,
    install_signals: bool = True,
) -> int:
    """The body of ``repro cluster``: coordinator + N worker processes.

    Workers are separate OS processes running ``python -m repro worker``
    pointed at the coordinator; they register themselves, so the
    coordinator needs no foreknowledge of them.  On drain the workers
    get SIGTERM (their own graceful path) and are killed only if they
    ignore it.
    """
    import os
    import signal
    import subprocess
    import sys

    if workers < 1:
        raise ValueError("workers must be >= 1")
    processes: List[subprocess.Popen] = []

    def spawn_workers(coordinator, httpd) -> None:
        url = "http://%s:%d" % (host, httpd.server_address[1])
        for index in range(workers):
            command = [
                sys.executable, "-m", "repro", "worker",
                "--coordinator", url,
                "--worker-id", "worker-%d" % index,
                "--slots", str(worker_slots),
            ]
            processes.append(subprocess.Popen(
                command, env=dict(os.environ)
            ))
        if not quiet:
            print("spawned %d worker process(es) against %s"
                  % (workers, url), flush=True)

    try:
        return run_coordinator(
            host, port, config=config, install_signals=install_signals,
            quiet=quiet, ready_callback=spawn_workers,
        )
    finally:
        for process in processes:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        deadline = time.time() + 5.0
        for process in processes:
            remaining = max(0.1, deadline - time.time())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

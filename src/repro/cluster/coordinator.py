"""The cluster coordinator (``repro cluster``).

The coordinator fronts the same JSON/HTTP estimate protocol the
single-node service speaks, but instead of running jobs on local
threads it routes them to registered worker nodes:

* **consistent-hash sharding** — estimates route by their structural
  :func:`~repro.service.api.request_fingerprint`, sweep points by job
  label, so identical requests land on the same worker (cluster-wide
  in-flight coalescing stays effective) and each worker's
  process-local §4.2 caches stay hot for its shard;
* **failure detection and re-dispatch** — HDFS-style heartbeats drive
  the membership state machine (live/suspect/dead); a transport-level
  failure mid-job marks the worker dead and re-dispatches the job to
  the next worker on the ring.  Per-job seeds are deterministic
  (:func:`~repro.parallel.jobs.job_seed`), so a re-dispatched job
  reproduces the original result byte for byte.  HTTP-level errors are
  *never* re-dispatched — the job ran; its answer stands;
* **limplock quarantine** — a worker that stays alive but runs far
  slower than its peers (observed-latency EWMA above the peer median
  by the limp factor) is quarantined out of routing, so one limping
  node cannot drag cluster latency to its speed;
* **shard handoff** — sweeps flush a
  :class:`~repro.resilience.checkpoint.CheckpointWriter` per point
  under the *same signature* ``repro explore`` uses, so a partially
  drained shard resumes on any other worker — or on a single node —
  with byte-identical merged output;
* **the shared warm-cache tier** — workers push/pull §4.2 warm-start
  snapshots through the coordinator (fingerprint-guarded, wholesale
  adoption), transferring cache convergence across nodes;
* **high availability** — with a ``control_dir`` configured, every
  control-plane transition (membership, cache adoptions, sweeps in
  flight) is appended to a durable journal
  (:mod:`repro.cluster.journal`), leadership is held through a
  TTL lease (:mod:`repro.cluster.ha`), standby coordinators tail the
  leader's journal over HTTP and take over on lease expiry by
  replaying it, and every dispatch/heartbeat is **epoch-fenced** so a
  deposed leader is answered ``409 stale-epoch`` instead of splitting
  the brain.  See docs/cluster-ha.md.

The coordinator core is HTTP-agnostic with an injectable transport and
clock, so the failure machinery is unit-testable without sockets.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import Observability, labeled
from repro.obs.context import RequestContext, use_context
from repro.obs.logging import JsonLogger, NULL_LOGGER
from repro.obs.names import (
    EVENT_COALESCED,
    EVENT_JOB_REDISPATCHED,
    EVENT_JOURNAL_REPLAYED,
    EVENT_LEADER_DEPOSED,
    EVENT_LEADER_ELECTED,
    EVENT_LEADER_RESIGNED,
    EVENT_SHARD_HANDOFF,
    EVENT_STALE_EPOCH,
    EVENT_SWEEP_RECOVERED,
    EVENT_SWEEP_STEP,
    EVENT_WORKER_QUARANTINED,
    EVENT_WORKER_REGISTERED,
    EVENT_WORKER_STATE,
    METRIC_CLUSTER_EPOCH,
    METRIC_CLUSTER_FAILOVERS,
    METRIC_CLUSTER_HEARTBEAT_AGE,
    METRIC_CLUSTER_JOURNAL_ENTRIES,
    METRIC_CLUSTER_LEASE_REMAINING,
    METRIC_CLUSTER_QUARANTINES,
    METRIC_CLUSTER_REDISPATCHES,
    METRIC_CLUSTER_REPLAY_SECONDS,
    METRIC_CLUSTER_STALE_EPOCH,
    METRIC_CLUSTER_WORKER_QUEUE_DEPTH,
    METRIC_CLUSTER_WORKERS,
)
from repro.cluster.ha import Lease, LeaseFile
from repro.cluster.journal import (
    KIND_CACHE_ADOPTED,
    KIND_LEADER_ELECTED,
    KIND_LEADER_RESIGNED,
    KIND_SWEEP_COMPLETED,
    KIND_SWEEP_STARTED,
    KIND_WORKER_REGISTERED,
    KIND_WORKER_STATE,
    ControlPlaneJournal,
    ControlPlaneState,
    JournalError,
    entries_to_wire,
)
from repro.errors import ReproError
from repro.cluster.hashring import HashRing
from repro.cluster.membership import (
    DEAD,
    DECOMMISSIONED,
    LIMPLOCKED,
    LIVE,
    SUSPECT,
    MembershipConfig,
    MembershipTable,
)
from repro.cluster.protocol import (
    JOB_KIND_ESTIMATE,
    JOB_KIND_SPEC,
    REASON_NOT_LEADER,
    REASON_STALE_EPOCH,
    STATUS_STALE_EPOCH,
    TransportError,
    get_json,
    post_json,
)
from repro.core.explorer import (
    design_point_from_payload,
    priority_label,
    priority_permutations,
    sweep_summary_rows,
)
from repro.parallel.jobs import JobSpec, job_seed, spec_to_wire
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
    resilience_signature,
    sweep_signature,
)
from repro.resilience.supervisor import retry_backoff_s
from repro.service.api import (
    BadRequest,
    EstimateRequest,
    parse_request,
    request_fingerprint,
)
from repro.service.dedup import InflightTable
from repro.service.httpbase import JsonRequestHandler, QuietHTTPServer
from repro.service.lifecycle import DrainController, install_drain_signals
from repro.service.server import PendingResult
from repro.systems import build_bundle, system_names
from repro.telemetry import Telemetry

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ROLE_LEADER",
    "ROLE_STANDBY",
    "ROLE_FENCED",
    "run_coordinator",
    "run_cluster",
]

_ALL_STATES = (LIVE, SUSPECT, DEAD, LIMPLOCKED, DECOMMISSIONED)
_SWEEP_STRATEGIES = ("full", "caching", "macromodel", "sampling")

#: The fig.7 sweep's builder — the same one ``repro explore`` names.
_SWEEP_BUILDER = "repro.systems.tcpip:build_system"

#: Coordinator roles under HA.  Without a ``control_dir`` the single
#: coordinator is permanently ``leader``; a ``fenced`` coordinator has
#: seen proof of a newer epoch and refuses the data plane until it
#: re-syncs and (maybe) wins a later election.
ROLE_LEADER = "leader"
ROLE_STANDBY = "standby"
ROLE_FENCED = "fenced"


@dataclass
class ClusterConfig:
    """Tuning knobs of one coordinator (see docs/cluster.md)."""

    #: Membership thresholds (suspect/dead ages, limplock factor).
    membership: MembershipConfig = field(default_factory=MembershipConfig)
    #: Interval the refresher thread advances the membership state
    #: machine and republishes the cluster gauges at.
    refresh_interval_s: float = 0.5
    #: Heartbeat interval workers are told to use at registration.
    heartbeat_interval_s: float = 1.0
    #: How many times one job may be re-dispatched to another worker
    #: after transport failures before answering 502.
    redispatch_budget: int = 2
    #: Deterministic backoff between re-dispatch attempts.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    #: Socket budget for one dispatched sweep point.
    request_timeout_s: float = 120.0
    default_deadline_s: float = 30.0
    ring_replicas: int = 64
    log_json: bool = False
    #: High availability (docs/cluster-ha.md).  Setting ``control_dir``
    #: turns it on: the journal and the leadership lease live under it,
    #: and the HA loop runs.  ``None`` keeps the exact single-
    #: coordinator behaviour (always leader, epoch 1, no extra I/O).
    coordinator_id: str = ""
    control_dir: Optional[str] = None
    #: Start as a standby: tail the leader's journal and only contest
    #: the lease once it expires or is released.
    standby: bool = False
    #: Coordinator peer URLs handed to workers/clients for failover.
    peers: List[str] = field(default_factory=list)
    lease_ttl_s: float = 3.0
    lease_renew_s: float = 1.0
    journal_tail_interval_s: float = 0.25
    journal_segment_entries: int = 256
    #: Grace before a new leader re-runs orphaned sweeps on its own —
    #: gives the original client time to resubmit with ``resume``.
    orphan_grace_s: float = 5.0
    recover_orphan_sweeps: bool = True
    #: Flight-recorder dumps land here on takeover/deposition.
    flight_dump_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.refresh_interval_s <= 0:
            raise ValueError("refresh_interval_s must be positive")
        if self.redispatch_budget < 0:
            raise ValueError("redispatch_budget must be non-negative")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")
        if not self.coordinator_id:
            self.coordinator_id = "coord-%d" % os.getpid()
        if self.lease_ttl_s <= 0:
            raise ValueError("lease_ttl_s must be positive")
        if self.lease_renew_s <= 0 or self.lease_renew_s >= self.lease_ttl_s:
            raise ValueError(
                "lease_renew_s must sit inside (0, lease_ttl_s)")
        if self.journal_tail_interval_s <= 0:
            raise ValueError("journal_tail_interval_s must be positive")
        if self.standby and self.control_dir is None:
            raise ValueError("a standby coordinator needs a control_dir")


@dataclass
class _SweepPlan:
    """Validated parameters of one ``POST /sweep``."""

    dma_sizes: List[int]
    num_packets: int
    packet_period_ns: float
    strategy: str
    warm_start: bool
    checkpoint_path: Optional[str]
    resume: bool


@dataclass
class _EstimateEntry:
    """One estimate riding through coalescing and dispatch."""

    request: EstimateRequest
    fingerprint: str
    pending: PendingResult
    submitted_at: float
    context: Optional[RequestContext] = None


class ClusterCoordinator:
    """Membership + routing + re-dispatch + shard handoff, HTTP-agnostic.

    ``transport(url, path, body, timeout_s) -> (status, body)`` is
    injectable (tests drive the failure machinery with fakes); the
    default is the stdlib JSON client, which raises
    :class:`~repro.cluster.protocol.TransportError` on socket failures.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Callable[[], float] = time.monotonic,
        transport=None,
        logger: Optional[JsonLogger] = None,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        self.config = config or ClusterConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.clock = clock
        self.transport = transport if transport is not None else post_json
        if logger is None:
            logger = (JsonLogger(component="coordinator")
                      if self.config.log_json else NULL_LOGGER)
        self.obs = Observability(
            metrics=self.telemetry.metrics, logger=logger
        )
        self.membership = MembershipTable(
            self.config.membership, clock=clock,
            on_transition=self._on_transition,
        )
        self._ring_lock = threading.Lock()
        self.ring = HashRing(self.config.ring_replicas)
        self.dedup = InflightTable()
        self.drain_controller = DrainController()
        self._lock = threading.Lock()
        self._completed = 0
        self._failed = 0
        self._coalesced = 0
        self._redispatches = 0
        self._quarantines = 0
        self._sweeps = 0
        self._sweep_points = 0
        self._cache_lock = threading.Lock()
        self._cache_tier: Dict[str, Dict[str, Any]] = {}
        # -- high availability state (inert when control_dir is unset) --
        self.wall_clock = wall_clock
        self.url = ""
        self.journal: Optional[ControlPlaneJournal] = None
        self.lease: Optional[LeaseFile] = None
        self._ha_lock = threading.Lock()
        self._role = ROLE_LEADER
        self._epoch = 1
        self._failovers = 0
        self._stale_epochs = 0
        self._last_replay_s = 0.0
        self._restoring = False
        self._standby_since = 0.0
        self._active_sweeps: set = set()
        self._completed_sweeps: set = set()
        self._orphans: Dict[str, Dict[str, Any]] = {}
        if self.config.control_dir is not None:
            if self.config.flight_dump_dir:
                self.obs.flight_dump_dir = self.config.flight_dump_dir
            self.journal = ControlPlaneJournal(
                os.path.join(self.config.control_dir,
                             "journal-%s" % self.config.coordinator_id),
                segment_entries=self.config.journal_segment_entries,
            )
            self.lease = LeaseFile(
                self.config.control_dir, self.config.coordinator_id,
                ttl_s=self.config.lease_ttl_s, clock=wall_clock,
            )
            # Everybody starts as a standby; the HA loop (or a test
            # calling try_elect directly) promotes the lease winner.
            self._role = ROLE_STANDBY
            self._epoch = self.journal.tip_epoch()
            self._standby_since = wall_clock()
            self.drain_controller.add_hook(self._resign_on_drain)

    # -- high availability: roles and epochs -----------------------------

    @property
    def ha_enabled(self) -> bool:
        return self.journal is not None

    @property
    def role(self) -> str:
        return self._role

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def is_leader(self) -> bool:
        return self._role == ROLE_LEADER

    def set_url(self, url: str) -> None:
        """Record this coordinator's advertised URL (once bound)."""
        self.url = url
        if self.lease is not None:
            self.lease.url = url

    def leader_url_hint(self) -> str:
        """Best-effort URL of the current leader (for 503 answers)."""
        if self.is_leader:
            return self.url
        if self.lease is not None:
            lease = self.lease.read()
            if lease is not None and lease.holder and lease.url \
                    and not lease.expired(self.wall_clock()):
                return lease.url
        return ""

    def _not_leader_reply(self) -> Tuple[int, Dict[str, Any]]:
        return 503, {
            "status": "rejected",
            "reason": REASON_NOT_LEADER,
            "role": self._role,
            "epoch": self._epoch,
            "leader_url": self.leader_url_hint(),
        }

    def _journal_append(self, kind: str,
                        payload: Optional[Dict[str, Any]] = None) -> None:
        """Durably record one control-plane transition (leaders only).

        Standbys never append their own entries — their journal is a
        replica fed by :meth:`apply_replicated` — and replay-driven
        restores are suppressed so a takeover does not double the
        journal it just read.
        """
        if self.journal is None or self._restoring or not self.is_leader:
            return
        self.journal.append(kind, payload=payload, epoch=self._epoch)

    def _fence(self, observed_epoch: int, detail: str) -> None:
        """Stand down: proof of a newer epoch means we were deposed."""
        with self._ha_lock:
            if not self.ha_enabled or self._role == ROLE_FENCED:
                return
            was_leader = self.is_leader
            self._role = ROLE_FENCED
            with self._lock:
                self._stale_epochs += 1
        self.obs.metrics.counter(METRIC_CLUSTER_STALE_EPOCH).inc()
        self.obs.event(EVENT_STALE_EPOCH, observed_epoch=observed_epoch,
                       own_epoch=self._epoch, detail=detail)
        if was_leader:
            self.obs.event(EVENT_LEADER_DEPOSED,
                           coordinator=self.config.coordinator_id,
                           observed_epoch=observed_epoch, detail=detail)
            self.obs.dump_flight("deposed")

    # -- high availability: election and takeover ------------------------

    def try_elect(self) -> bool:
        """Contest the lease; on a win, replay the journal and lead."""
        if self.lease is None or self.journal is None or self.is_leader:
            return False
        acquired = self.lease.try_acquire(
            epoch_floor=self.journal.tip_epoch()
        )
        if acquired is None:
            return False
        self._become_leader(acquired)
        return True

    def _become_leader(self, lease: Lease) -> None:
        """Takeover: replay the journal, restore state, start leading.

        The restored membership/cache re-registrations are applied with
        journaling suppressed (the entries that taught us about them
        are already durable); only the ``leader-elected`` marker is
        appended, under the new epoch.
        """
        started = time.monotonic()
        state = self.journal.replay()
        self._restore_state(state)
        replay_s = time.monotonic() - started
        takeover = bool(state.previous_leaders(self.config.coordinator_id))
        with self._ha_lock:
            self._epoch = lease.epoch
            self._role = ROLE_LEADER
            self._last_replay_s = replay_s
            self._orphans = state.orphaned_sweeps()
            self._completed_sweeps.update(
                sweep_id for sweep_id, info in state.sweeps.items()
                if info["done"]
            )
            if takeover:
                with self._lock:
                    self._failovers += 1
        self._journal_append(KIND_LEADER_ELECTED, {
            "coordinator_id": self.config.coordinator_id,
            "url": self.url,
            "takeover": takeover,
            "replayed_entries": state.applied,
        })
        self.obs.event(
            EVENT_LEADER_ELECTED,
            coordinator=self.config.coordinator_id,
            epoch=self._epoch, takeover=takeover,
            replayed_entries=state.applied,
            orphaned_sweeps=sorted(self._orphans),
        )
        self.obs.event(EVENT_JOURNAL_REPLAYED, entries=state.applied,
                       seconds=round(replay_s, 6),
                       workers=len(state.workers),
                       cache_keys=len(state.cache_tier))
        if takeover:
            self.obs.metrics.counter(METRIC_CLUSTER_FAILOVERS).inc()
            self.obs.dump_flight("takeover")
        self._publish_ha_metrics()

    def _restore_state(self, state: ControlPlaneState) -> None:
        """Rebuild membership + warm-cache tier from a replayed fold."""
        self._restoring = True
        try:
            for worker_id, info in sorted(state.workers.items()):
                if not info["url"]:
                    continue
                self.membership.register(worker_id, info["url"])
                if info["state"] == DEAD:
                    self.membership.mark_dead(worker_id, "journal replay")
                elif info["state"] == DECOMMISSIONED:
                    self.membership.decommission(worker_id, "journal replay")
            with self._cache_lock:
                for key, slot in state.cache_tier.items():
                    self._cache_tier[key] = {
                        "state": dict(slot["state"]),
                        "entries": slot["entries"],
                        "worker": slot["worker"],
                        "updates": slot["updates"],
                    }
        finally:
            self._restoring = False

    # -- high availability: replication and recovery ---------------------

    def journal_entries_since(self, since: int) -> Tuple[int, Dict[str, Any]]:
        """``GET /cluster/journal?since=N`` — the standby tail feed."""
        if self.journal is None:
            return 404, {"status": "error", "reason": "ha_disabled"}
        entries = self.journal.entries_since(since)
        return 200, {
            "status": "ok",
            "entries": entries_to_wire(entries),
            "tip": self.journal.tip_seq(),
            "epoch": self._epoch,
            "role": self._role,
            "leader": (self.config.coordinator_id if self.is_leader else ""),
        }

    def apply_replicated(self, documents: List[Dict[str, Any]]) -> int:
        """Fold tailed wire entries into the local replica journal."""
        if self.journal is None:
            return 0
        appended = 0
        for document in documents:
            if self.journal.append_replicated(document):
                appended += 1
        return appended

    def _tail_leader(self, lease: Lease) -> None:
        """One standby tail step against the current leader."""
        if self.journal is None or not lease.url or lease.url == self.url:
            return
        try:
            status, body = get_json(
                lease.url,
                "/cluster/journal?since=%d" % self.journal.tip_seq(),
                timeout_s=self.config.request_timeout_s,
            )
        except ReproError:  # transport/protocol: the leader is flapping
            return
        if status != 200:
            return
        entries = body.get("entries")
        if isinstance(entries, list):
            try:
                self.apply_replicated(entries)
            except JournalError as exc:
                self.obs.event(EVENT_JOURNAL_REPLAYED, error=str(exc),
                               entries=0)

    def recover_orphaned_sweeps(
        self, grace_s: Optional[float] = None
    ) -> List[Tuple[str, int, Dict[str, Any]]]:
        """Re-dispatch sweeps orphaned by the previous leader's death.

        Waits ``grace_s`` first so a failover client that resubmits its
        own sweep (with ``resume``) wins the race; anything it resumed
        lands in ``_completed_sweeps``/``_active_sweeps`` and is
        skipped here.  Re-runs use the *same* sweep id, signature, and
        deterministic per-job seeds, so the merged rows are
        byte-identical to an uninterrupted run.
        """
        if grace_s is None:
            grace_s = self.config.orphan_grace_s
        if grace_s > 0 and self.drain_controller.wait(grace_s):
            return []
        results: List[Tuple[str, int, Dict[str, Any]]] = []
        with self._ha_lock:
            orphans = sorted(self._orphans.items())
        for sweep_id, info in orphans:
            if not self.is_leader or self.drain_controller.draining:
                break
            with self._ha_lock:
                if sweep_id in self._completed_sweeps \
                        or sweep_id in self._active_sweeps:
                    continue
            params = dict(info["params"])
            checkpoint = params.get("checkpoint")
            params["resume"] = bool(
                isinstance(checkpoint, str) and os.path.exists(checkpoint)
            )
            status, body = self.run_sweep(params)
            self.obs.event(EVENT_SWEEP_RECOVERED, sweep=sweep_id,
                           http_status=status,
                           status=str(body.get("status") or ""),
                           resumed=params["resume"])
            results.append((sweep_id, status, body))
        return results

    # -- high availability: the background loop --------------------------

    def ha_loop(self) -> None:
        """Renew-or-elect until drain; the body of the HA thread.

        Leaders renew the lease every ``lease_renew_s`` and fence
        themselves if it is lost.  Standbys tail the leader's journal,
        and contest the lease the moment it is free — except a
        configured ``--standby`` defers for one TTL after boot so the
        intended active coordinator claims first on a cold start.
        """
        if not self.ha_enabled:
            return
        while not self.drain_controller.draining:
            if self.is_leader:
                lease = self.lease.renew()
                if lease is None:
                    current = self.lease.read()
                    self._fence(
                        current.epoch if current is not None else self._epoch,
                        "leadership lease lost",
                    )
                else:
                    self._publish_ha_metrics()
                if self.drain_controller.wait(self.config.lease_renew_s):
                    return
            else:
                self._standby_step()
                if self.drain_controller.wait(
                        self.config.journal_tail_interval_s):
                    return

    def _standby_step(self) -> None:
        """One standby iteration: shadow the leader or try to succeed."""
        lease = self.lease.read()
        now = self.wall_clock()
        if lease is not None and lease.holder \
                and lease.holder != self.config.coordinator_id \
                and not lease.expired(now):
            self._tail_leader(lease)
            return
        if self.config.standby and lease is None \
                and now - self._standby_since < self.config.lease_ttl_s:
            return  # cold start: let the configured active claim first
        if self.try_elect() and self.config.recover_orphan_sweeps \
                and self._orphans:
            threading.Thread(
                target=self.recover_orphaned_sweeps,
                name="cluster-orphan-recovery", daemon=True,
            ).start()

    def _resign_on_drain(self, reason: str) -> None:
        """Drain hook: hand the journal tip and the lease to a successor."""
        if not self.ha_enabled or not self.is_leader:
            return
        self._journal_append(KIND_LEADER_RESIGNED, {
            "coordinator_id": self.config.coordinator_id,
            "tip_seq": self.journal.tip_seq(),
            "reason": reason,
        })
        self.lease.release()
        self.obs.event(EVENT_LEADER_RESIGNED,
                       coordinator=self.config.coordinator_id,
                       epoch=self._epoch, reason=reason)

    def _publish_ha_metrics(self) -> None:
        if not self.ha_enabled:
            return
        metrics = self.obs.metrics
        metrics.gauge(METRIC_CLUSTER_EPOCH).set(float(self._epoch))
        remaining = (self.lease.remaining_s() or 0.0) if self.is_leader \
            else 0.0
        metrics.gauge(METRIC_CLUSTER_LEASE_REMAINING).set(
            round(remaining, 3))
        metrics.gauge(METRIC_CLUSTER_JOURNAL_ENTRIES).set(
            float(len(self.journal)))
        metrics.gauge(METRIC_CLUSTER_REPLAY_SECONDS).set(
            round(self._last_replay_s, 6))

    def ha_snapshot(self) -> Dict[str, Any]:
        """The ``ha`` section of /stats, /readyz, and the smoke checks."""
        if not self.ha_enabled:
            return {"enabled": False}
        with self._lock:
            failovers = self._failovers
            stale = self._stale_epochs
        return {
            "enabled": True,
            "role": self._role,
            "coordinator_id": self.config.coordinator_id,
            "epoch": self._epoch,
            "leader": (self.config.coordinator_id if self.is_leader
                       else ""),
            "leader_url": self.leader_url_hint(),
            "lease_remaining_s": round(
                self.lease.remaining_s() or 0.0, 3),
            "journal_tip": self.journal.tip_seq(),
            "journal_entries": len(self.journal),
            "failovers": failovers,
            "stale_epoch_rejections": stale,
            "last_replay_s": round(self._last_replay_s, 6),
            "orphaned_sweeps": sorted(self._orphans),
        }

    # -- membership plumbing ---------------------------------------------

    def _on_transition(self, worker_id: str, old: str, new: str,
                       reason: str) -> None:
        with self._ring_lock:
            if new == LIVE:
                self.ring.add(worker_id)
            else:
                self.ring.remove(worker_id)
        if not old:
            self.obs.event(EVENT_WORKER_REGISTERED, worker=worker_id)
        elif new == LIMPLOCKED:
            with self._lock:
                self._quarantines += 1
            self.obs.metrics.counter(METRIC_CLUSTER_QUARANTINES).inc()
            self.obs.event(EVENT_WORKER_QUARANTINED, worker=worker_id,
                           reason=reason)
        else:
            self.obs.event(EVENT_WORKER_STATE, worker=worker_id,
                           old=old, new=new, reason=reason)
        # Durable transitions only: registrations (with the URL a
        # successor needs to route again) and terminal states.  Suspect
        # flaps are transient and stay out of the journal.
        if new == LIVE:
            self._journal_append(KIND_WORKER_REGISTERED, {
                "worker_id": worker_id,
                "url": self.membership.url_of(worker_id) or "",
            })
        elif new in (DEAD, DECOMMISSIONED, LIMPLOCKED):
            self._journal_append(KIND_WORKER_STATE, {
                "worker_id": worker_id, "state": new, "reason": reason,
            })

    def register_worker(self, worker_id: str,
                        url: str) -> Tuple[int, Dict[str, Any]]:
        if not worker_id or not url:
            return 400, {"status": "error",
                         "reason": "worker_id and url are required"}
        if self.ha_enabled and not self.is_leader:
            return self._not_leader_reply()
        self.membership.register(worker_id, url)
        return 200, {
            "status": "ok",
            "worker_id": worker_id,
            "heartbeat_interval_s": self.config.heartbeat_interval_s,
            "epoch": self._epoch,
            "leader": self.config.coordinator_id,
            "peers": list(self.config.peers),
        }

    def heartbeat(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        worker_id = str(body.get("worker_id") or "")
        if self.ha_enabled:
            if not self.is_leader:
                return self._not_leader_reply()
            worker_epoch = int(body.get("epoch") or 0)
            if worker_epoch > self._epoch:
                # The worker has obeyed a newer leader: we were deposed
                # while our lease file said otherwise (e.g. clock skew).
                self._fence(worker_epoch,
                            "heartbeat from %s carried epoch %d"
                            % (worker_id, worker_epoch))
                return STATUS_STALE_EPOCH, {
                    "status": "error",
                    "reason": REASON_STALE_EPOCH,
                    "epoch": worker_epoch,
                }
        known = self.membership.heartbeat(
            worker_id,
            queue_depth=int(body.get("queue_depth") or 0),
            in_flight=int(body.get("in_flight") or 0),
            completed=int(body.get("completed") or 0),
            reported_run_s=float(body.get("mean_run_s") or 0.0),
        )
        return 200, {
            "status": "ok" if known else "unknown",
            "epoch": self._epoch,
            "leader": self.config.coordinator_id,
            "leader_url": self.url,
        }

    def refresh_membership(self) -> None:
        """Advance liveness/limplock; transitions fan out via the hook."""
        self.membership.refresh()

    def decommission_worker(
        self, worker_id: str, reason: str = "requested"
    ) -> Tuple[int, Dict[str, Any]]:
        """Planned removal: unroutable now; its in-progress shard is
        re-queued by the sweep engine (checkpoint-backed handoff)."""
        url = self.membership.url_of(worker_id)
        if not self.membership.decommission(worker_id, reason):
            return 404, {"status": "error",
                         "reason": "unknown worker %r" % worker_id}
        if url is not None:
            try:
                self.transport(url, "/decommission", {"reason": reason}, 5.0)
            except TransportError:
                pass  # it will be declared dead by heartbeat age instead
        return 200, {"status": "ok", "worker_id": worker_id,
                     "state": DECOMMISSIONED}

    # -- ring access (transitions mutate it from several threads) --------

    def _ring_preference(self, key: str) -> List[str]:
        with self._ring_lock:
            return self.ring.preference(key)

    def _ring_node_for(self, key: str) -> Optional[str]:
        with self._ring_lock:
            return self.ring.node_for(key)

    # -- estimates -------------------------------------------------------

    def submit(self, request: EstimateRequest) -> Tuple[PendingResult, bool]:
        """Route one estimate; returns ``(pending, coalesced)``.

        The primary dispatches synchronously in the calling thread and
        resolves the shared :class:`PendingResult`; identical in-flight
        requests (same fingerprint) coalesce onto it without another
        dispatch — and because the ring routes by the same fingerprint,
        replicas of this coordinator behind one worker set would land
        the duplicates on the same worker too.
        """
        if self.drain_controller.draining:
            raise _Rejected("coordinator is draining", 503, "draining")
        if self.ha_enabled and not self.is_leader:
            raise _Rejected("this coordinator is %s, not the leader"
                            % self._role, 503, REASON_NOT_LEADER)
        bundle = build_bundle(request.system)
        fingerprint = request_fingerprint(bundle, request)
        context = RequestContext.new(request.request_id)
        entry = _EstimateEntry(
            request=request,
            fingerprint=fingerprint,
            pending=PendingResult(),
            submitted_at=self.clock(),
            context=context,
        )
        entry.pending.trace_id = context.trace_id
        primary = self.dedup.admit(fingerprint, entry)
        if primary is not entry:
            with self._lock:
                self._coalesced += 1
            with use_context(context):
                self.obs.event(
                    EVENT_COALESCED,
                    fingerprint=fingerprint,
                    primary_trace_id=(
                        primary.context.trace_id if primary.context else ""
                    ),
                )
            return primary.pending, True
        try:
            with use_context(context):
                self._dispatch_estimate(entry)
        finally:
            self.dedup.complete(fingerprint)
        return entry.pending, False

    def _dispatch_estimate(self, entry: _EstimateEntry) -> None:
        request = entry.request
        wire = {
            "kind": JOB_KIND_ESTIMATE,
            "request": request.to_payload(),
            "trace": (entry.context.to_payload()
                      if entry.context is not None else None),
            "epoch": self._epoch,
            "leader": self.config.coordinator_id,
        }
        timeout_s = request.deadline_s + 5.0
        redispatches = 0
        while True:
            target = None
            for candidate in self._ring_preference(entry.fingerprint):
                target = candidate
                break
            if target is None:
                self._resolve(entry, 503, {
                    "status": "rejected",
                    "reason": "no_workers",
                    "request_id": request.request_id,
                })
                return
            url = self.membership.url_of(target)
            if url is None:
                self.membership.mark_dead(target, "no url on record")
                continue
            started = self.clock()
            try:
                status, body = self.transport(url, "/run", wire, timeout_s)
            except TransportError as exc:
                # The worker vanished mid-job.  Safe to re-dispatch:
                # the job's seed is a pure function of its identity, so
                # a re-run on any worker is byte-identical.
                self.membership.mark_dead(
                    target, "estimate dispatch failed: %s" % exc
                )
                redispatches += 1
                self._note_redispatch(target, request.request_id, str(exc))
                if redispatches > self.config.redispatch_budget:
                    self._resolve(entry, 502, {
                        "status": "error",
                        "reason": "redispatch_budget_exhausted",
                        "request_id": request.request_id,
                        "detail": "%d dispatch attempt(s) failed"
                                  % redispatches,
                    })
                    return
                time.sleep(retry_backoff_s(
                    "estimate:%s" % entry.fingerprint, redispatches,
                    self.config.backoff_base_s, self.config.backoff_cap_s,
                ))
                continue
            self.membership.observe_run(target, self.clock() - started)
            if status == STATUS_STALE_EPOCH \
                    and body.get("reason") == REASON_STALE_EPOCH:
                # The worker obeys a newer leader: stand down, and send
                # the client to the peer list instead of a stale answer.
                self._fence(int(body.get("epoch") or 0),
                            "estimate dispatch fenced by %s" % target)
                self._resolve(entry, 503, {
                    "status": "rejected",
                    "reason": REASON_NOT_LEADER,
                    "request_id": request.request_id,
                    "leader_url": self.leader_url_hint(),
                })
                return
            if status == 503 and body.get("reason") == "draining":
                # The worker is decommissioning; its shard belongs to
                # its ring successor now.  Not a failure — no penalty
                # beyond the handoff.
                self.membership.decommission(target, "worker draining")
                redispatches += 1
                self.obs.event(EVENT_SHARD_HANDOFF, worker=target,
                               job=request.request_id, kind="estimate")
                if redispatches > self.config.redispatch_budget:
                    self._resolve(entry, 503, {
                        "status": "rejected",
                        "reason": "no_workers",
                        "request_id": request.request_id,
                    })
                    return
                continue
            # The job ran — success or worker-side error, the answer
            # stands; re-dispatching a completed computation would be a
            # duplicate, not a retry.
            out = dict(body)
            out["fingerprint"] = entry.fingerprint
            out["cluster"] = {
                "worker": target,
                "redispatches": redispatches,
            }
            with self._lock:
                if status == 200:
                    self._completed += 1
                else:
                    self._failed += 1
            self._resolve(entry, status, out)
            return

    def _resolve(self, entry: _EstimateEntry, status: int,
                 body: Dict[str, Any]) -> None:
        headers = {}
        if entry.context is not None:
            headers["X-Trace-Id"] = entry.context.trace_id
        entry.pending.resolve(status, body, headers)
        self.obs.record_outcome(status, self.clock() - entry.submitted_at)

    def _note_redispatch(self, worker_id: str, job: str,
                         detail: str) -> None:
        with self._lock:
            self._redispatches += 1
        self.membership.count_redispatch(worker_id)
        self.obs.metrics.counter(METRIC_CLUSTER_REDISPATCHES).inc()
        self.obs.event(EVENT_JOB_REDISPATCHED, worker=worker_id, job=job,
                       detail=detail)

    # -- sweeps ----------------------------------------------------------

    def run_sweep(self, params: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Run one fig.7 sweep sharded over the live workers.

        Jobs are enumerated exactly like
        :func:`~repro.core.explorer.parallel_sweep` (same labels, same
        deterministic seeds) and the checkpoint uses the same sweep
        signature, so a cluster checkpoint resumes on a single node —
        and vice versa — and the summary rows are byte-identical to
        ``repro explore --out`` regardless of worker deaths, re-dispatch
        order, or handoffs along the way.
        """
        try:
            plan = self._parse_sweep(params)
        except BadRequest as exc:
            return 400, {"status": "error", "reason": str(exc)}
        if self.ha_enabled and not self.is_leader:
            return self._not_leader_reply()
        sweep_id = self._sweep_id(plan)
        with self._ha_lock:
            self._active_sweeps.add(sweep_id)
        # Journal the sweep *before* dispatching: if this coordinator
        # dies mid-sweep, the entry (without a matching completion) is
        # exactly what tells the successor to re-dispatch it.
        self._journal_append(KIND_SWEEP_STARTED, {
            "sweep_id": sweep_id,
            "params": {
                "dma": list(plan.dma_sizes),
                "packets": plan.num_packets,
                "period_ns": plan.packet_period_ns,
                "strategy": plan.strategy,
                "warm_start": plan.warm_start,
                "checkpoint": plan.checkpoint_path,
            },
        })
        try:
            status, body = self._run_sweep(plan)
        finally:
            with self._ha_lock:
                self._active_sweeps.discard(sweep_id)
        body["sweep_id"] = sweep_id
        if status == 200 and body.get("status") == "ok":
            with self._ha_lock:
                self._completed_sweeps.add(sweep_id)
                self._orphans.pop(sweep_id, None)
            self._journal_append(KIND_SWEEP_COMPLETED, {
                "sweep_id": sweep_id,
                "points": int(body.get("completed") or 0),
            })
        return status, body

    @staticmethod
    def _sweep_id(plan: _SweepPlan) -> str:
        """Stable identity of one sweep (``resume`` excluded on purpose:
        resuming an interrupted sweep is the *same* sweep)."""
        identity = {
            "dma": list(plan.dma_sizes),
            "packets": plan.num_packets,
            "period_ns": plan.packet_period_ns,
            "strategy": plan.strategy,
            "warm_start": plan.warm_start,
            "checkpoint": plan.checkpoint_path,
        }
        canonical = json.dumps(identity, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    def _run_sweep(self, plan: _SweepPlan) -> Tuple[int, Dict[str, Any]]:
        with self._lock:
            self._sweeps += 1
        assignments = self._sweep_assignments()
        specs: List[JobSpec] = []
        sweep_order: List[Tuple[int, int]] = []
        warm_key = "%s/%s" % (_SWEEP_BUILDER, plan.strategy)
        builder_kwargs = {
            "num_packets": plan.num_packets,
            "packet_period_ns": plan.packet_period_ns,
        }
        for dma_index, dma in enumerate(plan.dma_sizes):
            for prio_index, priorities in enumerate(assignments):
                label = "dma=%d,%s" % (dma, priority_label(priorities))
                specs.append(JobSpec(
                    fn="repro.parallel.runners:run_explorer_point",
                    payload={
                        "builder": _SWEEP_BUILDER,
                        "strategy": plan.strategy,
                        "builder_kwargs": dict(builder_kwargs),
                        "warm_start": plan.warm_start,
                        "warm_key": warm_key,
                        "dma_block_words": dma,
                        "priorities": dict(priorities),
                    },
                    label=label,
                    seed=job_seed(0, label),
                ))
                sweep_order.append((prio_index, dma_index))
        signature = sweep_signature(
            builder=_SWEEP_BUILDER,
            strategy=plan.strategy,
            builder_kwargs=dict(builder_kwargs),
            warm_start=plan.warm_start,
            root_seed=0,
            resilience=resilience_signature(),
        )
        completed_payloads: Dict[str, Any] = {}
        if plan.resume and plan.checkpoint_path is not None:
            try:
                completed_payloads = load_checkpoint(
                    plan.checkpoint_path, signature
                )
            except CheckpointError as exc:
                return 409, {"status": "error",
                             "reason": "checkpoint_mismatch",
                             "detail": str(exc)}
        writer = (
            CheckpointWriter(plan.checkpoint_path, signature,
                             completed=completed_payloads)
            if plan.checkpoint_path is not None else None
        )
        results: Dict[int, Dict[str, Any]] = {}
        errors: Dict[int, str] = {}
        for index, spec in enumerate(specs):
            payload = completed_payloads.get(spec.label)
            if payload is not None:
                results[index] = payload
        restored = len(results)
        pending: List[int] = [i for i in range(len(specs))
                              if i not in results]
        lock = threading.Lock()
        workers_used: Dict[str, int] = {}
        if writer is not None:
            writer.flush()

        def run_for(worker_id: str) -> None:
            url = self.membership.url_of(worker_id)
            if url is None:
                return
            while True:
                with lock:
                    if not pending:
                        return
                    # Shard affinity first (keeps the worker's local
                    # warm caches hot), then steal from slower shards.
                    pick = None
                    for index in pending:
                        owner = self._ring_node_for(specs[index].label)
                        if owner == worker_id:
                            pick = index
                            break
                    if pick is None:
                        pick = pending[0]
                    pending.remove(pick)
                spec = specs[pick]
                body = {
                    "kind": JOB_KIND_SPEC,
                    "job": spec_to_wire(spec),
                    "epoch": self._epoch,
                    "leader": self.config.coordinator_id,
                }
                started = self.clock()
                try:
                    status, reply = self.transport(
                        url, "/run", body, self.config.request_timeout_s
                    )
                except TransportError as exc:
                    self.membership.mark_dead(
                        worker_id, "sweep dispatch failed: %s" % exc
                    )
                    with lock:
                        pending.insert(0, pick)
                    self._note_redispatch(worker_id, spec.label, str(exc))
                    return
                self.membership.observe_run(
                    worker_id, self.clock() - started
                )
                if status == STATUS_STALE_EPOCH \
                        and reply.get("reason") == REASON_STALE_EPOCH:
                    # Deposed mid-sweep: requeue the point (the new
                    # leader re-dispatches it with the same seed) and
                    # stop driving this worker.
                    self._fence(int(reply.get("epoch") or 0),
                                "sweep dispatch fenced by %s" % worker_id)
                    with lock:
                        pending.insert(0, pick)
                    return
                if status == 503:
                    # Draining worker: hand its shard back for the
                    # ring successors (the checkpoint already holds
                    # everything it finished).
                    self.membership.decommission(
                        worker_id, "worker draining"
                    )
                    with lock:
                        pending.insert(0, pick)
                    self.obs.event(EVENT_SHARD_HANDOFF, worker=worker_id,
                                   job=spec.label, kind="sweep")
                    return
                if status != 200 or reply.get("status") != "ok":
                    with lock:
                        errors[pick] = str(
                            reply.get("detail") or reply.get("reason")
                            or "HTTP %d" % status
                        )
                    continue
                result = reply.get("result") or {}
                payload = (result.get("payload")
                           if result.get("type") == "design_point"
                           else None)
                if not isinstance(payload, dict):
                    with lock:
                        errors[pick] = (
                            "worker %s returned a non-design-point result"
                            % worker_id
                        )
                    continue
                with lock:
                    results[pick] = payload
                    workers_used[worker_id] = (
                        workers_used.get(worker_id, 0) + 1
                    )
                    if writer is not None:
                        writer.record_and_flush(
                            spec.label, payload,
                            meta={"total_points": len(specs)},
                        )
                with self._lock:
                    self._sweep_points += 1
                self.obs.event(
                    EVENT_SWEEP_STEP, label=spec.label, worker=worker_id,
                    run_seconds=round(
                        float(reply.get("run_seconds") or 0.0), 6
                    ),
                )

        # Dispatch rounds: one thread per routable worker; a thread
        # exits when its worker dies/drains (job re-queued) or no work
        # is left.  Each round re-reads membership, so workers that
        # register mid-sweep join and dead ones drop out.
        while True:
            if self.ha_enabled and not self.is_leader:
                break  # fenced mid-sweep; successor owns the rest
            with lock:
                if not pending:
                    break
            self.refresh_membership()
            routable = self.membership.routable()
            if not routable:
                break
            threads = [
                threading.Thread(target=run_for, args=(worker_id,),
                                 name="cluster-sweep-%s" % worker_id,
                                 daemon=True)
                for worker_id in routable
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        if self.ha_enabled and not self.is_leader:
            status, reply = self._not_leader_reply()
            reply["detail"] = (
                "fenced mid-sweep after %d of %d point(s); the "
                "checkpoint carries them to the new leader"
                % (len(results), len(specs))
            )
            return status, reply

        ordered = sorted(range(len(specs)), key=lambda i: sweep_order[i])
        points = [
            design_point_from_payload(results[index])
            for index in ordered if index in results
        ]
        complete = len(results) == len(specs) and not errors
        body: Dict[str, Any] = {
            "status": "ok" if complete else "partial",
            "total_points": len(specs),
            "completed": len(results),
            "restored": restored,
            "rows": sweep_summary_rows(points),
            "workers": dict(sorted(workers_used.items())),
            "redispatches": self._counters()["redispatches"],
            "checkpoint": plan.checkpoint_path,
        }
        if not complete:
            body["pending_labels"] = sorted(
                specs[index].label for index in range(len(specs))
                if index not in results and index not in errors
            )
            body["errors"] = {
                specs[index].label: message
                for index, message in sorted(errors.items())
            }
        return 200, body

    @staticmethod
    def _sweep_assignments() -> List[Dict[str, int]]:
        from repro.systems import tcpip

        return priority_permutations(list(tcpip.BUS_MASTERS))

    @staticmethod
    def _parse_sweep(params: Dict[str, Any]) -> _SweepPlan:
        if not isinstance(params, dict):
            raise BadRequest("sweep body must be a JSON object")
        dma = params.get("dma", [2, 8, 32, 128])
        if (not isinstance(dma, list) or not dma
                or not all(isinstance(v, int) and not isinstance(v, bool)
                           and v > 0 for v in dma)):
            raise BadRequest("'dma' must be a non-empty list of positive "
                             "integers")
        packets = params.get("packets", 3)
        if isinstance(packets, bool) or not isinstance(packets, int) \
                or packets < 1:
            raise BadRequest("'packets' must be a positive integer")
        period_ns = params.get("period_ns", 30_000.0)
        if isinstance(period_ns, bool) \
                or not isinstance(period_ns, (int, float)) or period_ns <= 0:
            raise BadRequest("'period_ns' must be a positive number")
        strategy = params.get("strategy", "caching")
        if strategy not in _SWEEP_STRATEGIES:
            raise BadRequest("unknown strategy %r (choose from %s)"
                             % (strategy, ", ".join(_SWEEP_STRATEGIES)))
        warm_start = params.get("warm_start", False)
        if not isinstance(warm_start, bool):
            raise BadRequest("'warm_start' must be a boolean")
        checkpoint = params.get("checkpoint")
        if checkpoint is not None and not isinstance(checkpoint, str):
            raise BadRequest("'checkpoint' must be a path string")
        resume = params.get("resume", False)
        if not isinstance(resume, bool):
            raise BadRequest("'resume' must be a boolean")
        if resume and checkpoint is None:
            raise BadRequest("'resume' needs a 'checkpoint' path")
        return _SweepPlan(
            dma_sizes=list(dma),
            num_packets=packets,
            packet_period_ns=float(period_ns),
            strategy=strategy,
            warm_start=warm_start,
            checkpoint_path=checkpoint,
            resume=resume,
        )

    # -- warm-cache tier -------------------------------------------------

    def cache_get(self, key: str) -> Tuple[int, Dict[str, Any]]:
        with self._cache_lock:
            slot = self._cache_tier.get(key)
            state = dict(slot["state"]) if slot is not None else None
        return 200, {"status": "ok", "key": key, "state": state}

    def cache_put(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        key = body.get("key")
        state = body.get("state")
        worker = str(body.get("worker") or "")
        if not isinstance(key, str) or not key:
            return 400, {"status": "error", "reason": "'key' is required"}
        if (not isinstance(state, dict)
                or not isinstance(state.get("cache"), dict)
                or not isinstance(state.get("fingerprints"), dict)):
            return 400, {"status": "error",
                         "reason": "malformed cache state"}
        entries = len(state["cache"].get("entries") or [])
        with self._cache_lock:
            slot = self._cache_tier.get(key)
            # Newer fingerprints win wholesale (the design changed);
            # same fingerprints keep whichever snapshot converged
            # further.  Never merged: the §4.2 statistics are means.
            adopt = (
                slot is None
                or slot["state"]["fingerprints"] != state["fingerprints"]
                or entries >= slot["entries"]
            )
            if adopt:
                self._cache_tier[key] = {
                    "state": state,
                    "entries": entries,
                    "worker": worker,
                    "updates": (slot["updates"] + 1 if slot else 1),
                }
                updates = self._cache_tier[key]["updates"]
        if adopt:
            # Adoptions are durable: a successor replays them and the
            # warm tier survives the failover with its convergence.
            self._journal_append(KIND_CACHE_ADOPTED, {
                "key": key, "state": state, "entries": entries,
                "worker": worker, "updates": updates,
            })
        return 200, {"status": "ok", "adopted": adopt, "entries": entries}

    # -- views -----------------------------------------------------------

    def readyz_snapshot(self) -> Tuple[int, Dict[str, Any]]:
        """The /readyz document: per-worker membership + routability."""
        self.refresh_membership()
        workers = self.membership.snapshot()
        routable = self.membership.routable()
        states: Dict[str, List[str]] = {}
        for worker_id, state in sorted(self.membership.states().items()):
            states.setdefault(state, []).append(worker_id)
        body = {
            "workers": workers,
            "routable": routable,
            "states": states,
            "ha": self.ha_snapshot(),
        }
        if self.drain_controller.draining:
            return 503, dict(body, status="draining")
        if self.ha_enabled and not self.is_leader:
            return 503, dict(body, status=self._role,
                             reason=REASON_NOT_LEADER)
        if not routable:
            return 503, dict(body, status="no_workers")
        return 200, dict(body, status="ready")

    def _counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "completed": self._completed,
                "failed": self._failed,
                "coalesced": self._coalesced,
                "redispatches": self._redispatches,
                "quarantines": self._quarantines,
                "sweeps": self._sweeps,
                "sweep_points_completed": self._sweep_points,
            }

    def stats_snapshot(self) -> Dict[str, Any]:
        self.publish_cluster_metrics()
        counts: Dict[str, int] = {state: 0 for state in _ALL_STATES}
        for state in self.membership.states().values():
            counts[state] = counts.get(state, 0) + 1
        with self._cache_lock:
            cache_tier = {
                key: {"entries": slot["entries"],
                      "worker": slot["worker"],
                      "updates": slot["updates"]}
                for key, slot in sorted(self._cache_tier.items())
            }
        return {
            "cluster": dict(
                self._counters(),
                state=("draining" if self.drain_controller.draining
                       else "ready"),
                workers_by_state=counts,
            ),
            "ha": self.ha_snapshot(),
            "workers": self.membership.snapshot(),
            "dedup": self.dedup.snapshot(),
            "cache_tier": cache_tier,
            "metrics": self.telemetry.metrics.snapshot(),
        }

    def publish_cluster_metrics(self) -> None:
        """Refresh the cluster gauge families from membership."""
        self._publish_ha_metrics()
        metrics = self.obs.metrics
        counts: Dict[str, int] = {state: 0 for state in _ALL_STATES}
        for state in self.membership.states().values():
            counts[state] = counts.get(state, 0) + 1
        for state, count in counts.items():
            metrics.gauge(
                labeled(METRIC_CLUSTER_WORKERS, state=state)
            ).set(count)
        for worker_id, age in sorted(
                self.membership.heartbeat_ages().items()):
            metrics.gauge(
                labeled(METRIC_CLUSTER_HEARTBEAT_AGE, worker=worker_id)
            ).set(round(age, 3))
        for worker_id, info in sorted(self.membership.snapshot().items()):
            metrics.gauge(
                labeled(METRIC_CLUSTER_WORKER_QUEUE_DEPTH, worker=worker_id)
            ).set(float(info["queue_depth"]))

    def metrics_exposition(self) -> str:
        self.publish_cluster_metrics()
        return self.obs.render_metrics()


class _Rejected(Exception):
    """Internal: a submission was refused before dispatch."""

    def __init__(self, message: str, status: int, reason: str) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class _CoordinatorHandler(JsonRequestHandler):
    WAIT_GRACE_S = 5.0

    KNOWN_PATHS = (
        "/estimate", "/sweep", "/healthz", "/readyz", "/stats", "/metrics",
        "/cluster/register", "/cluster/heartbeat", "/cluster/cache",
        "/cluster/decommission", "/cluster/journal",
    )

    @property
    def coordinator(self) -> ClusterCoordinator:
        return self.server.coordinator  # type: ignore[attr-defined]

    def record_http(self, label: str, status: int) -> None:
        self.coordinator.obs.record_http(label, status)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self.respond_json(200, {
                "status": "alive",
                "role": "coordinator",
                "draining": self.coordinator.drain_controller.draining,
            })
        elif self.path == "/readyz":
            status, body = self.coordinator.readyz_snapshot()
            self.respond_json(status, body)
        elif self.path == "/stats":
            self.respond_json(200, self.coordinator.stats_snapshot())
        elif self.path == "/metrics":
            self.respond_text(200, self.coordinator.metrics_exposition())
        elif self.path.startswith("/cluster/journal"):
            since = 0
            if "?" in self.path:
                from urllib.parse import parse_qs, urlsplit

                query = parse_qs(urlsplit(self.path).query)
                try:
                    since = int((query.get("since") or ["0"])[0])
                except ValueError:
                    self.respond_json(400, {
                        "status": "error",
                        "reason": "'since' must be an integer",
                    })
                    return
            status, body = self.coordinator.journal_entries_since(since)
            self.respond_json(status, body)
        elif self.path.startswith("/cluster/cache"):
            key = ""
            if "?" in self.path:
                from urllib.parse import parse_qs, urlsplit

                query = parse_qs(urlsplit(self.path).query)
                key = (query.get("key") or [""])[0]
            if not key:
                self.respond_json(400, {"status": "error",
                                        "reason": "'key' is required"})
                return
            status, body = self.coordinator.cache_get(key)
            self.respond_json(status, body)
        else:
            self.respond_json(404, {"status": "error",
                                    "reason": "unknown path %s" % self.path})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        body = self.read_json_body()
        if body is None:
            return
        if self.path == "/estimate":
            self._post_estimate(body)
        elif self.path == "/sweep":
            status, reply = self.coordinator.run_sweep(body)
            self.respond_json(status, reply)
        elif self.path == "/cluster/register":
            status, reply = self.coordinator.register_worker(
                str(body.get("worker_id") or ""), str(body.get("url") or "")
            )
            self.respond_json(status, reply)
        elif self.path == "/cluster/heartbeat":
            status, reply = self.coordinator.heartbeat(body)
            self.respond_json(status, reply)
        elif self.path == "/cluster/cache":
            status, reply = self.coordinator.cache_put(body)
            self.respond_json(status, reply)
        elif self.path == "/cluster/decommission":
            status, reply = self.coordinator.decommission_worker(
                str(body.get("worker") or ""),
                str(body.get("reason", "requested")),
            )
            self.respond_json(status, reply)
        else:
            self.respond_json(404, {"status": "error",
                                    "reason": "unknown path %s" % self.path})

    def _post_estimate(self, body: Dict[str, Any]) -> None:
        try:
            request = parse_request(
                body,
                known_systems=system_names(),
                default_deadline_s=(
                    self.coordinator.config.default_deadline_s
                ),
            )
        except BadRequest as exc:
            self.respond_json(400, {"status": "error", "reason": str(exc)})
            return
        try:
            pending, coalesced = self.coordinator.submit(request)
        except _Rejected as exc:
            self.respond_json(exc.status, {
                "status": "rejected",
                "reason": exc.reason,
                "request_id": request.request_id,
            })
            return
        if not pending.wait(request.deadline_s + self.WAIT_GRACE_S):
            self.respond_json(504, {
                "status": "error",
                "reason": "deadline_exceeded",
                "request_id": request.request_id,
            })
            return
        reply = dict(pending.body)
        if coalesced:
            reply["coalesced"] = True
        self.respond_json(pending.status, reply, pending.headers)


def run_coordinator(
    host: str,
    port: int,
    config: Optional[ClusterConfig] = None,
    install_signals: bool = True,
    quiet: bool = False,
    ready_callback=None,
) -> int:
    """The body of ``repro cluster`` (coordinator half).

    Serves HTTP, advances the membership state machine on the refresh
    interval, and blocks until SIGTERM/SIGINT (or a programmatic drain)
    — then exits 0.
    """
    coordinator = ClusterCoordinator(config)
    httpd = QuietHTTPServer((host, port), _CoordinatorHandler)
    httpd.coordinator = coordinator  # type: ignore[attr-defined]
    coordinator.set_url("http://%s:%d" % (host, httpd.server_address[1]))
    restore = None
    if install_signals:
        restore = install_drain_signals(coordinator.drain_controller)

    def refresher() -> None:
        interval = coordinator.config.refresh_interval_s
        while not coordinator.drain_controller.wait(interval):
            coordinator.refresh_membership()
            coordinator.publish_cluster_metrics()

    refresh_thread = threading.Thread(
        target=refresher, name="cluster-refresh", daemon=True
    )
    refresh_thread.start()
    if coordinator.ha_enabled:
        ha_thread = threading.Thread(
            target=coordinator.ha_loop, name="cluster-ha", daemon=True
        )
        ha_thread.start()
    serve_thread = threading.Thread(
        target=httpd.serve_forever, name="cluster-http", daemon=True
    )
    serve_thread.start()
    if not quiet:
        ha_note = ""
        if coordinator.ha_enabled:
            ha_note = " ha=%s id=%s lease=%.1fs" % (
                "standby" if coordinator.config.standby else "active",
                coordinator.config.coordinator_id,
                coordinator.config.lease_ttl_s,
            )
        print("cluster coordinator listening on http://%s:%d "
              "(heartbeat=%.1fs suspect=%.1fs dead=%.1fs limp=%.1fx%s) — "
              "SIGTERM drains gracefully"
              % (host, httpd.server_address[1],
                 coordinator.config.heartbeat_interval_s,
                 coordinator.config.membership.suspect_after_s,
                 coordinator.config.membership.dead_after_s,
                 coordinator.config.membership.limp_factor,
                 ha_note), flush=True)
    if ready_callback is not None:
        ready_callback(coordinator, httpd)
    try:
        while not coordinator.drain_controller.wait(0.2):
            pass
    finally:
        httpd.shutdown()
        httpd.server_close()
        if restore is not None:
            restore()
        if not quiet:
            counters = coordinator._counters()
            print("coordinator drain (%s): %d estimate(s), %d sweep "
                  "point(s), %d redispatch(es)"
                  % (coordinator.drain_controller.reason or "requested",
                     counters["completed"],
                     counters["sweep_points_completed"],
                     counters["redispatches"]), flush=True)
    return 0


def run_cluster(
    host: str,
    port: int,
    workers: int,
    config: Optional[ClusterConfig] = None,
    worker_slots: int = 1,
    quiet: bool = False,
    install_signals: bool = True,
) -> int:
    """The body of ``repro cluster``: coordinator + N worker processes.

    Workers are separate OS processes running ``python -m repro worker``
    pointed at the coordinator; they register themselves, so the
    coordinator needs no foreknowledge of them.  On drain the workers
    get SIGTERM (their own graceful path) and are killed only if they
    ignore it.
    """
    import os
    import signal
    import subprocess
    import sys

    if workers < 1:
        raise ValueError("workers must be >= 1")
    processes: List[subprocess.Popen] = []

    def spawn_workers(coordinator, httpd) -> None:
        url = "http://%s:%d" % (host, httpd.server_address[1])
        for index in range(workers):
            command = [
                sys.executable, "-m", "repro", "worker",
                "--coordinator", url,
                "--worker-id", "worker-%d" % index,
                "--slots", str(worker_slots),
            ]
            processes.append(subprocess.Popen(
                command, env=dict(os.environ)
            ))
        if not quiet:
            print("spawned %d worker process(es) against %s"
                  % (workers, url), flush=True)

    try:
        return run_coordinator(
            host, port, config=config, install_signals=install_signals,
            quiet=quiet, ready_callback=spawn_workers,
        )
    finally:
        for process in processes:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        deadline = time.time() + 5.0
        for process in processes:
            remaining = max(0.1, deadline - time.time())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

"""Coordinator high availability: leases, epochs, and failover clients.

The HA design (docs/cluster-ha.md) is three small mechanisms that
compose:

* **a lease file** (:class:`LeaseFile`) in a directory shared by the
  coordinator replicas.  The active leader renews it on a short
  interval; a standby that observes it expired (or released by a
  graceful drain) elects itself.  All writes go through
  :func:`repro.ioutil.atomic_write_json` — readers see a complete old
  lease or a complete new one, never a torn file.  When several
  standbys race for an expired lease they first publish *claims* and
  the **lexicographically smallest coordinator id wins** — a
  deterministic tiebreak, so a partitioned pair converges on the same
  verdict without talking to each other;
* **epochs**: every successful election bumps a monotonic epoch
  (``max(journal epoch, lease epoch) + 1``) recorded in both the lease
  and the journal.  Every dispatch and heartbeat carries the sender's
  epoch, and the stale side of any exchange is *fenced* with a
  409 ``stale-epoch`` answer — a deposed leader that still has sockets
  open cannot split the brain, because the workers stop obeying it the
  moment they have seen a newer epoch;
* **peer failover** (:func:`failover_request`): workers and service
  clients hold the full coordinator peer list and walk it on transport
  failure or a ``not_leader`` answer, so a failover needs no client
  reconfiguration.

Wall-clock time (``time.time``) is used for lease expiry on purpose:
leases are compared *across processes*, where monotonic clocks are not
comparable.  The clock is injectable for tests.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.ioutil import atomic_write_json
from repro.cluster.protocol import (
    REASON_NOT_LEADER,
    TransportError,
    http_json,
)

__all__ = [
    "LeaseError",
    "Lease",
    "LeaseFile",
    "failover_request",
]

LEASE_FILENAME = "lease.json"
_CLAIM_PREFIX = "claim."
_CLAIM_SUFFIX = ".json"


class LeaseError(ReproError):
    """The lease directory cannot be used."""


@dataclass
class Lease:
    """One leadership term as recorded on disk."""

    holder: str
    url: str
    epoch: int
    acquired_at: float
    expires_at: float

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "holder": self.holder,
            "url": self.url,
            "epoch": self.epoch,
            "acquired_at": self.acquired_at,
            "expires_at": self.expires_at,
        }

    @staticmethod
    def from_payload(payload: Dict[str, Any]) -> Optional["Lease"]:
        try:
            return Lease(
                holder=str(payload["holder"]),
                url=str(payload.get("url") or ""),
                epoch=int(payload["epoch"]),
                acquired_at=float(payload["acquired_at"]),
                expires_at=float(payload["expires_at"]),
            )
        except (KeyError, TypeError, ValueError):
            return None


class LeaseFile:
    """Lease acquisition/renewal against one shared file.

    ``try_acquire`` is the only entry point that can *change the
    holder*; ``renew`` only extends a lease this candidate already
    holds.  Both return the current :class:`Lease` on success and
    ``None`` on failure, never raising for contention.
    """

    def __init__(
        self,
        directory: str,
        holder_id: str,
        url: str = "",
        ttl_s: float = 3.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not holder_id:
            raise LeaseError("a lease candidate needs a holder id")
        if ttl_s <= 0:
            raise LeaseError("lease ttl must be positive")
        self.directory = os.path.abspath(directory)
        self.holder_id = holder_id
        self.url = url
        self.ttl_s = ttl_s
        self.clock = clock
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, LEASE_FILENAME)

    # -- reading ---------------------------------------------------------

    def read(self) -> Optional[Lease]:
        """The current lease, or None when absent/unparseable.

        Unparseable is treated as absent on purpose: every writer uses
        atomic replace, so a bad file means an operator edited it —
        electing a new leader is the safe recovery either way.
        """
        try:
            with open(self.path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        return Lease.from_payload(payload)

    def remaining_s(self) -> Optional[float]:
        lease = self.read()
        if lease is None:
            return None
        return lease.remaining(self.clock())

    # -- acquisition -----------------------------------------------------

    def try_acquire(self, epoch_floor: int = 0) -> Optional[Lease]:
        """Acquire (or renew) the lease; None when another holds it.

        A fresh acquisition bumps the epoch to
        ``max(previous lease epoch, epoch_floor) + 1`` — callers pass
        their journal's tip epoch as the floor so a takeover is always
        ahead of every entry the previous leader wrote.  Contention for
        a free lease resolves through claim files: smallest candidate
        id among the live claims wins, deterministically.
        """
        now = self.clock()
        current = self.read()
        if current is not None and current.holder == self.holder_id:
            return self._write(current.epoch, now)
        if current is not None and current.holder \
                and not current.expired(now):
            return None
        # The lease is free (absent, expired, or released).  Publish a
        # claim, then concede to any smaller claimant racing us.
        self._write_claim(now)
        winner = self._claim_winner(now)
        if winner != self.holder_id:
            return None
        # Re-check the lease after claiming: a racer that already won
        # and wrote the lease must not be overwritten.
        latest = self.read()
        if latest is not None and latest.holder \
                and latest.holder != self.holder_id \
                and not latest.expired(now):
            return None
        previous_epoch = current.epoch if current is not None else 0
        return self._write(max(previous_epoch, epoch_floor) + 1, now)

    def renew(self) -> Optional[Lease]:
        """Extend a held lease; None when it was lost to another."""
        now = self.clock()
        current = self.read()
        if current is None or current.holder != self.holder_id:
            return None
        return self._write(current.epoch, now)

    def release(self) -> None:
        """Hand the lease back (graceful drain): successor elects
        immediately instead of waiting out the TTL."""
        current = self.read()
        if current is None or current.holder != self.holder_id:
            return
        now = self.clock()
        atomic_write_json(self.path, Lease(
            holder="", url="", epoch=current.epoch,
            acquired_at=now, expires_at=now,
        ).to_payload())
        self._clear_claim()

    def _write(self, epoch: int, now: float) -> Lease:
        lease = Lease(
            holder=self.holder_id, url=self.url, epoch=epoch,
            acquired_at=now, expires_at=now + self.ttl_s,
        )
        atomic_write_json(self.path, lease.to_payload())
        # The claim served its purpose: clear it so it cannot outlive
        # this term and block a successor's election after a release.
        self._clear_claim()
        return lease

    # -- claims (deterministic tiebreak) ---------------------------------

    def _claim_path(self, holder_id: str) -> str:
        return os.path.join(
            self.directory, "%s%s%s" % (_CLAIM_PREFIX, holder_id,
                                        _CLAIM_SUFFIX)
        )

    def _write_claim(self, now: float) -> None:
        atomic_write_json(self._claim_path(self.holder_id),
                          {"holder": self.holder_id, "stamp": now})

    def _clear_claim(self) -> None:
        try:
            os.remove(self._claim_path(self.holder_id))
        except OSError:
            pass

    def _claim_winner(self, now: float) -> str:
        """Smallest candidate id among claims younger than one TTL."""
        candidates = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            names = []
        for name in names:
            if not name.startswith(_CLAIM_PREFIX) \
                    or not name.endswith(_CLAIM_SUFFIX):
                continue
            try:
                with open(os.path.join(self.directory, name),
                          encoding="utf-8") as handle:
                    claim = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(claim, dict):
                continue
            stamp = claim.get("stamp")
            holder = str(claim.get("holder") or "")
            if not holder or not isinstance(stamp, (int, float)):
                continue
            if now - float(stamp) <= self.ttl_s:
                candidates.append(holder)
        return min(candidates) if candidates else self.holder_id


# ----------------------------------------------------------------------
# Client-side failover
# ----------------------------------------------------------------------


def failover_request(
    peers: Sequence[str],
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    timeout_s: float = 30.0,
    transport: Callable[..., Tuple[int, Dict[str, Any]]] = http_json,
) -> Tuple[int, Dict[str, Any], str]:
    """One request tried against each peer until a leader answers.

    Walks ``peers`` in order; a :class:`TransportError` or a
    503 ``not_leader``/``standby`` answer moves on to the next peer (a
    ``leader`` hint in the answer is tried first).  Returns
    ``(status, body, peer_url)`` from the first authoritative answer.
    Raises :class:`TransportError` when every peer is unreachable or
    deferring — the caller backs off and retries.
    """
    if not peers:
        raise TransportError("no coordinator peers to fail over through")
    queue: List[str] = list(peers)
    tried = set()
    last: Optional[Tuple[int, Dict[str, Any], str]] = None
    while queue:
        peer = queue.pop(0)
        if peer in tried:
            continue
        tried.add(peer)
        try:
            status, reply = transport(method, peer, path, body=body,
                                      timeout_s=timeout_s)
        except TransportError:
            continue
        if status == 503 and reply.get("reason") in (REASON_NOT_LEADER,
                                                     "standby"):
            hint = reply.get("leader_url")
            if isinstance(hint, str) and hint and hint not in tried:
                queue.insert(0, hint)
            last = (status, reply, peer)
            continue
        return status, reply, peer
    if last is not None:
        raise TransportError(
            "no leader among %d coordinator peer(s) (last: %s answered %s)"
            % (len(tried), last[2], last[1].get("reason"))
        )
    raise TransportError(
        "all %d coordinator peer(s) unreachable" % len(tried)
    )

"""Consistent-hash sharding of request fingerprints onto workers.

The coordinator routes every request by its structural fingerprint
(:func:`repro.service.api.request_fingerprint` for estimates, the job
label for sweep points), so identical requests land on the same worker
— which is what makes in-flight coalescing effective cluster-wide and
keeps each worker's process-local §4.2 caches hot for its shard.

Classic consistent hashing with virtual nodes: each worker owns
``replicas`` points on a 64-bit ring, a key routes to the first point
clockwise from its own hash, and adding/removing one worker moves only
the keys of the shard it gains/loses (~1/N of the space), never
reshuffling everyone else's cache locality.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Tuple

__all__ = ["HashRing"]


def _hash64(key: str) -> int:
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to node names."""

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []  # sorted (hash, node)
        self._nodes: Dict[str, bool] = {}

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Add ``node`` (idempotent)."""
        if not node:
            raise ValueError("node name must be non-empty")
        if node in self._nodes:
            return
        self._nodes[node] = True
        for replica in range(self.replicas):
            point = (_hash64("%s#%d" % (node, replica)), node)
            bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        """Remove ``node`` (idempotent); its shard flows to successors."""
        if node not in self._nodes:
            return
        del self._nodes[node]
        self._points = [p for p in self._points if p[1] != node]

    def node_for(self, key: str) -> Optional[str]:
        """The node owning ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        index = bisect.bisect(self._points, (_hash64(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key: str, count: Optional[int] = None) -> List[str]:
        """Distinct nodes in ring order starting at ``key``'s owner.

        The first entry is :meth:`node_for`'s answer; the rest are the
        re-dispatch order when earlier choices are dead or quarantined.
        """
        if not self._points:
            return []
        wanted = len(self._nodes) if count is None else min(count,
                                                           len(self._nodes))
        start = bisect.bisect(self._points, (_hash64(key), ""))
        seen: List[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in seen:
                seen.append(node)
                if len(seen) >= wanted:
                    break
        return seen

"""The control-plane journal: the coordinator's durable memory.

PR 7 made the *data plane* survive failures — worker deaths re-dispatch,
shards hand off through checkpoints — but everything the coordinator
*knows* (membership, the shared §4.2 warm-cache tier, which sweeps are
in flight) lived only in its heap.  This module writes that knowledge
down as an append-only journal so a standby coordinator can replay it
and take over (:mod:`repro.cluster.ha`).

Layout: a journal is a directory of numbered segment files
(``segment-00000001.jsonl`` …), each holding newline-delimited JSON
entries.  Durability is two-tier:

* **the active tail** is appended in place — one line per entry,
  flushed and fsync'd before :meth:`ControlPlaneJournal.append`
  returns, so an acknowledged entry survives a crash.  A crash *during*
  the write can leave a torn final line; every entry therefore carries
  a CRC over its canonical body, and replay **discards** a checksummed-
  bad tail in the final segment instead of crashing (the entry was
  never acknowledged, so dropping it is correct).  A bad entry in the
  *middle* of the journal is real corruption and raises
  :class:`JournalError`;
* **sealed segments** are rewritten wholesale through
  :func:`repro.ioutil.atomic_write_text` (same-directory temp file,
  fsync, atomic rename, parent-directory fsync) when the tail rolls
  over, so every closed segment is a canonical, atomically-replaced
  artifact.

Entries are monotonically sequence-numbered and carry the **epoch** of
the leader that wrote them; a replicated entry (a standby tailing its
leader) keeps the original numbering via :meth:`append_replicated`.
Replay folds the entries into :class:`ControlPlaneState`, the
deterministic state machine both takeover and the standby's shadow view
use.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.ioutil import atomic_write_text, fsync_directory

__all__ = [
    "JournalError",
    "JournalEntry",
    "ControlPlaneJournal",
    "ControlPlaneState",
    "KIND_LEADER_ELECTED",
    "KIND_LEADER_RESIGNED",
    "KIND_WORKER_REGISTERED",
    "KIND_WORKER_STATE",
    "KIND_CACHE_ADOPTED",
    "KIND_SWEEP_STARTED",
    "KIND_SWEEP_COMPLETED",
]

#: Entry kinds — the control-plane transitions worth surviving a
#: coordinator death.  Estimates are deliberately absent: they are
#: synchronous, idempotent by fingerprint, and the failover client
#: simply re-submits them to the new leader.
KIND_LEADER_ELECTED = "leader-elected"
KIND_LEADER_RESIGNED = "leader-resigned"
KIND_WORKER_REGISTERED = "worker-registered"
KIND_WORKER_STATE = "worker-state"
KIND_CACHE_ADOPTED = "cache-adopted"
KIND_SWEEP_STARTED = "sweep-started"
KIND_SWEEP_COMPLETED = "sweep-completed"

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


class JournalError(ReproError):
    """The journal directory holds corrupt non-tail data."""


@dataclass
class JournalEntry:
    """One acknowledged control-plane transition."""

    seq: int
    epoch: int
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def body(self) -> Dict[str, Any]:
        return {"seq": self.seq, "epoch": self.epoch, "kind": self.kind,
                "payload": self.payload}

    def to_wire(self) -> Dict[str, Any]:
        """The checksummed line/HTTP form of this entry."""
        body = self.body()
        return dict(body, crc=_crc(body))

    @staticmethod
    def from_wire(document: Dict[str, Any]) -> "JournalEntry":
        """Parse + verify one wire/line document.

        Raises :class:`JournalError` on shape or checksum mismatch —
        callers decide whether that means "torn tail, discard" or
        "mid-journal corruption, refuse to run".
        """
        if not isinstance(document, dict):
            raise JournalError("journal entry is not an object")
        try:
            entry = JournalEntry(
                seq=int(document["seq"]),
                epoch=int(document["epoch"]),
                kind=str(document["kind"]),
                payload=dict(document.get("payload") or {}),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError("malformed journal entry: %s" % exc) from exc
        expected = _crc(entry.body())
        if document.get("crc") != expected:
            raise JournalError(
                "journal entry seq=%s fails its checksum "
                "(crc %r, expected %r)"
                % (document.get("seq"), document.get("crc"), expected)
            )
        return entry


def _crc(body: Dict[str, Any]) -> str:
    """CRC32 (hex) over the canonical JSON of an entry body."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "%08x" % zlib.crc32(canonical.encode("utf-8"))


def _entry_line(entry: JournalEntry) -> str:
    return json.dumps(entry.to_wire(), sort_keys=True,
                      separators=(",", ":")) + "\n"


def _segment_name(index: int) -> str:
    return "%s%08d%s" % (_SEGMENT_PREFIX, index, _SEGMENT_SUFFIX)


class ControlPlaneJournal:
    """Append-only, fsync'd, segmented journal in one directory.

    Thread-safe: the coordinator appends from HTTP handler threads, the
    HA loop reads tails concurrently.  All appends are durable before
    they return; see the module docstring for the crash contract.
    """

    def __init__(self, directory: str,
                 segment_entries: int = 256) -> None:
        if segment_entries < 1:
            raise ValueError("segment_entries must be >= 1")
        self.directory = os.path.abspath(directory)
        self.segment_entries = segment_entries
        self._lock = threading.RLock()
        self._entries: List[JournalEntry] = []
        self._discarded_tail = 0
        os.makedirs(self.directory, exist_ok=True)
        self._segments = self._segment_indices()
        self._load()
        self._active_index = (self._segments[-1] if self._segments else 1)
        self._active_count = sum(
            1 for entry in self._entries
            if self._segment_of(entry.seq) == self._active_index
        ) if self._segments else 0
        # Replay trimmed a torn tail: rewrite the final segment so the
        # torn bytes never shadow a future append with the same seq.
        if self._discarded_tail:
            self._rewrite_segment(self._active_index)

    # -- reading ---------------------------------------------------------

    def _segment_indices(self) -> List[int]:
        indices = []
        for name in os.listdir(self.directory):
            if name.startswith(_SEGMENT_PREFIX) \
                    and name.endswith(_SEGMENT_SUFFIX):
                digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
                if digits.isdigit():
                    indices.append(int(digits))
        return sorted(indices)

    def _load(self) -> None:
        """Replay every segment; discard a checksummed-bad final tail."""
        for position, index in enumerate(self._segments):
            final_segment = position == len(self._segments) - 1
            path = os.path.join(self.directory, _segment_name(index))
            try:
                with open(path, encoding="utf-8") as handle:
                    lines = handle.readlines()
            except OSError as exc:
                raise JournalError(
                    "journal segment %r is unreadable: %s" % (path, exc)
                ) from exc
            for line_number, line in enumerate(lines):
                try:
                    document = json.loads(line)
                    entry = JournalEntry.from_wire(document)
                except (ValueError, JournalError) as exc:
                    if final_segment:
                        # A torn tail from a crash mid-append: the
                        # entry was never acknowledged.  Discard it and
                        # anything after it.
                        self._discarded_tail = len(lines) - line_number
                        return
                    raise JournalError(
                        "segment %r line %d is corrupt mid-journal: %s"
                        % (path, line_number + 1, exc)
                    ) from exc
                if self._entries and entry.seq != self._entries[-1].seq + 1:
                    raise JournalError(
                        "segment %r line %d breaks the sequence "
                        "(seq %d after %d)"
                        % (path, line_number + 1, entry.seq,
                           self._entries[-1].seq)
                    )
                self._entries.append(entry)

    def _segment_of(self, seq: int) -> int:
        """The segment index entry ``seq`` belongs to (1-based)."""
        return (seq - 1) // self.segment_entries + 1

    # -- appending -------------------------------------------------------

    def append(self, kind: str, payload: Optional[Dict[str, Any]] = None,
               epoch: int = 0) -> JournalEntry:
        """Durably append one new entry; returns it with its seq."""
        with self._lock:
            entry = JournalEntry(
                seq=self.tip_seq() + 1, epoch=epoch, kind=kind,
                payload=dict(payload or {}),
            )
            self._append_locked(entry)
            return entry

    def append_replicated(self, document: Dict[str, Any]) -> bool:
        """Append one tailed wire entry, preserving its numbering.

        Returns False (and appends nothing) for entries at or behind
        the local tip — tailing is idempotent.  Raises
        :class:`JournalError` on checksum failure or a sequence gap:
        a standby must never hold a journal with holes.
        """
        entry = JournalEntry.from_wire(document)
        with self._lock:
            tip = self.tip_seq()
            if entry.seq <= tip:
                return False
            if entry.seq != tip + 1:
                raise JournalError(
                    "replicated entry seq %d leaves a gap after %d"
                    % (entry.seq, tip)
                )
            self._append_locked(entry)
            return True

    def _append_locked(self, entry: JournalEntry) -> None:
        index = self._segment_of(entry.seq)
        if index != self._active_index:
            # Roll over: seal the finished segment through the atomic
            # rewrite (canonical bytes, atomic rename, parent fsync).
            self._rewrite_segment(self._active_index)
            self._active_index = index
            self._active_count = 0
        path = os.path.join(self.directory, _segment_name(index))
        created = not os.path.exists(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(_entry_line(entry))
            handle.flush()
            os.fsync(handle.fileno())
        if created:
            fsync_directory(self.directory)
            if index not in self._segments:
                self._segments.append(index)
        self._entries.append(entry)
        self._active_count += 1

    def _rewrite_segment(self, index: int) -> None:
        """Atomically rewrite one segment from the in-memory entries."""
        if index not in self._segments and not any(
                self._segment_of(entry.seq) == index
                for entry in self._entries):
            return
        lines = "".join(
            _entry_line(entry) for entry in self._entries
            if self._segment_of(entry.seq) == index
        )
        atomic_write_text(
            os.path.join(self.directory, _segment_name(index)), lines
        )
        if index not in self._segments:
            self._segments.append(index)

    # -- views -----------------------------------------------------------

    def tip_seq(self) -> int:
        with self._lock:
            return self._entries[-1].seq if self._entries else 0

    def tip_epoch(self) -> int:
        """The highest epoch any entry was written under."""
        with self._lock:
            return max((entry.epoch for entry in self._entries), default=0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def discarded_tail_entries(self) -> int:
        """Torn tail lines dropped by the last replay (postmortem info)."""
        return self._discarded_tail

    def entries(self) -> List[JournalEntry]:
        with self._lock:
            return list(self._entries)

    def entries_since(self, seq: int) -> List[JournalEntry]:
        """Entries with ``entry.seq > seq`` (the standby tail query)."""
        with self._lock:
            return [entry for entry in self._entries if entry.seq > seq]

    def replay(self) -> "ControlPlaneState":
        """Fold the whole journal into a fresh control-plane state."""
        state = ControlPlaneState()
        for entry in self.entries():
            state.apply(entry)
        return state


class ControlPlaneState:
    """Deterministic fold over journal entries.

    This is what a successor knows after replay: cluster membership
    (worker ids, URLs, last durable state), the warm-cache tier, the
    leadership history, and which sweeps were in flight when the
    previous leader died (``sweep-started`` without a matching
    ``sweep-completed``).
    """

    def __init__(self) -> None:
        self.epoch = 0
        self.leader_id = ""
        self.leaders: List[Tuple[int, str]] = []
        self.workers: Dict[str, Dict[str, Any]] = {}
        self.cache_tier: Dict[str, Dict[str, Any]] = {}
        self.sweeps: Dict[str, Dict[str, Any]] = {}
        self.applied = 0

    def apply(self, entry: JournalEntry) -> None:
        self.applied += 1
        self.epoch = max(self.epoch, entry.epoch)
        payload = entry.payload
        if entry.kind == KIND_LEADER_ELECTED:
            self.leader_id = str(payload.get("coordinator_id") or "")
            self.leaders.append((entry.epoch, self.leader_id))
        elif entry.kind == KIND_LEADER_RESIGNED:
            if self.leader_id == payload.get("coordinator_id"):
                self.leader_id = ""
        elif entry.kind == KIND_WORKER_REGISTERED:
            worker_id = str(payload.get("worker_id") or "")
            if worker_id:
                self.workers[worker_id] = {
                    "url": str(payload.get("url") or ""),
                    "state": "live",
                }
        elif entry.kind == KIND_WORKER_STATE:
            worker_id = str(payload.get("worker_id") or "")
            if worker_id in self.workers:
                self.workers[worker_id]["state"] = str(
                    payload.get("state") or ""
                )
        elif entry.kind == KIND_CACHE_ADOPTED:
            key = str(payload.get("key") or "")
            state = payload.get("state")
            if key and isinstance(state, dict):
                self.cache_tier[key] = {
                    "state": state,
                    "entries": int(payload.get("entries") or 0),
                    "worker": str(payload.get("worker") or ""),
                    "updates": int(payload.get("updates") or 1),
                }
        elif entry.kind == KIND_SWEEP_STARTED:
            sweep_id = str(payload.get("sweep_id") or "")
            if sweep_id:
                self.sweeps[sweep_id] = {
                    "params": dict(payload.get("params") or {}),
                    "done": False,
                    "epoch": entry.epoch,
                }
        elif entry.kind == KIND_SWEEP_COMPLETED:
            sweep_id = str(payload.get("sweep_id") or "")
            if sweep_id in self.sweeps:
                self.sweeps[sweep_id]["done"] = True
        # Unknown kinds are skipped, not fatal: an older standby may
        # replay a newer leader's journal during a rolling upgrade.

    def orphaned_sweeps(self) -> Dict[str, Dict[str, Any]]:
        """Sweeps started but never completed — the takeover work list."""
        return {sweep_id: info for sweep_id, info in self.sweeps.items()
                if not info["done"]}

    def previous_leaders(self, coordinator_id: str) -> List[str]:
        """Distinct prior leader ids other than ``coordinator_id``."""
        seen: List[str] = []
        for _, leader in self.leaders:
            if leader and leader != coordinator_id and leader not in seen:
                seen.append(leader)
        return seen


def entries_to_wire(entries: Iterable[JournalEntry]) -> List[Dict[str, Any]]:
    """Wire (checksummed) form of ``entries`` for the tail endpoint."""
    return [entry.to_wire() for entry in entries]

"""Worker membership: heartbeats, liveness, and limplock detection.

HDFS-style failure detection, adapted to the co-estimation cluster:

* every worker heartbeats the coordinator on a fixed interval, carrying
  its load (queue depth, in-flight runs, completed count, mean run
  seconds);
* a worker whose last heartbeat is older than ``suspect_after_s`` is
  **suspect** — kept in membership but removed from routing until it
  heartbeats again (late heartbeats are the cheap half of limplock
  handling);
* older than ``dead_after_s`` it is **dead** — its shard reassigns via
  the hash ring and any in-flight jobs re-dispatch to live workers;
* a worker that is alive but *pathologically slow* — coordinator-
  observed run latency above ``limp_factor`` × the median of its peers
  — is **limplocked**: quarantined out of routing even though its
  heartbeats still arrive.  A limping node that answers every probe is
  worse than a dead one (it drags every request to its speed), which
  is exactly the limplock failure mode described in the cluster
  literature; quarantine is sticky until the worker re-registers.

All timing runs on an injectable monotonic clock, so the state machine
is unit-testable without sleeping.
"""

from __future__ import annotations

import statistics
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "LIVE",
    "SUSPECT",
    "DEAD",
    "LIMPLOCKED",
    "DECOMMISSIONED",
    "WorkerInfo",
    "MembershipTable",
]

LIVE = "live"
SUSPECT = "suspect"
DEAD = "dead"
LIMPLOCKED = "limplocked"
DECOMMISSIONED = "decommissioned"

#: States a request may be routed to.
ROUTABLE_STATES = (LIVE,)


@dataclass
class WorkerInfo:
    """Coordinator-side view of one worker."""

    worker_id: str
    url: str
    state: str = LIVE
    registered_at: float = 0.0
    last_heartbeat_at: float = 0.0
    heartbeats: int = 0
    #: Worker-reported load (latest heartbeat).
    queue_depth: int = 0
    in_flight: int = 0
    completed: int = 0
    reported_run_s: float = 0.0
    #: Coordinator-observed run latency (EWMA over dispatched jobs).
    observed_run_s: float = 0.0
    run_samples: int = 0
    quarantine_reason: str = ""
    #: Jobs re-dispatched away from this worker after it was declared
    #: dead or quarantined.
    redispatched_jobs: int = 0

    def snapshot(self, now: float) -> Dict[str, object]:
        return {
            "url": self.url,
            "state": self.state,
            "heartbeat_age_s": (
                round(now - self.last_heartbeat_at, 3)
                if self.heartbeats else None
            ),
            "heartbeats": self.heartbeats,
            "queue_depth": self.queue_depth,
            "in_flight": self.in_flight,
            "completed": self.completed,
            "observed_run_s": round(self.observed_run_s, 6),
            "run_samples": self.run_samples,
            "quarantine_reason": self.quarantine_reason,
            "redispatched_jobs": self.redispatched_jobs,
        }


@dataclass
class MembershipConfig:
    """Liveness and limplock thresholds (see docs/cluster.md)."""

    #: Heartbeat older than this ⇒ suspect (unroutable until it returns).
    suspect_after_s: float = 3.0
    #: Heartbeat older than this ⇒ dead (shard reassigned, jobs
    #: re-dispatched).
    dead_after_s: float = 10.0
    #: Observed run latency above ``limp_factor`` × peer median ⇒
    #: limplocked.
    limp_factor: float = 4.0
    #: Minimum observed runs on a worker before it can be judged.
    limp_min_samples: int = 3
    #: Absolute slack added to the median test so microsecond jitter on
    #: near-instant jobs can never quarantine anyone.
    limp_min_gap_s: float = 0.05

    def __post_init__(self) -> None:
        if self.suspect_after_s <= 0:
            raise ValueError("suspect_after_s must be positive")
        if self.dead_after_s <= self.suspect_after_s:
            raise ValueError("dead_after_s must exceed suspect_after_s")
        if self.limp_factor <= 1.0:
            raise ValueError("limp_factor must exceed 1.0")
        if self.limp_min_samples < 1:
            raise ValueError("limp_min_samples must be >= 1")


class MembershipTable:
    """Thread-safe worker table with the liveness/limplock state machine.

    ``on_transition(worker_id, old_state, new_state, reason)`` fires
    outside the lock for every state change, so the coordinator can log
    and count without re-entering membership.
    """

    def __init__(self, config: Optional[MembershipConfig] = None,
                 clock: Callable[[], float] = None,
                 on_transition=None) -> None:
        import time as _time

        self.config = config or MembershipConfig()
        self.clock = clock if clock is not None else _time.monotonic
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._workers: Dict[str, WorkerInfo] = {}

    # -- registration / heartbeats --------------------------------------

    def register(self, worker_id: str, url: str) -> WorkerInfo:
        """Add (or resurrect) a worker as live with fresh statistics."""
        now = self.clock()
        with self._lock:
            old = self._workers.get(worker_id)
            old_state = old.state if old is not None else None
            info = WorkerInfo(
                worker_id=worker_id, url=url, state=LIVE,
                registered_at=now, last_heartbeat_at=now, heartbeats=1,
            )
            self._workers[worker_id] = info
        if old_state is not None and old_state != LIVE:
            self._fire(worker_id, old_state, LIVE, "re-registered")
        elif old_state is None:
            self._fire(worker_id, "", LIVE, "registered")
        return info

    def heartbeat(self, worker_id: str, queue_depth: int = 0,
                  in_flight: int = 0, completed: int = 0,
                  reported_run_s: float = 0.0) -> bool:
        """Record one heartbeat; returns False for unknown/evicted
        workers (the caller answers "re-register")."""
        now = self.clock()
        revived = None
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None or info.state in (DEAD, DECOMMISSIONED,
                                              LIMPLOCKED):
                # Dead, decommissioned and quarantined workers must
                # re-register: resurrection resets their statistics, so
                # a recovered limper starts with a clean latency record.
                return False
            info.last_heartbeat_at = now
            info.heartbeats += 1
            info.queue_depth = queue_depth
            info.in_flight = in_flight
            info.completed = completed
            info.reported_run_s = reported_run_s
            if info.state == SUSPECT:
                revived = info
                info.state = LIVE
        if revived is not None:
            self._fire(worker_id, SUSPECT, LIVE, "heartbeat returned")
        return True

    def observe_run(self, worker_id: str, seconds: float) -> None:
        """Fold one coordinator-observed job latency into the worker."""
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None:
                return
            if info.run_samples == 0:
                info.observed_run_s = seconds
            else:
                info.observed_run_s = (0.7 * info.observed_run_s
                                       + 0.3 * seconds)
            info.run_samples += 1

    # -- state transitions ----------------------------------------------

    def refresh(self) -> List[Tuple[str, str, str, str]]:
        """Advance the liveness/limplock state machine; returns the
        transitions fired as ``(worker_id, old, new, reason)``."""
        now = self.clock()
        fired: List[Tuple[str, str, str, str]] = []
        with self._lock:
            for info in self._workers.values():
                if info.state not in (LIVE, SUSPECT):
                    continue
                age = now - info.last_heartbeat_at
                if age > self.config.dead_after_s:
                    fired.append((info.worker_id, info.state, DEAD,
                                  "no heartbeat for %.1fs" % age))
                    info.state = DEAD
                elif age > self.config.suspect_after_s \
                        and info.state == LIVE:
                    fired.append((info.worker_id, LIVE, SUSPECT,
                                  "heartbeat %.1fs late" % age))
                    info.state = SUSPECT
            fired.extend(self._limplock_check_locked())
        for transition in fired:
            self._fire(*transition)
        return fired

    def _limplock_check_locked(self) -> List[Tuple[str, str, str, str]]:
        """Quarantine live workers far above the peer latency median."""
        judged = [
            info for info in self._workers.values()
            if info.state == LIVE
            and info.run_samples >= self.config.limp_min_samples
        ]
        if len(judged) < 2:
            return []  # no peers ⇒ no median ⇒ no verdict
        fired = []
        for info in judged:
            peers = [peer.observed_run_s for peer in judged
                     if peer is not info]
            median = statistics.median(peers)
            threshold = max(median * self.config.limp_factor,
                            median + self.config.limp_min_gap_s)
            if info.observed_run_s > threshold:
                reason = ("run latency %.3fs vs peer median %.3fs "
                          "(limp factor %.1f)"
                          % (info.observed_run_s, median,
                             self.config.limp_factor))
                info.state = LIMPLOCKED
                info.quarantine_reason = reason
                fired.append((info.worker_id, LIVE, LIMPLOCKED, reason))
        return fired

    def mark_dead(self, worker_id: str, reason: str) -> bool:
        """Declare a worker dead (e.g. its socket refused mid-job)."""
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None or info.state == DEAD:
                return False
            old = info.state
            info.state = DEAD
        self._fire(worker_id, old, DEAD, reason)
        return True

    def quarantine(self, worker_id: str, reason: str) -> bool:
        """Explicitly limplock-quarantine a worker (e.g. a dispatch
        timed out while its heartbeats kept arriving)."""
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None or info.state in (DEAD, LIMPLOCKED,
                                              DECOMMISSIONED):
                return False
            old = info.state
            info.state = LIMPLOCKED
            info.quarantine_reason = reason
        self._fire(worker_id, old, LIMPLOCKED, reason)
        return True

    def decommission(self, worker_id: str, reason: str = "requested") -> bool:
        """Planned removal: unroutable, shard handed off via checkpoint."""
        with self._lock:
            info = self._workers.get(worker_id)
            if info is None or info.state == DECOMMISSIONED:
                return False
            old = info.state
            info.state = DECOMMISSIONED
        self._fire(worker_id, old, DECOMMISSIONED, reason)
        return True

    def count_redispatch(self, worker_id: str, jobs: int = 1) -> None:
        with self._lock:
            info = self._workers.get(worker_id)
            if info is not None:
                info.redispatched_jobs += jobs

    # -- views ----------------------------------------------------------

    def get(self, worker_id: str) -> Optional[WorkerInfo]:
        with self._lock:
            return self._workers.get(worker_id)

    def routable(self) -> List[str]:
        """Worker ids requests may be sent to, sorted for determinism."""
        with self._lock:
            return sorted(
                worker_id for worker_id, info in self._workers.items()
                if info.state in ROUTABLE_STATES
            )

    def url_of(self, worker_id: str) -> Optional[str]:
        with self._lock:
            info = self._workers.get(worker_id)
            return info.url if info is not None else None

    def states(self) -> Dict[str, str]:
        with self._lock:
            return {worker_id: info.state
                    for worker_id, info in self._workers.items()}

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The /readyz membership document (per-worker detail)."""
        now = self.clock()
        with self._lock:
            return {
                worker_id: info.snapshot(now)
                for worker_id, info in sorted(self._workers.items())
            }

    def heartbeat_ages(self) -> Dict[str, float]:
        now = self.clock()
        with self._lock:
            return {
                worker_id: now - info.last_heartbeat_at
                for worker_id, info in self._workers.items()
                if info.heartbeats
            }

    def _fire(self, worker_id: str, old: str, new: str,
              reason: str) -> None:
        if self.on_transition is not None:
            self.on_transition(worker_id, old, new, reason)

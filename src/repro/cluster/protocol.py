"""Cluster wire protocol: JSON messages and the stdlib HTTP client.

Everything on the wire is JSON over HTTP (no new dependencies), and
every job travels as a *description* — the same rule the process pool
enforces (:mod:`repro.parallel.jobs`), extended across sockets via
:func:`repro.parallel.jobs.spec_to_wire`.  Two job kinds exist:

* ``estimate`` — one service request, carried as its validated
  :meth:`~repro.service.api.EstimateRequest.to_payload` snapshot; the
  worker rebuilds the request, arms the deadline watchdog and its own
  circuit breakers, and funnels through ``pool.execute_spec``;
* ``spec`` — a generic serialized :class:`~repro.parallel.jobs.JobSpec`
  (sweep points use this), executed verbatim by ``execute_spec``.

Transport failures (connection refused, reset, socket timeout) raise
:class:`TransportError` — the signal that distinguishes "the worker
died or wedged" (re-dispatch: safe, byte-identical by deterministic
seeds) from "the job ran and answered an error" (never re-dispatched).
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ReproError

__all__ = [
    "JOB_KIND_ESTIMATE",
    "JOB_KIND_SPEC",
    "REASON_NOT_LEADER",
    "REASON_STALE_EPOCH",
    "STATUS_STALE_EPOCH",
    "TransportError",
    "ProtocolError",
    "http_json",
    "post_json",
    "get_json",
]

JOB_KIND_ESTIMATE = "estimate"
JOB_KIND_SPEC = "spec"

#: Epoch fencing (docs/cluster-ha.md): a request stamped with an epoch
#: older than the receiver's is answered ``409 stale-epoch`` — the
#: sender has been deposed and must stand down, never retry.
STATUS_STALE_EPOCH = 409
REASON_STALE_EPOCH = "stale-epoch"

#: A standby coordinator answers data-plane requests with
#: ``503 not_leader`` (plus a ``leader_url`` hint when it has one);
#: failover clients walk their peer list on this reason.
REASON_NOT_LEADER = "not_leader"


class TransportError(ReproError):
    """The peer could not be reached or vanished mid-exchange."""


class ProtocolError(ReproError):
    """The peer answered something that is not valid cluster JSON."""


def _split(url: str) -> Tuple[str, int]:
    parts = urlsplit(url)
    if parts.scheme != "http" or parts.hostname is None:
        raise ProtocolError("cluster URLs must be http://host:port, got %r"
                            % url)
    return parts.hostname, parts.port or 80


def http_json(method: str, url: str, path: str,
              body: Optional[Dict[str, Any]] = None,
              timeout_s: float = 30.0) -> Tuple[int, Dict[str, Any]]:
    """One JSON request/response exchange; returns ``(status, body)``.

    Raises :class:`TransportError` on any socket-level failure and
    :class:`ProtocolError` on a non-JSON response body.
    """
    host, port = _split(url)
    connection = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body, sort_keys=True)
            headers["Content-Type"] = "application/json"
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
        except (OSError, socket.timeout, http.client.HTTPException) as exc:
            raise TransportError(
                "%s %s%s failed: %s: %s"
                % (method, url, path, type(exc).__name__, exc)
            ) from exc
        try:
            decoded = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(
                "%s%s answered non-JSON (%d bytes)" % (url, path, len(raw))
            ) from exc
        if not isinstance(decoded, dict):
            raise ProtocolError("%s%s answered a JSON %s, expected object"
                                % (url, path, type(decoded).__name__))
        return response.status, decoded
    finally:
        connection.close()


def post_json(url: str, path: str, body: Dict[str, Any],
              timeout_s: float = 30.0) -> Tuple[int, Dict[str, Any]]:
    return http_json("POST", url, path, body=body, timeout_s=timeout_s)


def get_json(url: str, path: str,
             timeout_s: float = 30.0) -> Tuple[int, Dict[str, Any]]:
    return http_json("GET", url, path, timeout_s=timeout_s)

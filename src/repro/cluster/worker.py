"""The cluster worker node (``repro worker``).

One worker is a thin HTTP shell around the existing single-process
execution funnel: every job it accepts — a sweep point or a service
estimate — runs through :func:`repro.parallel.pool.execute_spec`, the
same path ``repro explore --jobs N`` and ``repro serve`` use.  The
worker adds exactly three things:

* **registration + heartbeats** — it announces itself to the
  coordinator at startup (bounded retries with the resilience layer's
  deterministic backoff) and then heartbeats on a fixed interval,
  carrying queue depth, in-flight count, completed count and mean run
  seconds.  A heartbeat answered ``unknown`` (the coordinator declared
  this worker dead, quarantined it, or restarted) triggers a
  re-registration, which resets the coordinator-side statistics;
* **the warm-cache bridge** — before a cold warm-start job it pulls the
  coordinator's shared §4.2 cache tier (fingerprint-guarded adoption),
  and after a warm run it pushes its updated snapshot back, so cache
  convergence transfers across nodes;
* **decommission** — ``POST /decommission`` stops admission (503 on
  subsequent ``/run``), which makes the coordinator re-queue this
  worker's shard onto its ring successors (the checkpoint-backed shard
  handoff described in docs/cluster.md).

``--limp-s`` injects an artificial per-job *and* per-heartbeat delay —
the fault hook the limplock tests and the cluster smoke script use to
manufacture an alive-but-slow node.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.parallel.jobs import JobError, JobSpec, job_seed, spec_from_wire
from repro.parallel.pool import execute_spec
from repro.parallel.runners import seed_warm_cache, warm_cache_state
from repro.cluster.protocol import (
    JOB_KIND_ESTIMATE,
    JOB_KIND_SPEC,
    REASON_NOT_LEADER,
    REASON_STALE_EPOCH,
    STATUS_STALE_EPOCH,
    TransportError,
    get_json,
    post_json,
)
from repro.core.explorer import DesignPoint, design_point_payload
from repro.core.report import EnergyReport
from repro.resilience.supervisor import ResilienceConfig, retry_backoff_s
from repro.service.api import BadRequest, parse_request
from repro.service.breaker import BreakerRegistry
from repro.service.httpbase import JsonRequestHandler, QuietHTTPServer
from repro.service.lifecycle import DrainController, install_drain_signals
from repro.systems import builder_spec, system_names

__all__ = ["WorkerConfig", "ClusterWorker", "run_worker"]


@dataclass
class WorkerConfig:
    """Tuning knobs of one worker node (see docs/cluster.md)."""

    coordinator_url: str
    worker_id: str = ""
    host: str = "127.0.0.1"
    port: int = 0
    #: Seconds between heartbeats; the coordinator's ``suspect_after_s``
    #: must exceed this or healthy workers flap to suspect.
    heartbeat_interval_s: float = 1.0
    #: Concurrent job slots; arrivals beyond this queue (and the queue
    #: depth rides the next heartbeat).
    slots: int = 1
    #: Fault injection: sleep this long before each run *and* before
    #: each heartbeat — manufactures an alive-but-slow (limplocked)
    #: node for tests and the cluster smoke script.
    limp_s: float = 0.0
    #: *Initial* registration retry budget (deterministic backoff
    #: between tries).  Once the worker has made contact, losing the
    #: coordinator is not fatal: re-registration retries without bound
    #: at the capped backoff, walking the peer list (docs/cluster-ha.md).
    register_retries: int = 10
    register_backoff_s: float = 0.1
    register_backoff_cap_s: float = 2.0
    #: Additional coordinator URLs (standbys) to fail over through.
    peers: List[str] = field(default_factory=list)
    #: Consecutive heartbeat transport failures before the worker walks
    #: the peer list looking for a new leader.
    heartbeat_miss_limit: int = 3
    breaker_threshold: int = 3
    breaker_recovery_s: float = 30.0
    #: Participate in the coordinator's shared warm-cache tier.
    warm_tier: bool = True

    def __post_init__(self) -> None:
        if not self.worker_id:
            self.worker_id = "worker-%d" % os.getpid()
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if self.limp_s < 0:
            raise ValueError("limp_s must be non-negative")


class ClusterWorker:
    """HTTP-agnostic worker core (the handler is a thin adapter).

    Every job funnels through :func:`execute_spec`, so seeding is
    identical to the process pool's: re-dispatching a job to a
    different worker reproduces the original result byte for byte.
    """

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.url = ""  # set once the HTTP server knows its port
        #: The coordinator currently obeyed; starts at the configured
        #: URL and moves along ``peers`` on failover.
        self.coordinator_url = config.coordinator_url
        #: Highest leader epoch this worker has obeyed.  Jobs and
        #: heartbeats stamped with an older epoch are fenced with
        #: 409 ``stale-epoch`` — the guarantee that a deposed leader
        #: cannot run anything here (docs/cluster-ha.md).
        self.epoch = 0
        self.leader_id = ""
        self._hb_misses = 0
        self.drain = DrainController()
        self.breakers = BreakerRegistry(
            failure_threshold=config.breaker_threshold,
            recovery_s=config.breaker_recovery_s,
        )
        self._lock = threading.Lock()
        self._slots = threading.Semaphore(config.slots)
        self._waiting = 0
        self._in_flight = 0
        self._completed = 0
        self._failed = 0
        self._mean_run_s = 0.0

    # -- load snapshot (heartbeat payload) -------------------------------

    def load_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "queue_depth": self._waiting,
                "in_flight": self._in_flight,
                "completed": self._completed,
                "failed": self._failed,
                "mean_run_s": round(self._mean_run_s, 6),
            }

    # -- registration / heartbeats ---------------------------------------

    def _candidate_coordinators(self) -> List[str]:
        """Current coordinator first, then the configured peer list."""
        candidates = [self.coordinator_url]
        for peer in [self.config.coordinator_url] + list(self.config.peers):
            if peer and peer not in candidates:
                candidates.append(peer)
        return candidates

    def _adopt_leader(self, url: str, reply: Dict[str, Any]) -> None:
        """Record the coordinator that just answered authoritatively."""
        self.coordinator_url = url
        epoch = int(reply.get("epoch") or 0)
        if epoch > self.epoch:
            self.epoch = epoch
        leader = str(reply.get("leader") or "")
        if leader:
            self.leader_id = leader

    def register_backoff_s(self, attempt: int) -> float:
        """Deterministic capped backoff for registration attempts.

        The attempt index is clamped before the exponent so an
        *unbounded* re-registration loop (a worker outliving a long
        coordinator outage) can never overflow ``2.0 ** attempt``; past
        the clamp the cap rules the value anyway.
        """
        return retry_backoff_s(
            "register:%s" % self.config.worker_id, min(attempt, 32),
            self.config.register_backoff_s,
            self.config.register_backoff_cap_s,
        )

    def _register_once(self) -> bool:
        """One registration pass across the candidate coordinators."""
        body = {"worker_id": self.config.worker_id, "url": self.url}
        queue = self._candidate_coordinators()
        tried = set()
        while queue:
            url = queue.pop(0)
            if url in tried:
                continue
            tried.add(url)
            try:
                status, reply = post_json(
                    url, "/cluster/register", body, timeout_s=5.0,
                )
            except TransportError:
                continue
            if status == 200:
                self._adopt_leader(url, reply)
                return True
            if status == 503 and reply.get("reason") == REASON_NOT_LEADER:
                hint = reply.get("leader_url")
                if isinstance(hint, str) and hint and hint not in tried:
                    queue.insert(0, hint)
        return False

    def register(self) -> bool:
        """Announce this worker to the coordinator (bounded retries).

        This is the *initial* contact: if no coordinator answers within
        the retry budget the worker exits 1 — a misconfigured URL
        should fail loudly, not spin forever.
        """
        for attempt in range(1, self.config.register_retries + 1):
            if self._register_once():
                return True
            time.sleep(self.register_backoff_s(attempt))
        return False

    def reregister(self) -> bool:
        """Re-announce after initial contact: unbounded, capped backoff.

        Once the worker has been part of the cluster, a vanished
        coordinator is expected churn (failover in progress), so this
        loop never gives up — it walks the peer list at the capped
        backoff until a leader answers or the worker itself drains.
        """
        attempt = 0
        while not self.drain.draining:
            attempt += 1
            if self._register_once():
                return True
            if self.drain.wait(self.register_backoff_s(attempt)):
                break
        return False

    def heartbeat_once(self) -> None:
        """One heartbeat; re-registers if the coordinator forgot us."""
        body = dict(self.load_snapshot(),
                    worker_id=self.config.worker_id,
                    epoch=self.epoch)
        try:
            status, reply = post_json(
                self.coordinator_url, "/cluster/heartbeat", body,
                timeout_s=5.0,
            )
        except TransportError:
            # Coordinator unreachable; tolerate a few misses (it may be
            # restarting), then walk the peer list for the new leader.
            self._hb_misses += 1
            if self._hb_misses >= self.config.heartbeat_miss_limit:
                self._hb_misses = 0
                self.reregister()
            return
        self._hb_misses = 0
        if status == 503 and reply.get("reason") == REASON_NOT_LEADER:
            # A standby answered (the leader moved): follow its hint or
            # walk the peers until the new leader registers us.
            self.reregister()
            return
        if status == STATUS_STALE_EPOCH \
                and reply.get("reason") == REASON_STALE_EPOCH:
            # We carry a newer epoch than this coordinator — it is the
            # deposed one.  Find the leader that gave us the epoch.
            self.reregister()
            return
        if status == 200:
            self._adopt_leader(self.coordinator_url, reply)
            if reply.get("status") == "unknown":
                # Declared dead or quarantined (or the coordinator
                # restarted): re-register, which resets the
                # coordinator's statistics for this worker — a
                # recovered limper starts with a clean latency record.
                self.reregister()

    def heartbeat_loop(self) -> None:
        while not self.drain.wait(self.config.heartbeat_interval_s):
            if self.config.limp_s > 0:
                time.sleep(self.config.limp_s)
            self.heartbeat_once()

    # -- job execution ---------------------------------------------------

    def handle_run(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Execute one wire job; returns ``(status, response_body)``."""
        if self.drain.draining:
            return 503, {
                "status": "rejected",
                "reason": "draining",
                "worker": self.config.worker_id,
            }
        kind = body.get("kind")
        if kind not in (JOB_KIND_SPEC, JOB_KIND_ESTIMATE):
            return 400, {
                "status": "error",
                "reason": "unknown job kind %r" % kind,
            }
        epoch = int(body.get("epoch") or 0)
        if epoch:  # absent/0 = HA disabled; nothing to fence against
            with self._lock:
                if epoch < self.epoch:
                    # A deposed leader is still dispatching: fence it.
                    # Never run the job — the real leader owns it now.
                    return STATUS_STALE_EPOCH, {
                        "status": "error",
                        "reason": REASON_STALE_EPOCH,
                        "epoch": self.epoch,
                        "worker": self.config.worker_id,
                    }
                if epoch > self.epoch:
                    self.epoch = epoch
                    self.leader_id = str(body.get("leader") or "")
        acquired = self._slots.acquire(blocking=False)
        if not acquired:
            with self._lock:
                self._waiting += 1
            self._slots.acquire()
            with self._lock:
                self._waiting -= 1
        with self._lock:
            self._in_flight += 1
        try:
            if self.config.limp_s > 0:
                time.sleep(self.config.limp_s)
            if kind == JOB_KIND_SPEC:
                status, reply = self._run_spec(body)
            else:
                status, reply = self._run_estimate(body)
        finally:
            with self._lock:
                self._in_flight -= 1
            self._slots.release()
        with self._lock:
            if status == 200:
                self._completed += 1
                run_s = float(reply.get("run_seconds", 0.0))
                self._mean_run_s = (
                    run_s if self._completed == 1
                    else 0.8 * self._mean_run_s + 0.2 * run_s
                )
            else:
                self._failed += 1
        reply.setdefault("worker", self.config.worker_id)
        return status, reply

    def _run_spec(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        try:
            spec = spec_from_wire(body.get("job"))
        except JobError as exc:
            return 400, {"status": "error", "reason": str(exc)}
        warm_key = ""
        if self.config.warm_tier and spec.payload.get("warm_start"):
            warm_key = str(spec.payload.get("warm_key") or "")
            if warm_key:
                self._pull_warm_tier(warm_key)
        try:
            value, seconds, _, _ = execute_spec(spec)
        except Exception as exc:  # noqa: BLE001 - job failure is data
            return 500, {
                "status": "error",
                "reason": "job_failed",
                "label": spec.label,
                "detail": "%s: %s" % (type(exc).__name__, exc),
            }
        if warm_key:
            self._push_warm_tier(warm_key)
        result = self._serialize_value(value)
        if result is None:
            return 500, {
                "status": "error",
                "reason": "unserializable_result",
                "label": spec.label,
                "detail": "job returned %r" % type(value).__name__,
            }
        return 200, {
            "status": "ok",
            "kind": JOB_KIND_SPEC,
            "label": spec.label,
            "run_seconds": seconds,
            "result": result,
        }

    @staticmethod
    def _serialize_value(value: Any) -> Optional[Dict[str, Any]]:
        import dataclasses
        import json

        if isinstance(value, DesignPoint):
            return {"type": "design_point",
                    "payload": design_point_payload(value)}
        if isinstance(value, EnergyReport):
            return {"type": "energy_report",
                    "payload": dataclasses.asdict(value)}
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            return None
        return {"type": "json", "payload": value}

    def _run_estimate(
        self, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            request = parse_request(
                body.get("request"), known_systems=system_names()
            )
        except BadRequest as exc:
            return 400, {"status": "error", "reason": str(exc)}
        # Mirror the single-node service's execution contract
        # (CoEstimationService._execute_in_context): the request's
        # deadline arms the in-run watchdog, and persistent per-site
        # failures trip this worker's own breakers.
        resilience = ResilienceConfig(
            fault_plan=request.fault_plan,
            watchdog_s=request.deadline_s,
            max_retries=request.fault_retries,
            breaker_registry=self.breakers.scoped(request.system),
        )
        builder, builder_kwargs = builder_spec(request.system)
        spec = JobSpec(
            fn="repro.parallel.runners:run_estimate",
            payload={
                "builder": builder,
                "builder_kwargs": dict(builder_kwargs),
                "strategy": request.strategy,
                "label": "%s/%s" % (request.system, request.strategy),
                "resilience": resilience,
            },
            label=request.request_id,
            seed=job_seed(0, request.system),
            trace=body.get("trace"),
        )
        try:
            report, seconds, _, _ = execute_spec(spec)
        except Exception as exc:  # noqa: BLE001 - job failure is data
            return 500, {
                "status": "error",
                "reason": "estimation_failed",
                "request_id": request.request_id,
                "detail": "%s: %s" % (type(exc).__name__, exc),
            }
        import dataclasses

        degraded = any(
            count > 0
            for level, count in report.provenance.items()
            if level != "exact"
        )
        return 200, {
            "status": "ok",
            "kind": JOB_KIND_ESTIMATE,
            "request_id": request.request_id,
            "system": request.system,
            "strategy": request.strategy,
            "total_energy_j": report.total_energy_j,
            "provenance": dict(report.provenance),
            "by_provenance": dict(report.by_provenance),
            "degraded": degraded,
            "breakers": {
                name: snap["state"]
                for name, snap in self.breakers.snapshot().items()
                if name.startswith(request.system + ":")
            },
            "run_seconds": seconds,
            "report": dataclasses.asdict(report),
        }

    # -- warm-cache tier bridge ------------------------------------------

    def _pull_warm_tier(self, warm_key: str) -> None:
        """Seed a cold local cache from the coordinator's tier."""
        try:
            status, reply = get_json(
                self.coordinator_url,
                "/cluster/cache?key=%s" % warm_key, timeout_s=5.0,
            )
        except TransportError:
            return
        state = reply.get("state") if status == 200 else None
        if isinstance(state, dict):
            seed_warm_cache(warm_key, state)

    def _push_warm_tier(self, warm_key: str) -> None:
        """Offer the local cache snapshot to the coordinator's tier."""
        state = warm_cache_state(warm_key)
        if state is None:
            return
        try:
            post_json(
                self.coordinator_url, "/cluster/cache",
                {"key": warm_key, "state": state,
                 "worker": self.config.worker_id},
                timeout_s=5.0,
            )
        except TransportError:
            pass

    # -- decommission ----------------------------------------------------

    def decommission(self, reason: str = "requested") -> Dict[str, Any]:
        self.drain.request_drain(reason)
        return dict(self.load_snapshot(),
                    status="draining",
                    worker=self.config.worker_id)


class _WorkerHandler(JsonRequestHandler):
    KNOWN_PATHS = ("/healthz", "/run", "/decommission")

    @property
    def worker(self) -> ClusterWorker:
        return self.server.worker  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self.respond_json(200, dict(
                self.worker.load_snapshot(),
                status="alive",
                worker=self.worker.config.worker_id,
                draining=self.worker.drain.draining,
                epoch=self.worker.epoch,
                coordinator=self.worker.coordinator_url,
            ))
        else:
            self.respond_json(404, {"status": "error",
                                    "reason": "unknown path %s" % self.path})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/run":
            body = self.read_json_body()
            if body is None:
                return
            status, reply = self.worker.handle_run(body)
            self.respond_json(status, reply)
        elif self.path == "/decommission":
            body = self.read_json_body()
            if body is None:
                return
            self.respond_json(
                200,
                self.worker.decommission(
                    str(body.get("reason", "requested"))
                ),
            )
        else:
            self.respond_json(404, {"status": "error",
                                    "reason": "unknown path %s" % self.path})


def run_worker(
    config: WorkerConfig,
    install_signals: bool = True,
    quiet: bool = False,
    ready_callback=None,
) -> int:
    """The body of ``repro worker``: serve jobs until drained.

    Binds the HTTP server (``port=0`` picks a free port), registers
    with the coordinator, heartbeats until a SIGTERM or a
    ``POST /decommission`` requests a drain, then exits 0.  A failed
    registration (coordinator unreachable after the retry budget)
    exits 1.
    """
    worker = ClusterWorker(config)
    httpd = QuietHTTPServer((config.host, config.port), _WorkerHandler)
    httpd.worker = worker  # type: ignore[attr-defined]
    worker.url = "http://%s:%d" % (config.host, httpd.server_address[1])
    restore = None
    if install_signals:
        restore = install_drain_signals(worker.drain)
    serve_thread = threading.Thread(
        target=httpd.serve_forever, name="cluster-worker-http", daemon=True
    )
    serve_thread.start()
    try:
        if not worker.register():
            if not quiet:
                print("worker %s could not register with %s after %d "
                      "attempt(s)" % (config.worker_id,
                                      config.coordinator_url,
                                      config.register_retries), flush=True)
            return 1
        heartbeat_thread = threading.Thread(
            target=worker.heartbeat_loop, name="cluster-worker-heartbeat",
            daemon=True,
        )
        heartbeat_thread.start()
        if not quiet:
            print("cluster worker %s serving on %s (slots=%d) — "
                  "coordinator %s"
                  % (config.worker_id, worker.url, config.slots,
                     config.coordinator_url), flush=True)
        if ready_callback is not None:
            ready_callback(worker, httpd)
        while not worker.drain.wait(0.2):
            pass
        # Give in-flight runs a moment to finish before the server goes
        # away; new /run calls are already refused with 503.
        deadline = time.time() + 5.0
        while time.time() < deadline:
            if worker.load_snapshot()["in_flight"] == 0:
                break
            time.sleep(0.05)
    finally:
        httpd.shutdown()
        httpd.server_close()
        if restore is not None:
            restore()
        if not quiet:
            snapshot = worker.load_snapshot()
            print("worker %s drained (%s): %d job(s) completed, %d failed"
                  % (config.worker_id,
                     worker.drain.reason or "requested",
                     snapshot["completed"], snapshot["failed"]), flush=True)
    return 0

"""The paper's contribution: power co-estimation and its accelerations.

* :mod:`repro.core.strategy` — the estimation-strategy seam between the
  simulation master and the component-level estimators, plus the basic
  (full, unaccelerated) co-estimation strategy of Section 3.
* :mod:`repro.core.caching` — energy and delay caching (Section 4.2).
* :mod:`repro.core.macromodel` — software (and hardware) power
  macro-modeling (Section 4.1).
* :mod:`repro.core.sampling` — statistical sampling / K-memory dynamic
  sequence compaction (Section 4.3).
* :mod:`repro.core.coestimator` — the user-facing facade.
* :mod:`repro.core.separate` — the separate-estimation baseline used to
  motivate co-estimation (Section 2).
* :mod:`repro.core.report` — energy reports and comparisons.
* :mod:`repro.core.explorer` — communication-architecture design-space
  exploration (Section 5.3).
"""

from repro.core.strategy import Estimate, EstimationJob, EstimationStrategy, FullStrategy
from repro.core.caching import (
    CachingStrategy,
    EnergyCache,
    EnergyCacheConfig,
    WarmStartCache,
    system_fingerprint,
)
from repro.core.macromodel import (
    MacroModelCharacterizer,
    MacromodelStrategy,
    ParameterFile,
)
from repro.core.sampling import KMemoryCompactor, SamplingStrategy, StaticCompactor
from repro.core.report import EnergyReport
from repro.core.coestimator import CoEstimationResult, PowerCoEstimator
from repro.core.separate import SeparateEstimator
from repro.core.explorer import (
    DesignPoint,
    DesignSpaceExplorer,
    PartitionExplorer,
    PartitionPoint,
)

__all__ = [
    "Estimate",
    "EstimationJob",
    "EstimationStrategy",
    "FullStrategy",
    "CachingStrategy",
    "EnergyCache",
    "EnergyCacheConfig",
    "WarmStartCache",
    "system_fingerprint",
    "MacroModelCharacterizer",
    "MacromodelStrategy",
    "ParameterFile",
    "SamplingStrategy",
    "KMemoryCompactor",
    "StaticCompactor",
    "EnergyReport",
    "PowerCoEstimator",
    "CoEstimationResult",
    "SeparateEstimator",
    "DesignSpaceExplorer",
    "DesignPoint",
    "PartitionExplorer",
    "PartitionPoint",
]

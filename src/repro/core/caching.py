"""Energy and delay caching (Section 4.2 of the paper).

During co-simulation, a lookup table keyed on the *execution path* of a
transition (process, transition, branch-outcome signature) accumulates
the mean and variance of the energy and delay reported by the low-level
simulators.  Once a path has been simulated at least
``thresh_iss_calls`` times and its variance is below
``thresh_variance``, the cached mean replaces further ISS / gate-level
invocations.

Both thresholds are user parameters, exactly as in the paper, and
control the aggressiveness/accuracy trade-off: a data-dependent path
(e.g. a loop whose trip count varies) keeps a high variance and is
never served from the cache, which is what the spread-out histogram of
Figure 4(b) illustrates.

Running statistics use Welford's algorithm, so the cache is
numerically stable over millions of updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.strategy import Estimate, EstimationJob, EstimationStrategy


@dataclass
class EnergyCacheConfig:
    """User parameters of the caching technique.

    Attributes:
        thresh_variance: maximum *relative* variance (variance divided
            by squared mean) for a path to be served from the cache.
            The relative form makes one threshold meaningful for both
            nano-joule software paths and pico-joule hardware paths.
        thresh_iss_calls: minimum number of low-level simulations of a
            path before its cached statistics may be used.
        cache_delay: when True (the paper's "energy and delay
            caching"), cycle counts are cached alongside energy.
    """

    thresh_variance: float = 0.02
    thresh_iss_calls: int = 3
    cache_delay: bool = True
    granularity: str = "path"

    GRANULARITIES = ("path", "transition")

    def __post_init__(self) -> None:
        if self.thresh_variance < 0:
            raise ValueError("variance threshold must be non-negative")
        if self.thresh_iss_calls < 1:
            raise ValueError("need at least one low-level call per path")
        if self.granularity not in self.GRANULARITIES:
            raise ValueError(
                "granularity must be one of %s" % (self.GRANULARITIES,)
            )


@dataclass
class _PathStats:
    """Welford accumulators for one path."""

    count: int = 0
    mean_energy: float = 0.0
    m2_energy: float = 0.0
    mean_cycles: float = 0.0
    m2_cycles: float = 0.0

    def update(self, energy: float, cycles: int) -> None:
        self.count += 1
        delta = energy - self.mean_energy
        self.mean_energy += delta / self.count
        self.m2_energy += delta * (energy - self.mean_energy)
        delta_c = cycles - self.mean_cycles
        self.mean_cycles += delta_c / self.count
        self.m2_cycles += delta_c * (cycles - self.mean_cycles)

    @property
    def variance_energy(self) -> float:
        # One sample carries no spread information; by convention its
        # variance is 0 so that thresh_iss_calls alone controls how
        # aggressively single-observation paths may be cached.
        if self.count < 2:
            return 0.0
        return self.m2_energy / (self.count - 1)

    @property
    def relative_variance(self) -> float:
        if self.mean_energy == 0.0:
            return 0.0 if self.m2_energy == 0.0 else float("inf")
        return self.variance_energy / (self.mean_energy * self.mean_energy)


class EnergyCache:
    """The path-keyed energy/delay lookup table."""

    def __init__(self, config: Optional[EnergyCacheConfig] = None) -> None:
        self.config = config or EnergyCacheConfig()
        self.entries: Dict[Tuple, _PathStats] = {}
        self.hits = 0
        self.low_level_calls = 0

    def lookup(self, key: Tuple) -> Optional[Tuple[float, int]]:
        """Cached (energy, cycles) for ``key``, or ``None``.

        ``None`` means the path must still be simulated: either it has
        not been seen often enough, or its energy variance exceeds the
        threshold (Figure 4(c)'s pseudo-code).
        """
        stats = self.entries.get(key)
        if stats is None:
            return None
        if stats.count < self.config.thresh_iss_calls:
            return None
        if stats.relative_variance > self.config.thresh_variance:
            return None
        self.hits += 1
        return stats.mean_energy, int(round(stats.mean_cycles))

    def update(self, key: Tuple, energy: float, cycles: int) -> None:
        """Fold one measured execution into the path's statistics."""
        stats = self.entries.get(key)
        if stats is None:
            stats = _PathStats()
            self.entries[key] = stats
        stats.update(energy, cycles)
        self.low_level_calls += 1

    def path_statistics(self, key: Tuple) -> Optional[_PathStats]:
        """Raw accumulators for one path (for analyses/tests)."""
        return self.entries.get(key)

    @property
    def paths(self) -> int:
        """Number of distinct paths observed."""
        return len(self.entries)

    # -- persistence ---------------------------------------------------------
    #
    # The paper's use case is *iterative* design exploration: the same
    # system is co-estimated again and again with different bus/RTOS
    # parameters.  Because a path's computation cost does not depend on
    # those parameters (bus and cache effects are charged by the
    # master, not folded into the path energy), a cache warmed in one
    # run can legally seed the next session.

    def to_json(self) -> str:
        """Serialize the cache contents (and thresholds) to JSON."""
        import json

        payload = {
            "config": {
                "thresh_variance": self.config.thresh_variance,
                "thresh_iss_calls": self.config.thresh_iss_calls,
                "cache_delay": self.config.cache_delay,
                "granularity": self.config.granularity,
            },
            "entries": [
                {
                    "key": _key_to_json(key),
                    "count": stats.count,
                    "mean_energy": stats.mean_energy,
                    "m2_energy": stats.m2_energy,
                    "mean_cycles": stats.mean_cycles,
                    "m2_cycles": stats.m2_cycles,
                }
                for key, stats in self.entries.items()
            ],
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "EnergyCache":
        """Restore a cache serialized with :meth:`to_json`."""
        import json

        payload = json.loads(text)
        config = EnergyCacheConfig(**payload["config"])
        cache = cls(config)
        for entry in payload["entries"]:
            stats = _PathStats(
                count=entry["count"],
                mean_energy=entry["mean_energy"],
                m2_energy=entry["m2_energy"],
                mean_cycles=entry["mean_cycles"],
                m2_cycles=entry["m2_cycles"],
            )
            cache.entries[_key_from_json(entry["key"])] = stats
        return cache


def _key_to_json(key: Tuple):
    """Tuples nest (path signatures); JSON needs tagged lists."""
    if isinstance(key, tuple):
        return {"t": [_key_to_json(item) for item in key]}
    return key


def _key_from_json(value):
    if isinstance(value, dict):
        return tuple(_key_from_json(item) for item in value["t"])
    return value


class CachingStrategy(EstimationStrategy):
    """Co-estimation accelerated with energy and delay caching."""

    name = "caching"

    def __init__(self, config: Optional[EnergyCacheConfig] = None) -> None:
        self.cache = EnergyCache(config)

    def estimate(self, job: EstimationJob) -> Estimate:
        if self.cache.config.granularity == "path":
            key = job.path_key
        else:
            # Coarser, per-transition granularity (ablation study):
            # distinct control paths share one cache entry, so the
            # variance test has to reject branchy transitions instead
            # of caching each path separately.
            key = (job.cfsm.name, job.transition.name)
        tracer = self.telemetry.tracer
        cached = self.cache.lookup(key)
        if cached is not None:
            energy, cycles = cached
            if tracer.enabled:
                tracer.instant("cache.hit", track="strategy",
                               args={"cfsm": job.cfsm.name,
                                     "transition": job.transition.name})
            if not self.cache.config.cache_delay:
                # Energy-only caching still needs a delay; reuse the
                # cached mean cycles (kept for the ablation study).
                pass
            return Estimate(cycles=cycles, energy=energy, ran_low_level=False)
        if tracer.enabled:
            tracer.instant("cache.miss", track="strategy",
                           args={"cfsm": job.cfsm.name,
                                 "transition": job.transition.name})
        measured = job.run_low_level()
        self.cache.update(key, measured.energy, measured.cycles)
        return measured

    def statistics(self) -> Dict[str, float]:
        return {
            "cache_hits": float(self.cache.hits),
            "low_level_calls": float(self.cache.low_level_calls),
            "distinct_paths": float(self.cache.paths),
        }

    def publish_metrics(self) -> None:
        registry = self.telemetry.metrics
        hits = self.cache.hits
        misses = self.cache.low_level_calls
        lookups = hits + misses
        registry.gauge("strategy.cache.hits").set(hits)
        registry.gauge("strategy.cache.misses").set(misses)
        registry.gauge("strategy.cache.lookups").set(lookups)
        registry.gauge("strategy.cache.distinct_paths").set(self.cache.paths)
        registry.gauge("strategy.cache_hit_rate").set(
            hits / lookups if lookups else 0.0
        )

    def reset(self) -> None:
        self.cache = EnergyCache(self.cache.config)

"""Energy and delay caching (Section 4.2 of the paper).

During co-simulation, a lookup table keyed on the *execution path* of a
transition (process, transition, branch-outcome signature) accumulates
the mean and variance of the energy and delay reported by the low-level
simulators.  Once a path has been simulated at least
``thresh_iss_calls`` times and its variance is below
``thresh_variance``, the cached mean replaces further ISS / gate-level
invocations.

Both thresholds are user parameters, exactly as in the paper, and
control the aggressiveness/accuracy trade-off: a data-dependent path
(e.g. a loop whose trip count varies) keeps a high variance and is
never served from the cache, which is what the spread-out histogram of
Figure 4(b) illustrates.

Running statistics use Welford's algorithm, so the cache is
numerically stable over millions of updates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cfsm.fingerprint import cfsm_digest, cfsm_signature
from repro.core.strategy import Estimate, EstimationJob, EstimationStrategy


@dataclass
class EnergyCacheConfig:
    """User parameters of the caching technique.

    Attributes:
        thresh_variance: maximum *relative* variance (variance divided
            by squared mean) for a path to be served from the cache.
            The relative form makes one threshold meaningful for both
            nano-joule software paths and pico-joule hardware paths.
        thresh_iss_calls: minimum number of low-level simulations of a
            path before its cached statistics may be used.
        cache_delay: when True (the paper's "energy and delay
            caching"), cycle counts are cached alongside energy.
    """

    thresh_variance: float = 0.02
    thresh_iss_calls: int = 3
    cache_delay: bool = True
    granularity: str = "path"

    GRANULARITIES = ("path", "transition")

    def __post_init__(self) -> None:
        if self.thresh_variance < 0:
            raise ValueError("variance threshold must be non-negative")
        if self.thresh_iss_calls < 1:
            raise ValueError("need at least one low-level call per path")
        if self.granularity not in self.GRANULARITIES:
            raise ValueError(
                "granularity must be one of %s" % (self.GRANULARITIES,)
            )


@dataclass
class _PathStats:
    """Welford accumulators for one path."""

    count: int = 0
    mean_energy: float = 0.0
    m2_energy: float = 0.0
    mean_cycles: float = 0.0
    m2_cycles: float = 0.0

    def update(self, energy: float, cycles: int) -> None:
        self.count += 1
        delta = energy - self.mean_energy
        self.mean_energy += delta / self.count
        self.m2_energy += delta * (energy - self.mean_energy)
        delta_c = cycles - self.mean_cycles
        self.mean_cycles += delta_c / self.count
        self.m2_cycles += delta_c * (cycles - self.mean_cycles)

    @property
    def variance_energy(self) -> float:
        # One sample carries no spread information; by convention its
        # variance is 0 so that thresh_iss_calls alone controls how
        # aggressively single-observation paths may be cached.
        if self.count < 2:
            return 0.0
        return self.m2_energy / (self.count - 1)

    @property
    def relative_variance(self) -> float:
        if self.mean_energy == 0.0:
            return 0.0 if self.m2_energy == 0.0 else float("inf")
        return self.variance_energy / (self.mean_energy * self.mean_energy)


class EnergyCache:
    """The path-keyed energy/delay lookup table."""

    def __init__(self, config: Optional[EnergyCacheConfig] = None) -> None:
        self.config = config or EnergyCacheConfig()
        self.entries: Dict[Tuple, _PathStats] = {}
        self.hits = 0
        self.low_level_calls = 0

    def lookup(self, key: Tuple) -> Optional[Tuple[float, int]]:
        """Cached (energy, cycles) for ``key``, or ``None``.

        ``None`` means the path must still be simulated: either it has
        not been seen often enough, or its energy variance exceeds the
        threshold (Figure 4(c)'s pseudo-code).
        """
        stats = self.entries.get(key)
        if stats is None:
            return None
        if stats.count < self.config.thresh_iss_calls:
            return None
        if stats.relative_variance > self.config.thresh_variance:
            return None
        self.hits += 1
        return stats.mean_energy, int(round(stats.mean_cycles))

    def update(self, key: Tuple, energy: float, cycles: int) -> None:
        """Fold one measured execution into the path's statistics."""
        stats = self.entries.get(key)
        if stats is None:
            stats = _PathStats()
            self.entries[key] = stats
        stats.update(energy, cycles)
        self.low_level_calls += 1

    def path_statistics(self, key: Tuple) -> Optional[_PathStats]:
        """Raw accumulators for one path (for analyses/tests)."""
        return self.entries.get(key)

    @property
    def paths(self) -> int:
        """Number of distinct paths observed."""
        return len(self.entries)

    # -- persistence ---------------------------------------------------------
    #
    # The paper's use case is *iterative* design exploration: the same
    # system is co-estimated again and again with different bus/RTOS
    # parameters.  Because a path's computation cost does not depend on
    # those parameters (bus and cache effects are charged by the
    # master, not folded into the path energy), a cache warmed in one
    # run can legally seed the next session.

    def to_payload(self) -> Dict:
        """JSON-able snapshot of the cache contents (and thresholds).

        This is the unit of cache exchange: the warm-start file format
        wraps it (:meth:`to_json`) and the cluster coordinator's shared
        cache tier ships it between nodes verbatim.
        """
        return {
            "config": {
                "thresh_variance": self.config.thresh_variance,
                "thresh_iss_calls": self.config.thresh_iss_calls,
                "cache_delay": self.config.cache_delay,
                "granularity": self.config.granularity,
            },
            "entries": [
                {
                    "key": _key_to_json(key),
                    "count": stats.count,
                    "mean_energy": stats.mean_energy,
                    "m2_energy": stats.m2_energy,
                    "mean_cycles": stats.mean_cycles,
                    "m2_cycles": stats.m2_cycles,
                }
                for key, stats in self.entries.items()
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "EnergyCache":
        """Restore a cache from its :meth:`to_payload` snapshot."""
        config = EnergyCacheConfig(**payload["config"])
        cache = cls(config)
        for entry in payload["entries"]:
            stats = _PathStats(
                count=entry["count"],
                mean_energy=entry["mean_energy"],
                m2_energy=entry["m2_energy"],
                mean_cycles=entry["mean_cycles"],
                m2_cycles=entry["m2_cycles"],
            )
            cache.entries[_key_from_json(entry["key"])] = stats
        return cache

    def to_json(self) -> str:
        """Serialize the cache contents (and thresholds) to JSON."""
        import json

        return json.dumps(self.to_payload(), indent=1)

    @classmethod
    def from_json(cls, text: str) -> "EnergyCache":
        """Restore a cache serialized with :meth:`to_json`."""
        import json

        return cls.from_payload(json.loads(text))


def _key_to_json(key: Tuple):
    """Tuples nest (path signatures); JSON needs tagged lists."""
    if isinstance(key, tuple):
        return {"t": [_key_to_json(item) for item in key]}
    return key


def _key_from_json(value):
    if isinstance(value, dict):
        return tuple(_key_from_json(item) for item in value["t"])
    return value


class CachingStrategy(EstimationStrategy):
    """Co-estimation accelerated with energy and delay caching."""

    name = "caching"

    def __init__(
        self,
        config: Optional[EnergyCacheConfig] = None,
        cache: Optional[EnergyCache] = None,
    ) -> None:
        # An externally supplied cache enables *warm starts*: several
        # runs (e.g. explorer design points differing only in bus
        # parameters) share one converging table.  Its hit/low-level
        # counters then accumulate across those runs.
        if cache is not None and config is not None:
            raise ValueError("pass either a config or a prewarmed cache, not both")
        self.cache = cache if cache is not None else EnergyCache(config)

    def estimate(self, job: EstimationJob) -> Estimate:
        if self.cache.config.granularity == "path":
            key = job.path_key
        else:
            # Coarser, per-transition granularity (ablation study):
            # distinct control paths share one cache entry, so the
            # variance test has to reject branchy transitions instead
            # of caching each path separately.
            key = (job.cfsm.name, job.transition.name)
        tracer = self.telemetry.tracer
        cached = self.cache.lookup(key)
        if cached is not None:
            energy, cycles = cached
            if tracer.enabled:
                tracer.instant("cache.hit", track="strategy",
                               args={"cfsm": job.cfsm.name,
                                     "transition": job.transition.name})
            if not self.cache.config.cache_delay:
                # Energy-only caching still needs a delay; reuse the
                # cached mean cycles (kept for the ablation study).
                pass
            return Estimate(cycles=cycles, energy=energy, ran_low_level=False)
        if tracer.enabled:
            tracer.instant("cache.miss", track="strategy",
                           args={"cfsm": job.cfsm.name,
                                 "transition": job.transition.name})
        measured = job.run_low_level()
        self.cache.update(key, measured.energy, measured.cycles)
        return measured

    def statistics(self) -> Dict[str, float]:
        return {
            "cache_hits": float(self.cache.hits),
            "low_level_calls": float(self.cache.low_level_calls),
            "distinct_paths": float(self.cache.paths),
        }

    def publish_metrics(self) -> None:
        registry = self.telemetry.metrics
        hits = self.cache.hits
        misses = self.cache.low_level_calls
        lookups = hits + misses
        registry.gauge("strategy.cache.hits").set(hits)
        registry.gauge("strategy.cache.misses").set(misses)
        registry.gauge("strategy.cache.lookups").set(lookups)
        registry.gauge("strategy.cache.distinct_paths").set(self.cache.paths)
        registry.gauge("strategy.cache_hit_rate").set(
            hits / lookups if lookups else 0.0
        )

    def reset(self) -> None:
        # Detaches from any shared (warm-start) cache on purpose:
        # a reset strategy must observe cold-cache behaviour.
        self.cache = EnergyCache(self.cache.config)


# -- warm-started caching across design points ------------------------------
#
# Iterative communication-architecture exploration (Section 5.3)
# re-estimates the *same* system under different bus parameters.  The
# paper's energy cache keys on execution paths, and path energies do not
# depend on bus parameters: bus conflicts, DMA bursts and cache misses
# are charged by the simulation master on top of the path energy, never
# folded into it.  A cache converged at one design point is therefore
# legally reusable at every other point that differs only in bus
# parameters — *if* the rest of the system is identical.  The
# fingerprint below is the validity guard: it captures every
# energy-relevant input except the bus parameters, recursively down to
# transition bodies (the tcpip builder, for instance, bakes the DMA
# block size into s-graph constants, so two DMA sizes fingerprint
# differently even though their transition names coincide).


def _config_signature(config) -> tuple:
    """The non-bus knobs of a master configuration.

    ``config.bus_params`` is deliberately excluded — it is exactly what
    the design-space explorer sweeps, and bus costs are charged by the
    master on top of the cached path energies.
    """
    return (
        config.cpu_clock_period_ns,
        repr(config.cache_config),
        repr(config.rtos),
        repr(config.power_model),
        config.library.signature(),
        config.charge_hw_idle,
        config.zero_delay,
        config.zero_delay_epsilon_ns,
    )


def cfsm_warm_start_fingerprint(network, config, cfsm_name: str) -> str:
    """Validity digest of one CFSM's cached path energies.

    A cached (cfsm, transition, path) energy depends on the CFSM's own
    structure, its HW/SW mapping, and the global estimation context —
    never on sibling CFSMs: inter-process effects (event timing, bus
    conflicts, cache misses) are charged by the master per occurrence,
    on top of the cached energy.  That makes per-CFSM sharing sound
    even when another process in the network changed (e.g. only the
    DMA driver bakes the block size into its body, so its cache entries
    are dropped while every other process keeps its converged paths).
    """
    return cfsm_digest(
        network.cfsms[cfsm_name],
        network.mapping.get(cfsm_name),
        _config_signature(config),
    )


def system_fingerprint(network, config) -> str:
    """Digest of everything that shapes path energies except bus params.

    Two (network, config) pairs with equal fingerprints may legally
    share an :class:`EnergyCache`; the excluded knobs
    (``config.bus_params``) are exactly the ones the design-space
    explorer sweeps.
    """
    payload = (
        "repro-warm-start-v1",
        (
            network.name,
            tuple(sorted(network.mapping.items())),
            tuple(sorted(network.bus_events)),
            tuple(sorted(network.environment_inputs)),
            tuple(sorted(network.reset_events)),
            tuple(cfsm_signature(cfsm)
                  for _, cfsm in sorted(network.cfsms.items())),
        ),
        _config_signature(config),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


class WarmStartCache:
    """Explicit opt-in sharing of one energy cache across runs.

    Usage (what ``DesignSpaceExplorer`` does when ``warm_start=True``)::

        warm = WarmStartCache()
        for point in points:
            strategy = warm.strategy_for(network, point_config)
            estimator.estimate(stimuli, strategy=strategy)

    The validity guard works per CFSM: before every run each process is
    fingerprinted (structure + mapping + estimation context, bus
    parameters excluded), and only the cache entries of processes whose
    fingerprint *changed* are dropped.  Sweeping bus priorities keeps
    everything; sweeping the DMA block size drops only the process that
    bakes the block size into its body.  Sharing is never silently
    wrong, only silently absent.
    """

    def __init__(self, config: Optional[EnergyCacheConfig] = None) -> None:
        self.config = config
        self._cache: Optional[EnergyCache] = None
        self._fingerprints: Dict[str, str] = {}
        self.adoptions = 0
        self.invalidations = 0
        self.evicted_entries = 0

    @property
    def cache(self) -> Optional[EnergyCache]:
        """The currently shared cache (``None`` before the first run)."""
        return self._cache

    @property
    def fingerprints(self) -> Dict[str, str]:
        """Per-CFSM fingerprints the current cache was converged under."""
        return dict(self._fingerprints)

    def strategy_for(self, network, config) -> CachingStrategy:
        """A caching strategy backed by the shared cache, guard applied."""
        fingerprints = {
            name: cfsm_warm_start_fingerprint(network, config, name)
            for name in sorted(network.cfsms)
        }
        if self._cache is None:
            self._cache = EnergyCache(self.config)
        else:
            stale = {
                name
                for name in set(fingerprints) | set(self._fingerprints)
                if fingerprints.get(name) != self._fingerprints.get(name)
            }
            if stale:
                self.invalidations += 1
                before = len(self._cache.entries)
                # Both cache key granularities lead with the CFSM name.
                self._cache.entries = {
                    key: stats
                    for key, stats in self._cache.entries.items()
                    if key[0] not in stale
                }
                self.evicted_entries += before - len(self._cache.entries)
            if len(self._cache.entries) > 0 or not stale:
                self.adoptions += 1
        self._fingerprints = fingerprints
        return CachingStrategy(cache=self._cache)

    # -- cross-node exchange (the cluster's shared cache tier) ---------

    @property
    def entry_count(self) -> int:
        return len(self._cache.entries) if self._cache is not None else 0

    def export_state(self) -> Optional[Dict]:
        """JSON-able (fingerprints, cache) snapshot; ``None`` when cold.

        The fingerprints travel *with* the entries, so an importing
        node applies the same per-CFSM validity guard the local path
        applies: adopted entries whose CFSM changed are evicted on the
        next :meth:`strategy_for`, never silently reused.
        """
        if self._cache is None or not self._cache.entries:
            return None
        return {
            "fingerprints": dict(self._fingerprints),
            "cache": self._cache.to_payload(),
        }

    def adopt_state(self, state: Dict) -> int:
        """Replace this cache with an exported snapshot; returns the
        adopted entry count.  The §4.2 statistics are means — merging
        two converged tables would double-count observations, so
        adoption is wholesale, guarded by the shipped fingerprints."""
        self._cache = EnergyCache.from_payload(state["cache"])
        self._fingerprints = dict(state.get("fingerprints") or {})
        self.adoptions += 1
        return len(self._cache.entries)

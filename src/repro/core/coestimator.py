"""The user-facing power co-estimation facade.

``PowerCoEstimator`` wraps network compilation (done once) and runs
co-simulations under any estimation strategy::

    estimator = PowerCoEstimator(network, config)
    baseline = estimator.estimate(stimuli)                   # full co-estimation
    cached = estimator.estimate(stimuli, strategy="caching")
    fast = estimator.estimate(stimuli, strategy="macromodel")
    print(fast.report.speedup_over(baseline.report))

Macro-model characterization (the paper's Figure 3 flow) runs lazily
the first time the ``"macromodel"`` strategy is requested and is reused
across runs, like the pre-characterized library of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.cfsm.events import Event
from repro.cfsm.model import Implementation, Network
from repro.core.caching import CachingStrategy, EnergyCacheConfig
from repro.core.macromodel import (
    HwMacroProfile,
    MacroModelCharacterizer,
    MacromodelStrategy,
    ParameterFile,
    characterize_hw,
)
from repro.core.report import EnergyReport
from repro.core.sampling import SamplingStrategy
from repro.core.strategy import EstimationStrategy, FullStrategy
from repro.master.master import MasterConfig, SimulationMaster
from repro.telemetry import Telemetry


@dataclass
class CoEstimationResult:
    """Report plus the finished master (for waveforms and drill-down)."""

    report: EnergyReport
    master: SimulationMaster

    def power_waveform(self, bin_ns: float, component: Optional[str] = None):
        """Time-binned power waveform, see
        :meth:`repro.master.tracing.EnergyAccountant.power_waveform`."""
        return self.master.accountant.power_waveform(bin_ns, component=component)


class PowerCoEstimator:
    """Run SOC power co-estimation for one network."""

    STRATEGIES = ("full", "caching", "macromodel", "sampling")

    def __init__(self, network: Network, config: Optional[MasterConfig] = None) -> None:
        self.network = network
        self.config = config or MasterConfig()
        self._parameter_file: Optional[ParameterFile] = None
        self._hw_profiles: Optional[Dict[str, HwMacroProfile]] = None

    # -- macro-model library -----------------------------------------------------

    def parameter_file(self) -> ParameterFile:
        """The characterized software macro-model library (lazy)."""
        if self._parameter_file is None:
            characterizer = MacroModelCharacterizer(self.config.power_model)
            self._parameter_file = characterizer.characterize()
        return self._parameter_file

    def hw_profiles(self) -> Dict[str, HwMacroProfile]:
        """Probabilistic RTL profiles for every hardware block (lazy)."""
        if self._hw_profiles is None:
            self._hw_profiles = {}
            for name, cfsm in sorted(self.network.cfsms.items()):
                if self.network.implementation(name) == Implementation.HW:
                    self._hw_profiles[name] = characterize_hw(
                        cfsm, self.config.library
                    )
        return self._hw_profiles

    # -- strategies -----------------------------------------------------------

    def make_strategy(self, spec: Union[str, EstimationStrategy, None]) -> EstimationStrategy:
        """Resolve a strategy name (or pass an instance through)."""
        if spec is None:
            return FullStrategy()
        if isinstance(spec, EstimationStrategy):
            return spec
        if spec == "full":
            return FullStrategy()
        if spec == "caching":
            return CachingStrategy(EnergyCacheConfig())
        if spec == "macromodel":
            return MacromodelStrategy(
                self.parameter_file(), hw_profiles=self.hw_profiles()
            )
        if spec == "sampling":
            return SamplingStrategy()
        raise ValueError(
            "unknown strategy %r (choose from %s)" % (spec, self.STRATEGIES)
        )

    # -- runs -----------------------------------------------------------------

    def estimate(
        self,
        stimuli: List[Event],
        strategy: Union[str, EstimationStrategy, None] = None,
        until_ns: Optional[float] = None,
        shared_memory_image: Optional[Dict[int, int]] = None,
        label: str = "",
        telemetry: Optional["Telemetry"] = None,
    ) -> CoEstimationResult:
        """Run one co-estimation.

        Args:
            stimuli: timestamped environment events.
            strategy: ``"full"`` (default), ``"caching"``,
                ``"macromodel"``, ``"sampling"``, or a strategy object.
            until_ns: optional simulation horizon.
            shared_memory_image: initial contents of the shared memory.
            label: report label (defaults to network + strategy names).
            telemetry: optional :class:`repro.telemetry.Telemetry`
                bundle; when given, the run is traced and metered.

        Returns:
            The report and the finished master.
        """
        resolved = self.make_strategy(strategy)
        master = SimulationMaster(
            self.network, resolved, self.config, telemetry=telemetry
        )
        if shared_memory_image:
            for address, value in shared_memory_image.items():
                master.shared_memory.words[address] = value
        master.run(stimuli, until_ns=until_ns)
        report_label = label or "%s/%s" % (self.network.name, resolved.name)
        return CoEstimationResult(
            report=EnergyReport.from_master(master, report_label), master=master
        )

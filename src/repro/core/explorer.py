"""Communication-architecture design-space exploration (Section 5.3).

The explorer sweeps bus parameters — DMA block size and arbitration
priority assignments — re-running power co-estimation for each
configuration *without recompiling the system description*, exactly the
iterative use-case the paper's acceleration techniques exist for.

Two execution modes:

* :meth:`DesignSpaceExplorer.sweep` — sequential, in-process;
* :func:`parallel_sweep` — the same cross product fanned out over the
  :mod:`repro.parallel` process pool, returning points in the same
  order as the sequential sweep.
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cfsm.events import Event
from repro.cfsm.model import Network
from repro.core.caching import WarmStartCache
from repro.core.coestimator import PowerCoEstimator
from repro.core.report import EnergyReport
from repro.core.strategy import EstimationStrategy
from repro.master.master import MasterConfig


@dataclass
class DesignPoint:
    """One evaluated configuration."""

    dma_block_words: int
    priorities: Dict[str, int]
    priority_label: str
    report: EnergyReport

    @property
    def total_energy_j(self) -> float:
        return self.report.total_energy_j


def priority_permutations(masters: Sequence[str]) -> List[Dict[str, int]]:
    """All strict priority orderings of ``masters``.

    Three bus masters yield the paper's six assignments.
    """
    assignments = []
    for order in itertools.permutations(masters):
        assignments.append({name: rank for rank, name in enumerate(order)})
    return assignments


def priority_label(priorities: Dict[str, int]) -> str:
    """Human-readable ``a > b > c`` rendering of an assignment."""
    ordered = sorted(priorities, key=lambda name: priorities[name])
    return " > ".join(ordered)


class DesignSpaceExplorer:
    """Exhaustive sweep over DMA sizes and priority assignments."""

    def __init__(
        self,
        network: Network,
        base_config: MasterConfig,
        stimuli_factory: Callable[[], List[Event]],
        shared_memory_image: Optional[Dict[int, int]] = None,
    ) -> None:
        self.network = network
        self.base_config = base_config
        self.stimuli_factory = stimuli_factory
        self.shared_memory_image = shared_memory_image
        self.exploration_seconds = 0.0

    def evaluate(
        self,
        dma_block_words: int,
        priorities: Dict[str, int],
        strategy: Union[str, EstimationStrategy, None] = None,
        warm_start: Optional[WarmStartCache] = None,
        telemetry=None,
    ) -> DesignPoint:
        """Co-estimate one (DMA size, priority assignment) point.

        With ``warm_start``, the point runs under a caching strategy
        backed by the shared (validity-guarded) energy cache instead of
        a fresh one, overriding ``strategy``.
        """
        bus_params = self.base_config.bus_params.with_dma(dma_block_words)
        bus_params = bus_params.with_priorities(priorities)
        config = replace(self.base_config, bus_params=bus_params)
        if warm_start is not None:
            strategy = warm_start.strategy_for(self.network, config)
        estimator = PowerCoEstimator(self.network, config)
        result = estimator.estimate(
            self.stimuli_factory(),
            strategy=strategy,
            shared_memory_image=self.shared_memory_image,
            label="dma=%d,%s" % (dma_block_words, priority_label(priorities)),
            telemetry=telemetry,
        )
        return DesignPoint(
            dma_block_words=dma_block_words,
            priorities=dict(priorities),
            priority_label=priority_label(priorities),
            report=result.report,
        )

    def sweep(
        self,
        dma_sizes: Iterable[int],
        priority_assignments: Iterable[Dict[str, int]],
        strategy: Union[str, EstimationStrategy, None] = None,
        warm_start: Optional[WarmStartCache] = None,
        telemetry=None,
    ) -> List[DesignPoint]:
        """Exhaustively evaluate the cross product of the two sweeps."""
        started = _time.perf_counter()
        points = []
        for priorities in priority_assignments:
            for dma in dma_sizes:
                points.append(
                    self.evaluate(
                        dma,
                        priorities,
                        strategy=strategy,
                        warm_start=warm_start,
                        telemetry=telemetry,
                    )
                )
        self.exploration_seconds = _time.perf_counter() - started
        return points

    @staticmethod
    def minimum_energy_point(points: Sequence[DesignPoint]) -> DesignPoint:
        """The lowest-total-energy configuration of a sweep."""
        if not points:
            raise ValueError("no design points evaluated")
        return min(points, key=lambda point: point.total_energy_j)


def _builder_id(builder: Union[str, Callable]) -> str:
    """Stable identity of a system builder for checkpoint signatures."""
    if isinstance(builder, str):
        return builder
    return "%s:%s" % (
        getattr(builder, "__module__", "?"),
        getattr(builder, "__qualname__", getattr(builder, "__name__", "?")),
    )


def design_point_payload(point: DesignPoint) -> Dict[str, Any]:
    """A JSON-serializable snapshot of one finished design point."""
    import dataclasses

    return {
        "dma_block_words": point.dma_block_words,
        "priorities": dict(point.priorities),
        "priority_label": point.priority_label,
        "report": dataclasses.asdict(point.report),
    }


def sweep_summary_rows(points: Sequence[DesignPoint]) -> List[Dict[str, Any]]:
    """Deterministic summary rows of a sweep (no timing fields).

    Timing (``*_seconds``) is excluded, so a resumed, re-dispatched, or
    cluster-sharded sweep produces rows byte-identical to an
    uninterrupted single-process run — the property the kill-mid-sweep
    tests assert.  ``repro explore --out`` and the cluster coordinator's
    ``/sweep`` response both emit exactly these rows.
    """
    import dataclasses

    rows = []
    for point in points:
        report = {
            key: value
            for key, value in dataclasses.asdict(point.report).items()
            if not key.endswith("_seconds")
        }
        rows.append(
            {
                "dma_block_words": point.dma_block_words,
                "priority_label": point.priority_label,
                "total_energy_j": point.total_energy_j,
                "report": report,
            }
        )
    return rows


def design_point_from_payload(payload: Dict[str, Any]) -> DesignPoint:
    """Rebuild a :class:`DesignPoint` from its checkpoint payload.

    JSON round-trips Python floats exactly (shortest-repr), so a
    restored point's report carries the very numbers the original run
    produced — the property that makes resumed sweeps byte-identical.
    """
    return DesignPoint(
        dma_block_words=payload["dma_block_words"],
        priorities=dict(payload["priorities"]),
        priority_label=payload["priority_label"],
        report=EnergyReport(**payload["report"]),
    )


def parallel_sweep(
    builder: Union[str, Callable],
    dma_sizes: Sequence[int],
    priority_assignments: Sequence[Dict[str, int]],
    strategy: str = "caching",
    jobs: int = 1,
    warm_start: bool = False,
    builder_kwargs: Optional[Dict[str, Any]] = None,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    collect_telemetry: bool = False,
    root_seed: int = 0,
    stats=None,
    checkpoint_path: Optional[str] = None,
    resume_path: Optional[str] = None,
    fault_plan=None,
    fault_retries: int = 1,
    on_point=None,
) -> Tuple[List[DesignPoint], List[Any]]:
    """The explorer cross product over the :mod:`repro.parallel` pool.

    ``builder`` names a system-bundle factory (``"module:callable"``,
    e.g. ``"repro.systems.tcpip:build_system"``) that every worker
    resolves and calls in-process with ``dma_block_words``,
    ``priorities``, and ``builder_kwargs`` — jobs carry descriptions,
    never live simulators.

    Jobs are *ordered DMA-major* (all priority assignments of one DMA
    size adjacent) so a worker's warm-start cache sees the fewest
    invalidations, but the returned points are re-ordered to match
    :meth:`DesignSpaceExplorer.sweep` (priorities-major).  With
    ``jobs=1`` everything runs inline in this process.

    Returns ``(points, job_results)``; failed jobs (after retries) show
    up as ``None`` points with the failure recorded on the job result.
    Pass a :class:`~repro.parallel.PoolStats` as ``stats`` for
    retry/timeout/crash accounting.

    **Checkpoint/resume.**  With ``checkpoint_path``, the sweep
    atomically rewrites that file after every completed point, so a
    killed sweep loses at most the points in flight.  With
    ``resume_path``, previously completed points are loaded (after a
    sweep-signature compatibility check) and *not* re-run; their
    restored reports are byte-identical to the original run's.  The two
    paths are usually the same file.  ``fault_plan`` arms fault
    injection inside every point's master, and ``on_point`` is invoked
    with each finalized job result in completion order (the point list
    itself excludes no one: both run and restored points come back in
    sweep order).
    """
    from repro.parallel import JobSpec, job_seed, run_jobs
    from repro.parallel.jobs import JobResult
    from repro.resilience.checkpoint import (
        CheckpointWriter,
        load_checkpoint,
        resilience_signature,
        sweep_signature,
    )

    dma_sizes = list(dma_sizes)
    priority_assignments = [dict(p) for p in priority_assignments]
    specs: List[JobSpec] = []
    sweep_order: List[Tuple[int, int]] = []  # spec index -> (prio i, dma i)
    warm_key = "%s/%s" % (builder, strategy)
    payload_common: Dict[str, Any] = {
        "builder": builder,
        "strategy": strategy,
        "builder_kwargs": dict(builder_kwargs or {}),
        "warm_start": warm_start,
        "warm_key": warm_key,
    }
    if fault_plan is not None:
        payload_common["fault_plan"] = fault_plan
        payload_common["fault_retries"] = fault_retries
    for dma_index, dma in enumerate(dma_sizes):
        for prio_index, priorities in enumerate(priority_assignments):
            label = "dma=%d,%s" % (dma, priority_label(priorities))
            payload = dict(payload_common)
            payload["dma_block_words"] = dma
            payload["priorities"] = priorities
            specs.append(
                JobSpec(
                    fn="repro.parallel.runners:run_explorer_point",
                    payload=payload,
                    label=label,
                    seed=job_seed(root_seed, label),
                    timeout_s=timeout_s,
                    max_retries=max_retries,
                    collect_telemetry=collect_telemetry,
                )
            )
            sweep_order.append((prio_index, dma_index))

    # The signature covers everything that changes what a point means —
    # but not the point list, so a partial checkpoint can seed a larger
    # sweep over the same system.  The resilience section is folded in
    # unconditionally (even all-None), so a no-fault checkpoint and a
    # faulted one can never be mixed.
    signature = sweep_signature(
        builder=_builder_id(builder),
        strategy=strategy,
        builder_kwargs=dict(builder_kwargs or {}),
        warm_start=warm_start,
        root_seed=root_seed,
        resilience=resilience_signature(
            fault_plan=fault_plan,
            fault_retries=(fault_retries if fault_plan is not None else None),
            timeout_s=timeout_s,
        ),
    )
    completed_payloads: Dict[str, Any] = {}
    if resume_path is not None:
        completed_payloads = load_checkpoint(resume_path, signature)
    writer = (
        CheckpointWriter(checkpoint_path, signature, completed=completed_payloads)
        if checkpoint_path is not None
        else None
    )
    if writer is not None:
        writer.flush()  # the file exists from the first moment on

    prefilled: Dict[int, JobResult] = {}
    todo_specs: List[JobSpec] = []
    todo_indices: List[int] = []
    for index, spec in enumerate(specs):
        payload = completed_payloads.get(spec.label)
        if payload is not None:
            prefilled[index] = JobResult(
                label=spec.label,
                index=index,
                value=design_point_from_payload(payload),
                attempts=0,
                worker_pid=0,
            )
        else:
            todo_specs.append(spec)
            todo_indices.append(index)

    def handle(result) -> None:
        if writer is not None and result.error is None and result.value is not None:
            writer.record_and_flush(
                result.label,
                design_point_payload(result.value),
                meta={"total_points": len(specs)},
            )
        if on_point is not None:
            on_point(result)

    fresh = (
        run_jobs(todo_specs, jobs=jobs, stats=stats, on_result=handle)
        if todo_specs
        else []
    )
    results: Dict[int, JobResult] = dict(prefilled)
    for index, result in zip(todo_indices, fresh):
        result.index = index
        results[index] = result
    by_sweep = sorted(range(len(specs)), key=lambda i: sweep_order[i])
    points = [results[i].value for i in by_sweep]
    ordered_results = [results[i] for i in by_sweep]
    return points, ordered_results


@dataclass
class PartitionPoint:
    """One evaluated HW/SW partition."""

    assignment: Dict[str, str]
    label: str
    report: EnergyReport

    @property
    def total_energy_j(self) -> float:
        return self.report.total_energy_j


def partition_label(assignment: Dict[str, str]) -> str:
    """Compact ``name:hw,name:sw`` rendering of a partition."""
    return ",".join("%s:%s" % (name, assignment[name])
                    for name in sorted(assignment))


class PartitionExplorer:
    """Coarse-grained HW/SW partitioning exploration.

    The paper reports using the co-estimation tool (and the relative
    accuracy of macro-modeling) "by attempting to rank several
    different HW/SW partitions"; this explorer evaluates a list of
    partition assignments under any estimation strategy.  Processes
    using operations the hardware datapath cannot implement (MUL, DIV,
    MOD) must stay in software — synthesis raises a clear error
    otherwise.
    """

    def __init__(
        self,
        network: Network,
        config: MasterConfig,
        stimuli_factory: Callable[[], List[Event]],
        shared_memory_image: Optional[Dict[int, int]] = None,
    ) -> None:
        self.network = network
        self.config = config
        self.stimuli_factory = stimuli_factory
        self.shared_memory_image = shared_memory_image

    def evaluate(
        self,
        assignment: Dict[str, str],
        strategy: Union[str, EstimationStrategy, None] = None,
    ) -> PartitionPoint:
        """Co-estimate one partition; the network mapping is restored
        afterwards."""
        original = dict(self.network.mapping)
        try:
            for name, implementation in assignment.items():
                self.network.remap(name, implementation)
            estimator = PowerCoEstimator(self.network, self.config)
            result = estimator.estimate(
                self.stimuli_factory(),
                strategy=strategy,
                shared_memory_image=self.shared_memory_image,
                label="partition(%s)" % partition_label(assignment),
            )
        finally:
            self.network.mapping.update(original)
        return PartitionPoint(
            assignment=dict(assignment),
            label=partition_label(assignment),
            report=result.report,
        )

    def sweep(
        self,
        assignments: Iterable[Dict[str, str]],
        strategy: Union[str, EstimationStrategy, None] = None,
    ) -> List[PartitionPoint]:
        """Evaluate every partition assignment."""
        return [self.evaluate(assignment, strategy=strategy)
                for assignment in assignments]

    @staticmethod
    def ranking(points: Sequence[PartitionPoint]) -> List[PartitionPoint]:
        """Points sorted from lowest to highest total energy."""
        return sorted(points, key=lambda point: point.total_energy_j)

"""Communication-architecture design-space exploration (Section 5.3).

The explorer sweeps bus parameters — DMA block size and arbitration
priority assignments — re-running power co-estimation for each
configuration *without recompiling the system description*, exactly the
iterative use-case the paper's acceleration techniques exist for.

Two execution modes:

* :meth:`DesignSpaceExplorer.sweep` — sequential, in-process;
* :func:`parallel_sweep` — the same cross product fanned out over the
  :mod:`repro.parallel` process pool, returning points in the same
  order as the sequential sweep.
"""

from __future__ import annotations

import itertools
import time as _time
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cfsm.events import Event
from repro.cfsm.model import Network
from repro.core.caching import WarmStartCache
from repro.core.coestimator import PowerCoEstimator
from repro.core.report import EnergyReport
from repro.core.strategy import EstimationStrategy
from repro.master.master import MasterConfig


@dataclass
class DesignPoint:
    """One evaluated configuration."""

    dma_block_words: int
    priorities: Dict[str, int]
    priority_label: str
    report: EnergyReport

    @property
    def total_energy_j(self) -> float:
        return self.report.total_energy_j


def priority_permutations(masters: Sequence[str]) -> List[Dict[str, int]]:
    """All strict priority orderings of ``masters``.

    Three bus masters yield the paper's six assignments.
    """
    assignments = []
    for order in itertools.permutations(masters):
        assignments.append({name: rank for rank, name in enumerate(order)})
    return assignments


def priority_label(priorities: Dict[str, int]) -> str:
    """Human-readable ``a > b > c`` rendering of an assignment."""
    ordered = sorted(priorities, key=lambda name: priorities[name])
    return " > ".join(ordered)


class DesignSpaceExplorer:
    """Exhaustive sweep over DMA sizes and priority assignments."""

    def __init__(
        self,
        network: Network,
        base_config: MasterConfig,
        stimuli_factory: Callable[[], List[Event]],
        shared_memory_image: Optional[Dict[int, int]] = None,
    ) -> None:
        self.network = network
        self.base_config = base_config
        self.stimuli_factory = stimuli_factory
        self.shared_memory_image = shared_memory_image
        self.exploration_seconds = 0.0

    def evaluate(
        self,
        dma_block_words: int,
        priorities: Dict[str, int],
        strategy: Union[str, EstimationStrategy, None] = None,
        warm_start: Optional[WarmStartCache] = None,
        telemetry=None,
    ) -> DesignPoint:
        """Co-estimate one (DMA size, priority assignment) point.

        With ``warm_start``, the point runs under a caching strategy
        backed by the shared (validity-guarded) energy cache instead of
        a fresh one, overriding ``strategy``.
        """
        bus_params = self.base_config.bus_params.with_dma(dma_block_words)
        bus_params = bus_params.with_priorities(priorities)
        config = replace(self.base_config, bus_params=bus_params)
        if warm_start is not None:
            strategy = warm_start.strategy_for(self.network, config)
        estimator = PowerCoEstimator(self.network, config)
        result = estimator.estimate(
            self.stimuli_factory(),
            strategy=strategy,
            shared_memory_image=self.shared_memory_image,
            label="dma=%d,%s" % (dma_block_words, priority_label(priorities)),
            telemetry=telemetry,
        )
        return DesignPoint(
            dma_block_words=dma_block_words,
            priorities=dict(priorities),
            priority_label=priority_label(priorities),
            report=result.report,
        )

    def sweep(
        self,
        dma_sizes: Iterable[int],
        priority_assignments: Iterable[Dict[str, int]],
        strategy: Union[str, EstimationStrategy, None] = None,
        warm_start: Optional[WarmStartCache] = None,
        telemetry=None,
    ) -> List[DesignPoint]:
        """Exhaustively evaluate the cross product of the two sweeps."""
        started = _time.perf_counter()
        points = []
        for priorities in priority_assignments:
            for dma in dma_sizes:
                points.append(
                    self.evaluate(
                        dma,
                        priorities,
                        strategy=strategy,
                        warm_start=warm_start,
                        telemetry=telemetry,
                    )
                )
        self.exploration_seconds = _time.perf_counter() - started
        return points

    @staticmethod
    def minimum_energy_point(points: Sequence[DesignPoint]) -> DesignPoint:
        """The lowest-total-energy configuration of a sweep."""
        if not points:
            raise ValueError("no design points evaluated")
        return min(points, key=lambda point: point.total_energy_j)


def parallel_sweep(
    builder: Union[str, Callable],
    dma_sizes: Sequence[int],
    priority_assignments: Sequence[Dict[str, int]],
    strategy: str = "caching",
    jobs: int = 1,
    warm_start: bool = False,
    builder_kwargs: Optional[Dict[str, Any]] = None,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
    collect_telemetry: bool = False,
    root_seed: int = 0,
    stats=None,
) -> Tuple[List[DesignPoint], List[Any]]:
    """The explorer cross product over the :mod:`repro.parallel` pool.

    ``builder`` names a system-bundle factory (``"module:callable"``,
    e.g. ``"repro.systems.tcpip:build_system"``) that every worker
    resolves and calls in-process with ``dma_block_words``,
    ``priorities``, and ``builder_kwargs`` — jobs carry descriptions,
    never live simulators.

    Jobs are *ordered DMA-major* (all priority assignments of one DMA
    size adjacent) so a worker's warm-start cache sees the fewest
    invalidations, but the returned points are re-ordered to match
    :meth:`DesignSpaceExplorer.sweep` (priorities-major).  With
    ``jobs=1`` everything runs inline in this process.

    Returns ``(points, job_results)``; failed jobs (after retries) show
    up as ``None`` points with the failure recorded on the job result.
    Pass a :class:`~repro.parallel.PoolStats` as ``stats`` for
    retry/timeout/crash accounting.
    """
    from repro.parallel import JobSpec, job_seed, run_jobs

    dma_sizes = list(dma_sizes)
    priority_assignments = [dict(p) for p in priority_assignments]
    specs: List[JobSpec] = []
    sweep_order: List[Tuple[int, int]] = []  # spec index -> (prio i, dma i)
    warm_key = "%s/%s" % (builder, strategy)
    for dma_index, dma in enumerate(dma_sizes):
        for prio_index, priorities in enumerate(priority_assignments):
            label = "dma=%d,%s" % (dma, priority_label(priorities))
            specs.append(
                JobSpec(
                    fn="repro.parallel.runners:run_explorer_point",
                    payload={
                        "builder": builder,
                        "dma_block_words": dma,
                        "priorities": priorities,
                        "strategy": strategy,
                        "builder_kwargs": dict(builder_kwargs or {}),
                        "warm_start": warm_start,
                        "warm_key": warm_key,
                    },
                    label=label,
                    seed=job_seed(root_seed, label),
                    timeout_s=timeout_s,
                    max_retries=max_retries,
                    collect_telemetry=collect_telemetry,
                )
            )
            sweep_order.append((prio_index, dma_index))
    results = run_jobs(specs, jobs=jobs, stats=stats)
    by_sweep = sorted(range(len(specs)), key=lambda i: sweep_order[i])
    points = [results[i].value for i in by_sweep]
    ordered_results = [results[i] for i in by_sweep]
    return points, ordered_results


@dataclass
class PartitionPoint:
    """One evaluated HW/SW partition."""

    assignment: Dict[str, str]
    label: str
    report: EnergyReport

    @property
    def total_energy_j(self) -> float:
        return self.report.total_energy_j


def partition_label(assignment: Dict[str, str]) -> str:
    """Compact ``name:hw,name:sw`` rendering of a partition."""
    return ",".join("%s:%s" % (name, assignment[name])
                    for name in sorted(assignment))


class PartitionExplorer:
    """Coarse-grained HW/SW partitioning exploration.

    The paper reports using the co-estimation tool (and the relative
    accuracy of macro-modeling) "by attempting to rank several
    different HW/SW partitions"; this explorer evaluates a list of
    partition assignments under any estimation strategy.  Processes
    using operations the hardware datapath cannot implement (MUL, DIV,
    MOD) must stay in software — synthesis raises a clear error
    otherwise.
    """

    def __init__(
        self,
        network: Network,
        config: MasterConfig,
        stimuli_factory: Callable[[], List[Event]],
        shared_memory_image: Optional[Dict[int, int]] = None,
    ) -> None:
        self.network = network
        self.config = config
        self.stimuli_factory = stimuli_factory
        self.shared_memory_image = shared_memory_image

    def evaluate(
        self,
        assignment: Dict[str, str],
        strategy: Union[str, EstimationStrategy, None] = None,
    ) -> PartitionPoint:
        """Co-estimate one partition; the network mapping is restored
        afterwards."""
        original = dict(self.network.mapping)
        try:
            for name, implementation in assignment.items():
                self.network.remap(name, implementation)
            estimator = PowerCoEstimator(self.network, self.config)
            result = estimator.estimate(
                self.stimuli_factory(),
                strategy=strategy,
                shared_memory_image=self.shared_memory_image,
                label="partition(%s)" % partition_label(assignment),
            )
        finally:
            self.network.mapping.update(original)
        return PartitionPoint(
            assignment=dict(assignment),
            label=partition_label(assignment),
            report=result.report,
        )

    def sweep(
        self,
        assignments: Iterable[Dict[str, str]],
        strategy: Union[str, EstimationStrategy, None] = None,
    ) -> List[PartitionPoint]:
        """Evaluate every partition assignment."""
        return [self.evaluate(assignment, strategy=strategy)
                for assignment in assignments]

    @staticmethod
    def ranking(points: Sequence[PartitionPoint]) -> List[PartitionPoint]:
        """Points sorted from lowest to highest total energy."""
        return sorted(points, key=lambda point: point.total_energy_j)

"""Software (and hardware) power macro-modeling (Section 4.1).

**Software.**  Every POLIS macro-operation (AVV, AIVC, AEMIT, TIVAR*,
the arithmetic/relational/logical library functions, shared-memory
accesses) is pre-characterized by compiling a small template program to
the target instruction set and measuring it on the ISS — the flow of
the paper's Figure 3.  Costs are *peeled*: a template whose trace
contains several macro-operations is charged the template measurement
minus the already-characterized cost of the other operations, so the
macro-model reproduces every template measurement exactly.

The characterized costs are stored in a :class:`ParameterFile` that
serializes to the paper's text format (``.unit_energy nJ``,
``.time AVV 5`` ...).

At co-simulation time, :class:`MacromodelStrategy` sums the per-op
delay/energy over a transition's macro-operation trace without ever
invoking the ISS.  Because each statement's characterized cost includes
once-per-template overheads (pipeline fill, call/return) that a real
multi-statement path pays only once, the additive model systematically
*over-estimates* — the conservatism the paper reports in Table 2.

**Hardware.**  Hardware-mapped processes are macro-modeled with an
RTL-style aggregate model: one controller state per lowered micro-op
(a fixed cycles-per-macro-op table derived from the RTL lowering rules)
times an expected energy-per-cycle obtained from probabilistic
switching-activity analysis of the synthesized netlist.
"""

from __future__ import annotations

import io
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple
from repro.errors import ReproError

from repro.cfsm.actions import MacroOpKind, all_macro_op_names
from repro.cfsm.builder import CfsmBuilder
from repro.cfsm.events import Event
from repro.cfsm.expr import (
    BinaryOp,
    Const,
    UnaryOp,
    Var,
    event_value,
    var,
)
from repro.cfsm.model import Cfsm
from repro.cfsm.sgraph import assign, emit, if_, loop, shared_read, shared_write
from repro.core.strategy import Estimate, EstimationJob, EstimationStrategy
from repro.sw.codegen import SHARED_MEMORY_BASE, compile_cfsm, transition_label
from repro.sw.iss import Iss
from repro.sw.power_model import InstructionPowerModel

#: Controller states per macro-operation in the RTL lowering
#: (see repro.hw.synth.RtlCompiler): one ALU transfer per assignment or
#: operator, one TEST per branch, TEST+decrement per loop iteration,
#: two cycles per shared-memory access, one per emission.
HW_MACRO_CYCLES: Dict[str, float] = {
    MacroOpKind.AVV: 1.0,
    MacroOpKind.AIVC: 1.0,
    MacroOpKind.AEMIT: 1.0,
    MacroOpKind.ADETECT: 0.0,
    MacroOpKind.TIVART: 1.0,
    MacroOpKind.TIVARF: 1.0,
    MacroOpKind.TLOOPT: 2.0,
    MacroOpKind.TLOOPF: 1.0,
    MacroOpKind.ASHRD: 2.0,
    MacroOpKind.ASHWR: 2.0,
}
#: Arithmetic/relational/logical ops are one shared-ALU state each.
for _name in all_macro_op_names():
    HW_MACRO_CYCLES.setdefault(_name, 1.0)

#: Fixed per-transition controller overhead: the go/idle handshake
#: state plus the DONE state.
HW_TRANSITION_OVERHEAD_CYCLES = 2.0


class CharacterizationError(ReproError):
    """Raised when a macro-operation cannot be characterized."""


@dataclass
class MacroCost:
    """Characterized cost of one macro-operation."""

    time_cycles: float = 0.0
    size_bytes: float = 0.0
    energy_j: float = 0.0


class ParameterFile:
    """The macro-model library, in the paper's parameter-file format."""

    UNITS = {"time": "cycle", "size": "byte", "energy": "nJ"}

    def __init__(self, costs: Optional[Dict[str, MacroCost]] = None) -> None:
        self.costs: Dict[str, MacroCost] = dict(costs or {})

    def cost(self, op_name: str) -> MacroCost:
        """Cost record for ``op_name`` (zero cost if uncharacterized)."""
        return self.costs.get(op_name, MacroCost())

    def set_cost(self, op_name: str, cost: MacroCost) -> None:
        self.costs[op_name] = cost

    def estimate_ops(self, op_names: List[str]) -> Tuple[float, float]:
        """(cycles, energy joules) for a macro-operation stream."""
        cycles = 0.0
        energy = 0.0
        for name in op_names:
            cost = self.costs.get(name)
            if cost is not None:
                cycles += cost.time_cycles
                energy += cost.energy_j
        return cycles, energy

    def serialize(self) -> str:
        """Render in the paper's ``.unit_*`` / ``.time`` / ... format."""
        out = io.StringIO()
        for metric, unit in self.UNITS.items():
            out.write(".unit_%s %s\n" % (metric, unit))
        for name in sorted(self.costs):
            out.write(".time %s %g\n" % (name, self.costs[name].time_cycles))
        for name in sorted(self.costs):
            out.write(".size %s %g\n" % (name, self.costs[name].size_bytes))
        for name in sorted(self.costs):
            out.write(".energy %s %g\n" % (name, self.costs[name].energy_j * 1e9))
        return out.getvalue()

    @classmethod
    def parse(cls, text: str) -> "ParameterFile":
        """Parse the textual format produced by :meth:`serialize`."""
        costs: Dict[str, MacroCost] = {}
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("#") or line.startswith(".unit"):
                continue
            parts = line.split()
            if len(parts) != 3 or not parts[0].startswith("."):
                raise ValueError("malformed parameter line: %r" % raw_line)
            metric = parts[0][1:]
            name = parts[1]
            value = float(parts[2])
            cost = costs.setdefault(name, MacroCost())
            if metric == "time":
                cost.time_cycles = value
            elif metric == "size":
                cost.size_bytes = value
            elif metric == "energy":
                cost.energy_j = value * 1e-9
            else:
                raise ValueError("unknown metric %r" % metric)
        return cls(costs)


class _SharedStub:
    """Shared-memory stand-in used while tracing templates."""

    def read(self, address: int) -> int:
        return 11

    def write(self, address: int, value: int) -> None:
        return None


def _binary_names() -> List[str]:
    from repro.cfsm.expr import binary_operator_names

    return list(binary_operator_names())


def _unary_names() -> List[str]:
    from repro.cfsm.expr import unary_operator_names

    return list(unary_operator_names())


class MacroModelCharacterizer:
    """Builds a :class:`ParameterFile` by measuring template programs.

    The flow matches the paper's Figure 3: template program ->
    compiler -> object file -> ISS -> parameter file.
    """

    def __init__(self, power_model: Optional[InstructionPowerModel] = None) -> None:
        self.power_model = power_model or InstructionPowerModel.default_sparclite()
        self.characterization_seconds = 0.0

    # -- template construction -------------------------------------------------

    def _template_cfsm(self, body, initial_b: int = 5, initial_c: int = 3) -> Cfsm:
        builder = CfsmBuilder("tmpl")
        builder.input("T", has_value=True)
        builder.output("E", has_value=True)
        builder.var("a", 0).var("b", initial_b).var("c", initial_c)
        builder.transition("t", trigger=["T"], body=body)
        return builder.build()

    def _measure(self, cfsm: Cfsm) -> Tuple[List[str], MacroCost]:
        """Trace + measure the single transition of a template CFSM."""
        started = _time.perf_counter()
        transition = cfsm.transitions[0]
        buffer = cfsm.make_buffer()
        state = cfsm.initial_state()
        buffer.deliver(Event("T", value=9, time=0.0))
        trace = cfsm.react(transition, buffer, state, shared=_SharedStub())

        compiled = compile_cfsm(cfsm)
        memory = {
            compiled.memory_map.variables[name]: value
            for name, value in cfsm.initial_state().items()
        }
        memory[compiled.memory_map.event_mailboxes["T"]] = 9
        for address, value in trace.shared_reads:
            memory[SHARED_MEMORY_BASE + address] = value
        iss = Iss(compiled.program, self.power_model)
        result = iss.run(transition_label(cfsm.name, "t"), memory)
        self.characterization_seconds += _time.perf_counter() - started
        measured = MacroCost(
            time_cycles=float(result.cycles),
            size_bytes=float(compiled.program.size_bytes),
            energy_j=result.energy,
        )
        return trace.op_names, measured

    def _peel(
        self, costs: Dict[str, MacroCost], op_names: List[str], target: str,
        measured: MacroCost,
    ) -> MacroCost:
        """Attribute ``measured`` minus known co-occurring ops to ``target``."""
        time_cycles = measured.time_cycles
        size = measured.size_bytes
        energy = measured.energy_j
        for name in op_names:
            if name == target:
                continue
            if name not in costs:
                raise CharacterizationError(
                    "template for %s uses uncharacterized op %s" % (target, name)
                )
            time_cycles -= costs[name].time_cycles
            size -= costs[name].size_bytes
            energy -= costs[name].energy_j
        occurrences = op_names.count(target)
        if occurrences == 0:
            raise CharacterizationError(
                "template for %s does not execute it (trace: %s)"
                % (target, op_names)
            )
        return MacroCost(
            time_cycles=max(0.0, time_cycles / occurrences),
            size_bytes=max(0.0, size / occurrences),
            energy_j=max(0.0, energy / occurrences),
        )

    # -- the characterization run ------------------------------------------------

    def characterize(self) -> ParameterFile:
        """Measure every macro-operation and return the parameter file."""
        costs: Dict[str, MacroCost] = {}

        def measure_into(target: str, body) -> None:
            ops, measured = self._measure(self._template_cfsm(body))
            costs[target] = self._peel(costs, ops, target, measured)

        measure_into(MacroOpKind.AVV, [assign("a", var("b"))])
        measure_into(MacroOpKind.AIVC, [assign("a", Const(7))])
        measure_into(MacroOpKind.ADETECT, [assign("a", event_value("T"))])
        measure_into(MacroOpKind.AEMIT, [emit("E", Const(1))])

        for name in _binary_names():
            measure_into(
                name, [assign("a", BinaryOp(name, Var("b"), Var("c")))]
            )
        for name in _unary_names():
            measure_into(name, [assign("a", UnaryOp(name, Var("b")))])

        # Tests: a template whose condition is a bare variable traces
        # exactly one TIVART/TIVARF.
        ops_t, measured_t = self._measure(
            self._template_cfsm([if_(var("b"), [], [])], initial_b=1)
        )
        costs[MacroOpKind.TIVART] = self._peel(
            costs, ops_t, MacroOpKind.TIVART, measured_t
        )
        ops_f, measured_f = self._measure(
            self._template_cfsm([if_(var("b"), [], [])], initial_b=0)
        )
        costs[MacroOpKind.TIVARF] = self._peel(
            costs, ops_f, MacroOpKind.TIVARF, measured_f
        )

        # Loops: solve the (TLOOPT, TLOOPF) pair from one- and
        # two-iteration templates.
        _, measured_1 = self._measure(self._template_cfsm([loop(Const(1), [])]))
        _, measured_2 = self._measure(self._template_cfsm([loop(Const(2), [])]))
        tloopt = MacroCost(
            time_cycles=max(0.0, measured_2.time_cycles - measured_1.time_cycles),
            size_bytes=0.0,
            energy_j=max(0.0, measured_2.energy_j - measured_1.energy_j),
        )
        costs[MacroOpKind.TLOOPT] = tloopt
        costs[MacroOpKind.TLOOPF] = MacroCost(
            time_cycles=max(0.0, measured_1.time_cycles - tloopt.time_cycles),
            size_bytes=measured_1.size_bytes,
            energy_j=max(0.0, measured_1.energy_j - tloopt.energy_j),
        )

        measure_into(MacroOpKind.ASHRD, [shared_read("a", Const(4))])
        measure_into(MacroOpKind.ASHWR, [shared_write(Const(4), var("b"))])

        return ParameterFile(costs)


@dataclass
class HwMacroProfile:
    """Aggregate RTL macro-model for one hardware block."""

    energy_per_cycle_j: float
    clock_period_ns: float


def characterize_hw(cfsm: Cfsm, library=None) -> HwMacroProfile:
    """Build the probabilistic energy-per-cycle profile of one block."""
    from repro.hw.library import GateLibrary
    from repro.hw.power import probabilistic_power
    from repro.hw.synth import synthesize_cfsm

    lib = library or GateLibrary.default()
    block = synthesize_cfsm(cfsm, lib)
    period_s = cfsm.clock_period_ns * 1e-9
    power = probabilistic_power(block.netlist, period_s, lib)
    return HwMacroProfile(
        energy_per_cycle_j=power * period_s,
        clock_period_ns=cfsm.clock_period_ns,
    )


class MacromodelStrategy(EstimationStrategy):
    """Co-estimation accelerated with power macro-modeling."""

    name = "macromodel"

    def __init__(
        self,
        parameter_file: ParameterFile,
        hw_profiles: Optional[Dict[str, HwMacroProfile]] = None,
        hw_profile_factory: Optional[Callable[[Cfsm], HwMacroProfile]] = None,
    ) -> None:
        self.parameter_file = parameter_file
        self.hw_profiles: Dict[str, HwMacroProfile] = dict(hw_profiles or {})
        self.hw_profile_factory = hw_profile_factory or characterize_hw
        self.sw_estimates = 0
        self.hw_estimates = 0

    def estimate(self, job: EstimationJob) -> Estimate:
        tracer = self.telemetry.tracer
        if tracer.enabled:
            tracer.instant("macromodel.annotate", track="strategy",
                           args={"cfsm": job.cfsm.name,
                                 "transition": job.transition.name,
                                 "ops": len(job.op_names)})
        if job.kind == "sw":
            self.sw_estimates += 1
            cycles, energy = self.parameter_file.estimate_ops(job.op_names)
            return Estimate(
                cycles=int(round(cycles)), energy=energy, ran_low_level=False
            )
        self.hw_estimates += 1
        profile = self.hw_profiles.get(job.cfsm.name)
        if profile is None:
            profile = self.hw_profile_factory(job.cfsm)
            self.hw_profiles[job.cfsm.name] = profile
        cycles = HW_TRANSITION_OVERHEAD_CYCLES
        for name in job.op_names:
            cycles += HW_MACRO_CYCLES.get(name, 1.0)
        energy = cycles * profile.energy_per_cycle_j
        return Estimate(cycles=int(round(cycles)), energy=energy, ran_low_level=False)

    def statistics(self) -> Dict[str, float]:
        return {
            "sw_estimates": float(self.sw_estimates),
            "hw_estimates": float(self.hw_estimates),
        }

    def publish_metrics(self) -> None:
        registry = self.telemetry.metrics
        registry.gauge("strategy.macromodel.sw_estimates").set(self.sw_estimates)
        registry.gauge("strategy.macromodel.hw_estimates").set(self.hw_estimates)
        registry.gauge("strategy.macromodel.annotations").set(
            self.sw_estimates + self.hw_estimates
        )

    def reset(self) -> None:
        self.sw_estimates = 0
        self.hw_estimates = 0

"""Energy reports: the output of one co-estimation run.

An :class:`EnergyReport` snapshots everything the paper's tool
displays: per-component and per-category energy, transition and
simulator-invocation counts, bus/cache/RTOS statistics, the CPU time
spent in low-level simulation, and (optionally) power waveforms.
Reports compare against each other to produce the speedup and error
columns of Tables 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class EnergyReport:
    """Result summary of one co-estimation run."""

    label: str
    total_energy_j: float
    by_component: Dict[str, float]
    by_category: Dict[str, float]
    end_time_ns: float
    wall_seconds: float
    low_level_seconds: float
    transitions: Dict[str, int]
    iss_invocations: int
    hw_invocations: int
    strategy_name: str
    strategy_stats: Dict[str, float]
    bus_stats: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, float] = field(default_factory=dict)
    rtos_stats: Dict[str, float] = field(default_factory=dict)
    lost_events: int = 0
    truncated: bool = False
    #: Transition counts by estimate provenance (exact/cached/
    #: macromodel/degraded) — the run's accuracy fingerprint.
    provenance: Dict[str, int] = field(default_factory=dict)
    #: Energy attributed per provenance level (joules).
    by_provenance: Dict[str, float] = field(default_factory=dict)
    #: Resilience-layer counters (faults injected, retries, watchdog
    #: timeouts, fallbacks per rung, component bypasses).
    resilience_stats: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_master(cls, master, label: str = "") -> "EnergyReport":
        """Snapshot a finished :class:`SimulationMaster`."""
        stats = master.stats
        bus = master.bus
        report = cls(
            label=label or master.network.name,
            total_energy_j=master.accountant.total_energy,
            by_component=dict(master.accountant.by_component),
            by_category=dict(master.accountant.by_category),
            end_time_ns=stats.end_time_ns,
            wall_seconds=stats.wall_seconds,
            low_level_seconds=stats.low_level_seconds,
            transitions=dict(stats.transitions),
            iss_invocations=stats.iss_invocations,
            hw_invocations=stats.hw_invocations,
            strategy_name=master.strategy.name,
            strategy_stats=dict(stats.strategy),
            lost_events=stats.lost_events,
            truncated=stats.truncated,
            provenance=dict(stats.provenance),
            by_provenance=dict(master.accountant.by_provenance),
            resilience_stats=dict(stats.resilience),
        )
        report.bus_stats = {
            "energy_j": bus.total_energy,
            "grants": float(bus.total_grants),
            "words": float(bus.total_words),
            "busy_cycles": float(bus.total_busy_cycles),
            "utilization": bus.utilization(stats.end_time_ns),
        }
        if master.cache is not None:
            cache = master.cache
            report.cache_stats = {
                "accesses": float(cache.accesses),
                "misses": float(cache.misses),
                "hit_rate": cache.hit_rate,
                "energy_j": cache.total_energy,
                "stall_cycles": float(cache.total_stall_cycles),
            }
        report.rtos_stats = {
            "dispatches": float(master.rtos.dispatches),
            "context_switches": float(master.rtos.context_switches),
            "overhead_cycles": float(master.rtos.overhead_cycles),
        }
        return report

    # -- derived quantities ---------------------------------------------------

    def component_energy(self, name: str) -> float:
        """Energy attributed to one component (0 if unknown)."""
        return self.by_component.get(name, 0.0)

    @property
    def total_transitions(self) -> int:
        return sum(self.transitions.values())

    def average_power_w(self) -> float:
        """System average power over the simulated interval."""
        if self.end_time_ns <= 0:
            return 0.0
        return self.total_energy_j / (self.end_time_ns * 1e-9)

    # -- comparisons -------------------------------------------------------------

    def speedup_over(self, baseline: "EnergyReport") -> float:
        """CPU-time speedup of this run relative to ``baseline``.

        This is the paper's speedup metric: the ratio of co-estimation
        CPU times (baseline / accelerated).
        """
        if self.wall_seconds <= 0:
            return float("inf")
        return baseline.wall_seconds / self.wall_seconds

    def energy_error_vs(self, baseline: "EnergyReport") -> float:
        """Absolute relative error of the total energy estimate (%).

        The paper's Table 2 error metric: the accelerated estimate
        compared against the unaccelerated (Orig.) co-estimation.
        """
        if baseline.total_energy_j == 0:
            return 0.0 if self.total_energy_j == 0 else float("inf")
        return abs(self.total_energy_j - baseline.total_energy_j) / abs(
            baseline.total_energy_j
        ) * 100.0

    # -- rendering -------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the report for external tooling/dashboards."""
        import dataclasses
        import json

        return json.dumps(dataclasses.asdict(self), indent=1, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "EnergyReport":
        """Restore a report serialized with :meth:`to_json`."""
        import json

        return cls(**json.loads(text))

    def summary_lines(self) -> List[str]:
        """Human-readable multi-line summary."""
        lines = [
            "Energy report: %s (strategy: %s)" % (self.label, self.strategy_name),
            "  total energy     : %.6g mJ" % (self.total_energy_j * 1e3),
            "  simulated time   : %.6g us" % (self.end_time_ns * 1e-3),
            "  avg system power : %.6g mW" % (self.average_power_w() * 1e3),
            "  wall-clock time  : %.3f s (low-level: %.3f s)"
            % (self.wall_seconds, self.low_level_seconds),
            "  transitions      : %d   ISS calls: %d   gate-level calls: %d"
            % (self.total_transitions, self.iss_invocations, self.hw_invocations),
        ]
        if self.provenance:
            lines.append(
                "  provenance       : "
                + "  ".join(
                    "%s=%d" % (level, self.provenance[level])
                    for level in sorted(self.provenance)
                )
            )
        nonzero_resilience = {
            key: value for key, value in self.resilience_stats.items() if value
        }
        if nonzero_resilience:
            lines.append(
                "  resilience       : "
                + "  ".join(
                    "%s=%g" % (key, nonzero_resilience[key])
                    for key in sorted(nonzero_resilience)
                )
            )
        for name in sorted(self.by_component):
            lines.append(
                "    %-18s %.6g uJ" % (name, self.by_component[name] * 1e6)
            )
        return lines

    def pretty(self) -> str:
        """The summary as one string."""
        return "\n".join(self.summary_lines())

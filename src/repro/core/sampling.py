"""Statistical sampling / K-memory dynamic sequence compaction (§4.3).

The paper compacts the vector/instruction stream dispatched to a
low-level simulator so that the simulated subsequence preserves the
single-step and two-step (lag-one) statistics of the original stream.
In this framework the stream the master generates is the sequence of
transition executions (each execution expands to a fixed
vector/instruction sequence determined by its path), so compaction is
applied at that granularity:

* the *signature* of a stream element is its (process, transition,
  path) key — preserving the signature distribution preserves the
  single-step statistics;
* the compactor keys its sampling decision on the **bigram**
  ``(previous signature, signature)``, preserving lag-one statistics
  (inter-instruction circuit-state effects in the power model depend on
  exactly this adjacency);
* for every bigram, the first ``warmup`` occurrences and every
  ``period``-th occurrence afterwards are dispatched to the low-level
  simulator; the rest reuse the most recent measurement for that
  bigram.  The expected dispatch fraction is ``1/period`` on hot
  bigrams — the compaction ratio;
* the bigram table is bounded to ``k_memory`` entries with LRU
  eviction — the *K-memory* of the dynamic compaction procedure.

Unlike energy caching (Section 4.2) there is no variance test: the
technique trades a controlled, ratio-shaped error for speed even on
high-variance paths, which is why the two techniques compose.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generic, Hashable, Optional, Tuple, TypeVar

from repro.core.strategy import Estimate, EstimationJob, EstimationStrategy

T = TypeVar("T")


@dataclass
class _BigramState:
    count: int = 0
    last_value: Optional[object] = None


class KMemoryCompactor(Generic[T]):
    """Bounded-memory, bigram-preserving stream subsampler."""

    def __init__(self, period: int = 8, warmup: int = 2, k_memory: int = 4096) -> None:
        if period < 1:
            raise ValueError("compaction period must be >= 1")
        if warmup < 1:
            raise ValueError("warmup must be >= 1 (something must be measured)")
        if k_memory < 1:
            raise ValueError("k_memory must be >= 1")
        self.period = period
        self.warmup = warmup
        self.k_memory = k_memory
        self._table: "OrderedDict[Tuple, _BigramState]" = OrderedDict()
        self._previous_signature: Hashable = None
        self.dispatched = 0
        self.reused = 0
        self.evictions = 0

    def _state_for(self, bigram: Tuple) -> _BigramState:
        state = self._table.get(bigram)
        if state is None:
            state = _BigramState()
            self._table[bigram] = state
            if len(self._table) > self.k_memory:
                self._table.popitem(last=False)
                self.evictions += 1
        else:
            self._table.move_to_end(bigram)
        return state

    def should_dispatch(self, signature: Hashable) -> bool:
        """Whether this element must be simulated (vs. reused)."""
        bigram = (self._previous_signature, signature)
        state = self._state_for(bigram)
        if state.count < self.warmup:
            return True
        if state.last_value is None:
            return True
        return (state.count % self.period) == 0

    def observe(self, signature: Hashable, value: Optional[T]) -> Optional[T]:
        """Record one element; returns the reusable value when skipped.

        Call with ``value`` set when the element was dispatched (the
        fresh measurement) and with ``value=None`` when asking for the
        reuse value.
        """
        bigram = (self._previous_signature, signature)
        state = self._state_for(bigram)
        state.count += 1
        self._previous_signature = signature
        if value is not None:
            state.last_value = value
            self.dispatched += 1
            return value
        self.reused += 1
        return state.last_value

    @property
    def compaction_ratio(self) -> float:
        """Fraction of the stream actually dispatched."""
        total = self.dispatched + self.reused
        if total == 0:
            return 1.0
        return self.dispatched / total


@dataclass(frozen=True)
class CompactionPick:
    """One element selected by the static compactor."""

    index: int
    weight: float


class StaticCompactor:
    """Static sequence compaction (the whole sequence is available).

    The paper notes static compaction is more powerful than dynamic
    because the entire original sequence ``I`` can be inspected before
    composing ``I'``.  This implementation selects, for every distinct
    *bigram* of element signatures, an evenly-strided subset of its
    occurrences sized ``ceil(count * ratio)``, and assigns each pick
    the weight ``count / picked`` so that weighted sums over the
    compacted sequence are unbiased per bigram — single-step and
    lag-one statistics are preserved exactly by construction.
    """

    def __init__(self, ratio: float) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ValueError("compaction ratio must be in (0, 1]")
        self.ratio = ratio

    def compact(self, signatures) -> "list[CompactionPick]":
        """Select representatives from a signature sequence.

        Returns picks in increasing index order; ``sum(weights)``
        equals the original length.
        """
        occurrences: Dict[Tuple, list] = {}
        previous = None
        for index, signature in enumerate(signatures):
            occurrences.setdefault((previous, signature), []).append(index)
            previous = signature

        picks = []
        for indices in occurrences.values():
            count = len(indices)
            keep = max(1, int(count * self.ratio + 0.999999))
            stride = count / keep
            chosen = sorted({indices[min(count - 1, int(k * stride))]
                             for k in range(keep)})
            weight = count / len(chosen)
            for index in chosen:
                picks.append(CompactionPick(index=index, weight=weight))
        picks.sort(key=lambda pick: pick.index)
        return picks

    def estimate_total(self, signatures, values) -> float:
        """Weighted total of ``values`` over the compacted subset.

        ``values[i]`` is the per-element quantity (e.g. energy); only
        the selected indices are consulted, modeling "simulate only the
        compacted sequence, extrapolate the rest".
        """
        if len(signatures) != len(values):
            raise ValueError("signatures and values must align")
        return sum(pick.weight * values[pick.index]
                   for pick in self.compact(signatures))


class SamplingStrategy(EstimationStrategy):
    """Co-estimation accelerated with K-memory dynamic compaction."""

    name = "sampling"

    def __init__(self, period: int = 8, warmup: int = 2, k_memory: int = 4096) -> None:
        self.compactor: KMemoryCompactor[Estimate] = KMemoryCompactor(
            period=period, warmup=warmup, k_memory=k_memory
        )

    def estimate(self, job: EstimationJob) -> Estimate:
        signature = job.path_key
        tracer = self.telemetry.tracer
        if self.compactor.should_dispatch(signature):
            if tracer.enabled:
                tracer.instant("sampling.dispatch", track="strategy",
                               args={"cfsm": job.cfsm.name,
                                     "transition": job.transition.name})
            measured = job.run_low_level()
            self.compactor.observe(signature, measured)
            return measured
        reused = self.compactor.observe(signature, None)
        if reused is None:  # pragma: no cover - defended by should_dispatch
            measured = job.run_low_level()
            self.compactor.observe(signature, measured)
            return measured
        if tracer.enabled:
            tracer.instant("sampling.skip", track="strategy",
                           args={"cfsm": job.cfsm.name,
                                 "transition": job.transition.name})
        return Estimate(
            cycles=reused.cycles, energy=reused.energy, ran_low_level=False
        )

    def statistics(self) -> Dict[str, float]:
        return {
            "dispatched": float(self.compactor.dispatched),
            "reused": float(self.compactor.reused),
            "compaction_ratio": self.compactor.compaction_ratio,
            "evictions": float(self.compactor.evictions),
        }

    def publish_metrics(self) -> None:
        registry = self.telemetry.metrics
        compactor = self.compactor
        registry.gauge("strategy.sampling.dispatched").set(compactor.dispatched)
        registry.gauge("strategy.sampling.reused").set(compactor.reused)
        registry.gauge("strategy.sampling.evictions").set(compactor.evictions)
        registry.gauge("strategy.sampling_dispatch_ratio").set(
            compactor.compaction_ratio
        )

    def reset(self) -> None:
        self.compactor = KMemoryCompactor(
            period=self.compactor.period,
            warmup=self.compactor.warmup,
            k_memory=self.compactor.k_memory,
        )

"""Separate (non-co-simulated) power estimation: the Section 2 baseline.

This reproduces the first experiment of the paper's motivation section:

1. a *timing-independent* behavioral simulation of the system is run
   (every transition takes negligible nominal time) and the input
   traces of every component are captured;
2. each component's power estimator — the ISS for software, the
   gate-level simulator for hardware — is then driven *independently*
   by its captured trace, with no interaction between components.

Because the captured traces ignore the real timing of the system, any
timing-functionality inter-dependence (e.g. a computation whose
iteration count depends on *when* an event arrived) is estimated
against the wrong data, which is exactly the error demonstrated by
Figure 1(b).
"""

from __future__ import annotations

import dataclasses
import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cfsm.events import Event
from repro.cfsm.model import Implementation, Network
from repro.core.report import EnergyReport
from repro.estimation import FullStrategy
from repro.hw.estimator import HardwarePowerSimulator
from repro.master.master import MasterConfig, ReactionRecord, SimulationMaster
from repro.sw.codegen import SHARED_MEMORY_BASE, compile_cfsm, transition_label
from repro.sw.iss import Iss


@dataclass
class SeparateReport:
    """Per-component results of separate estimation."""

    label: str
    energy_by_component: Dict[str, float] = field(default_factory=dict)
    cycles_by_component: Dict[str, float] = field(default_factory=dict)
    reactions_by_component: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def total_energy_j(self) -> float:
        return sum(self.energy_by_component.values())

    def component_energy(self, name: str) -> float:
        return self.energy_by_component.get(name, 0.0)

    def underestimation_vs(self, coest: EnergyReport, component: str) -> float:
        """Percentage by which this estimate under-shoots co-estimation.

        Positive values mean separate estimation under-estimates the
        component (the paper reports ~62% for the consumer process).
        """
        reference = coest.component_energy(component)
        if reference == 0:
            return 0.0
        return (reference - self.component_energy(component)) / reference * 100.0


class SeparateEstimator:
    """Two-phase separate estimation for a network."""

    def __init__(self, network: Network, config: Optional[MasterConfig] = None) -> None:
        self.network = network
        self.config = config or MasterConfig()

    def capture_traces(
        self,
        stimuli: List[Event],
        until_ns: Optional[float] = None,
        shared_memory_image: Optional[Dict[int, int]] = None,
    ) -> List[ReactionRecord]:
        """Phase 1: timing-independent behavioral simulation."""
        zero_config = dataclasses.replace(
            self.config, zero_delay=True, record_reactions=True
        )
        master = SimulationMaster(self.network, FullStrategy(), zero_config)
        if shared_memory_image:
            for address, value in shared_memory_image.items():
                master.shared_memory.words[address] = value
        master.run(stimuli, until_ns=until_ns)
        return master.reactions

    def estimate(
        self,
        stimuli: List[Event],
        until_ns: Optional[float] = None,
        shared_memory_image: Optional[Dict[int, int]] = None,
        label: str = "",
    ) -> SeparateReport:
        """Capture traces, then drive each component estimator alone."""
        started = _time.perf_counter()
        reactions = self.capture_traces(stimuli, until_ns, shared_memory_image)
        report = SeparateReport(label=label or "%s/separate" % self.network.name)

        per_component: Dict[str, List[ReactionRecord]] = {}
        for record in reactions:
            per_component.setdefault(record.cfsm, []).append(record)

        for name in sorted(per_component):
            records = per_component[name]
            report.reactions_by_component[name] = len(records)
            if self.network.implementation(name) == Implementation.SW:
                energy, cycles = self._replay_software(name, records)
            else:
                energy, cycles = self._replay_hardware(name, records)
            report.energy_by_component[name] = energy
            report.cycles_by_component[name] = cycles

        report.wall_seconds = _time.perf_counter() - started
        return report

    # -- per-component replays ---------------------------------------------------

    def _replay_software(self, name: str, records: List[ReactionRecord]):
        cfsm = self.network.cfsms[name]
        compiled = compile_cfsm(cfsm)
        memory = {
            compiled.memory_map.variables[var]: value
            for var, value in cfsm.initial_state().items()
        }
        iss = Iss(compiled.program, self.config.power_model)
        energy = 0.0
        cycles = 0.0
        for record in records:
            for event, value in record.consumed_values.items():
                if event in compiled.memory_map.event_mailboxes:
                    memory[compiled.memory_map.event_mailboxes[event]] = value
            for address, value in record.trace.shared_reads:
                memory[SHARED_MEMORY_BASE + address] = value
            result = iss.run(transition_label(name, record.transition), memory)
            energy += result.energy
            cycles += result.cycles
        return energy, cycles

    def _replay_hardware(self, name: str, records: List[ReactionRecord]):
        cfsm = self.network.cfsms[name]
        simulator = HardwarePowerSimulator(cfsm, self.config.library)
        energy = 0.0
        cycles = 0.0
        for record in records:
            result = simulator.run_transition(
                record.transition,
                record.consumed_values,
                read_values=[value for _, value in record.trace.shared_reads],
            )
            energy += result.energy
            cycles += result.cycles
        return energy, cycles

"""Estimation-strategy protocol (re-exported).

The classes live in :mod:`repro.estimation` so that the simulation
master can import them without triggering the :mod:`repro.core`
package initialization (which itself imports the master).  Importing
them from here is the documented public path.
"""

from repro.estimation import (  # noqa: F401
    Estimate,
    EstimationJob,
    EstimationStrategy,
    FullStrategy,
)

__all__ = ["Estimate", "EstimationJob", "EstimationStrategy", "FullStrategy"]

"""The unified exception hierarchy of the co-estimation framework.

Every error the framework raises on purpose derives from
:class:`ReproError`, so callers embedding the tool (explorers, job
pools, services) can catch one type instead of importing a dozen
module-specific exceptions.  Component modules keep their historical
exception *names* (``IssError``, ``HwEstimatorError``, ...) — only
their base class changed — so existing ``except`` clauses and error
messages are untouched.

``ReproError`` optionally carries structured context — which component
failed, on which execution path, at what simulation time — so that
supervisors and logs can attribute a failure without parsing message
strings::

    raise IssError("unknown opcode", component="consumer",
                   sim_time_ns=1250.0)

The context keywords are always optional; plain ``raise IssError(msg)``
behaves exactly as before.

This module is intentionally a leaf: it imports nothing from the rest
of the package, so any module (including :mod:`repro.master` and
:mod:`repro.parallel`, which sit on opposite sides of the import graph)
can depend on it.
"""

from __future__ import annotations

from typing import Dict, Optional, Union


class ReproError(Exception):
    """Base class of every framework-raised error.

    Attributes:
        component: the CFSM / subsystem the failure is attributed to.
        path_id: identity of the execution path (e.g. an
            :attr:`~repro.estimation.EstimationJob.path_key`) in flight.
        sim_time_ns: simulation time at which the failure occurred.
    """

    def __init__(
        self,
        *args,
        component: Optional[str] = None,
        path_id: Optional[Union[str, tuple]] = None,
        sim_time_ns: Optional[float] = None,
    ) -> None:
        super().__init__(*args)
        self.component = component
        self.path_id = path_id
        self.sim_time_ns = sim_time_ns

    @property
    def context(self) -> Dict[str, object]:
        """The non-empty structured context fields as a dict."""
        fields = {
            "component": self.component,
            "path_id": self.path_id,
            "sim_time_ns": self.sim_time_ns,
        }
        return {key: value for key, value in fields.items() if value is not None}

    def describe(self) -> str:
        """The message plus bracketed context, for logs/reports."""
        message = super().__str__()
        context = self.context
        if not context:
            return message
        rendered = ", ".join(
            "%s=%r" % (key, context[key]) for key in sorted(context)
        )
        return "%s [%s]" % (message, rendered) if message else "[%s]" % rendered

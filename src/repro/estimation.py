"""The estimation-strategy seam of the co-estimation framework.

For every CFSM transition the master executes behaviorally, it builds
an :class:`EstimationJob` and asks the active strategy for the
transition's cycle count and energy.  The job closure
``run_low_level`` invokes the appropriate component estimator — the
instruction-set simulator for software processes, the gate-level power
simulator for hardware processes — with the state/input exchange
already prepared by the master (Figure 2(b) of the paper).

The acceleration techniques of Section 4 are alternative strategies
that avoid calling ``run_low_level`` when they can: energy caching
replays statistics of previously simulated paths, macro-modeling sums
pre-characterized per-macro-operation costs, and statistical sampling
subsamples the request stream.  This module defines the protocol and
the unaccelerated :class:`FullStrategy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.cfsm.model import Cfsm, Transition
from repro.cfsm.sgraph import ExecutionTrace
from repro.telemetry import NULL_TELEMETRY, Telemetry


@dataclass
class Estimate:
    """A strategy's answer for one transition execution.

    ``provenance`` records which rung of the accuracy ladder produced
    the numbers — ``"exact"`` (low-level simulation), ``"cached"``
    (Section 4.2 path statistics), ``"macromodel"`` (Section 4.1), or
    ``"degraded"`` (the resilience layer's last-resort analytical
    estimate).  Strategies may leave it empty; the master then derives
    it from ``ran_low_level`` and the active strategy.
    """

    cycles: int
    energy: float
    ran_low_level: bool
    provenance: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError("negative cycle estimate")
        if self.energy < 0:
            raise ValueError("negative energy estimate")


@dataclass
class EstimationJob:
    """One transition execution awaiting a cycle/energy estimate.

    Attributes:
        cfsm: the reacting process.
        transition: the transition that fired.
        trace: the behavioral execution trace (macro-operations, path
            signature, memory references, shared accesses).
        kind: ``"sw"`` or ``"hw"`` — the process's mapping.
        run_low_level: invokes the component estimator (ISS or gate
            level simulator) for this exact execution and returns the
            measured estimate.  Prepared by the master; calling it more
            than once is an error.
    """

    cfsm: Cfsm
    transition: Transition
    trace: ExecutionTrace
    kind: str
    run_low_level: Callable[[], Estimate]

    @property
    def path_key(self) -> Tuple:
        """The cache key of this execution: process, transition, path.

        This is exactly the paper's path-granular lookup key — the
        control path through the transition's s-graph, *excluding* loop
        iteration counts, so data-dependent loops fall into one key
        whose energy histogram may be spread out (Figure 4(b)).
        """
        return (self.cfsm.name, self.transition.name, self.trace.path)

    @property
    def op_names(self) -> List[str]:
        """Macro-operation stream of the behavioral execution."""
        return self.trace.op_names


class EstimationStrategy:
    """Base class: maps jobs to estimates and keeps usage statistics."""

    name = "abstract"

    #: Telemetry bundle; the class-level default is the shared no-op,
    #: so uninstrumented strategies pay nothing.  The master overrides
    #: it per run via :meth:`attach_telemetry`.
    telemetry: Telemetry = NULL_TELEMETRY

    def estimate(self, job: EstimationJob) -> Estimate:
        """Produce the cycle/energy estimate for ``job``."""
        raise NotImplementedError

    def statistics(self) -> Dict[str, float]:
        """Strategy-specific counters for reports."""
        return {}

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Bind the run's telemetry (called by the simulation master)."""
        self.telemetry = telemetry

    def publish_metrics(self) -> None:
        """Write strategy counters/ratios into the bound registry.

        Called by the master at end of run so that the metrics
        snapshot and :meth:`statistics` always agree.  Subclasses add
        their technique's accounting (hit rates, dispatch ratios).
        """

    def reset(self) -> None:
        """Clear per-run state (caches, counters)."""


class FullStrategy(EstimationStrategy):
    """Unaccelerated co-estimation: always run the low-level estimator.

    This is the paper's baseline (the ``Orig.`` columns of Tables 1
    and 2): every software transition is simulated by the ISS and every
    hardware transition by the gate-level power simulator, synchronized
    by the master.
    """

    name = "full"

    def __init__(self) -> None:
        self.low_level_calls = 0

    def estimate(self, job: EstimationJob) -> Estimate:
        self.low_level_calls += 1
        return job.run_low_level()

    def statistics(self) -> Dict[str, float]:
        return {"low_level_calls": float(self.low_level_calls)}

    def publish_metrics(self) -> None:
        registry = self.telemetry.metrics
        registry.gauge("strategy.full.low_level_calls").set(self.low_level_calls)

    def reset(self) -> None:
        self.low_level_calls = 0

"""Application-specific hardware substrate: the SIS role.

This package implements the paper's hardware power-estimation path from
scratch:

* a CMOS gate library with per-cell load capacitance and internal
  energy (:mod:`repro.hw.library`),
* a structural netlist data model (:mod:`repro.hw.netlist`),
* a synthesizer that compiles a hardware-mapped CFSM into a
  one-operation-per-cycle FSMD — one-hot controller plus a shared-ALU
  datapath — at the gate level (:mod:`repro.hw.synth`),
* a levelized compiled-code logic simulator with per-net toggle
  counting (:mod:`repro.hw.logicsim`),
* a switching-activity power model, ``E = 1/2 C V^2`` per output toggle
  plus cell-internal and clock-tree energy (:mod:`repro.hw.power`), and
* :class:`repro.hw.estimator.HardwarePowerSimulator`, the facade the
  simulation master invokes per CFSM transition; like the modified SIS
  simulator in the paper, it accepts an input vector sequence and
  returns cycle-by-cycle energy.
"""

from repro.hw.library import Cell, GateLibrary
from repro.hw.netlist import Gate, Netlist, NetlistBuilder
from repro.hw.logicsim import CompiledSimulator
from repro.hw.synth import SynthesisError, SynthesizedBlock, synthesize_cfsm
from repro.hw.estimator import HardwarePowerSimulator, HwRunResult

__all__ = [
    "Cell",
    "GateLibrary",
    "Gate",
    "Netlist",
    "NetlistBuilder",
    "CompiledSimulator",
    "synthesize_cfsm",
    "SynthesizedBlock",
    "SynthesisError",
    "HardwarePowerSimulator",
    "HwRunResult",
]

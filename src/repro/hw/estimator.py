"""Hardware power simulator facade used by the simulation master.

Plays the role of the paper's modified SIS power simulator: the master
hands it one CFSM transition (plus the triggering event values) and
receives a cycle-by-cycle energy report.  Block state (the CFSM's
variable registers) persists across invocations inside the gate-level
netlist, exactly like a real hardware block between reactions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from repro.errors import ReproError

from repro.cfsm.model import Cfsm
from repro.hw.library import DFF_CLOCK_ENERGY_J, GateLibrary
from repro.hw.logicsim import CompiledSimulator
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.hw.synth import (
    MEM_DATA_IN,
    MEM_READ_REQ,
    MEM_WRITE_ADDR,
    MEM_WRITE_DATA,
    SynthesizedBlock,
    synthesize_cfsm_cached,
)

_INTERNAL_EVENTS = (MEM_READ_REQ, MEM_WRITE_ADDR, MEM_WRITE_DATA)


class HwEstimatorError(ReproError):
    """Raised when a transition does not complete in the netlist."""


#: Exact-state memo of gate-level transition runs, shared process-wide.
#:
#: The paper's §4.2 energy cache is *statistical*: it keys on the
#: control path and rejects entries whose energy spread exceeds the
#: variance threshold (Figure 4(b)), so data-dependent transitions are
#: re-simulated forever.  This memo is the complementary *exact* layer:
#: a gate-level run is a deterministic function of (compiled netlist,
#: architectural state, triggering input values, memory-read script),
#: so when an identical run recurs — which happens constantly during
#: design-space exploration, where neighbouring points feed the same
#: payloads through the same blocks — the recorded outcome and final
#: state can be replayed without touching the simulator.  Unlike the
#: statistical cache this is lossless: replayed runs are bit- and
#: joule-identical to re-simulation.
#:
#: Keyed by (netlist token, transition, DFF/PI state, inputs, read
#: script, cycle limit); values are (result, post-run net values,
#: toggle count).
_HW_RUN_MEMO: "OrderedDict[Tuple, Tuple[HwRunResult, List[int], int]]" = OrderedDict()

#: Bound on memo entries (LRU).  Entries are a few KB each (one net-
#: state snapshot plus the per-cycle energy trace).
_HW_RUN_MEMO_CAPACITY = 4096


class HwRunMemoStats:
    """Process-wide hit/miss accounting for the run memo."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


HW_RUN_MEMO_STATS = HwRunMemoStats()


def clear_hw_run_memo() -> None:
    """Drop all memoized gate-level runs (tests and benchmarks)."""
    _HW_RUN_MEMO.clear()
    HW_RUN_MEMO_STATS.reset()


@dataclass
class HwRunResult:
    """Statistics for one hardware transition execution."""

    cycles: int = 0
    energy: float = 0.0
    per_cycle_energy: List[float] = field(default_factory=list)
    emitted: List[Tuple[str, int]] = field(default_factory=list)
    mem_read_addresses: List[int] = field(default_factory=list)
    mem_writes: List[Tuple[int, int]] = field(default_factory=list)


class HardwarePowerSimulator:
    """Gate-level power estimation for one hardware-mapped CFSM."""

    def __init__(
        self,
        cfsm: Cfsm,
        library: Optional[GateLibrary] = None,
        max_cycles_per_transition: int = 2_000_000,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.cfsm = cfsm
        self.library = library or GateLibrary.default()
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self.block: SynthesizedBlock = synthesize_cfsm_cached(cfsm, self.library)
        self.simulator = CompiledSimulator(
            self.block.netlist, self.library, telemetry=self.telemetry
        )
        self.max_cycles_per_transition = max_cycles_per_transition
        self.invocations = 0
        self.total_cycles = 0
        self.total_energy = 0.0
        # Strobe/done polling happens every simulated cycle; resolve the
        # port-name -> net indirection once instead of sorting and
        # peeking per cycle (strobes and ``done`` are 1-bit ports).
        output_ports = self.block.netlist.output_ports
        self._strobe_watch: List[Tuple[str, int]] = [
            (event, output_ports[port][0])
            for event, port in sorted(self.block.strobe_ports.items())
        ]
        self._done_net: int = output_ports["done"][0]
        # Nets that fully determine a run: all flip-flop outputs plus
        # all primary-input nets (unmentioned input ports hold their
        # previous values across runs, so they are state too).  The
        # settled combinational nets are a pure function of these.
        netlist = self.block.netlist
        self._state_nets: List[int] = [dff.q for dff in netlist.dffs] + [
            net
            for _, nets in sorted(netlist.input_ports.items())
            for net in nets
        ]

    @property
    def gate_count(self) -> int:
        """Combinational cell count of the synthesized netlist."""
        return self.block.netlist.gate_count

    @property
    def dff_count(self) -> int:
        """Flip-flop count of the synthesized netlist."""
        return self.block.netlist.dff_count

    def idle_energy_per_cycle(self) -> float:
        """Clock-network energy burned per cycle while the block idles."""
        return DFF_CLOCK_ENERGY_J * self.block.netlist.dff_count

    def run_transition(
        self,
        transition_name: str,
        input_values: Optional[Dict[str, int]] = None,
        read_values: Optional[List[int]] = None,
    ) -> HwRunResult:
        """Simulate one transition at the gate level.

        Args:
            transition_name: which transition to start (the master has
                already determined that it is enabled).
            input_values: values of the triggering events, by event
                name; they are held constant on the input ports for the
                whole run, the way the master's vector exchange works in
                the paper's Figure 2(b).
            read_values: the words the block's shared-memory reads will
                return, in order.  The master knows them from behavioral
                execution and plays the bus interface on the memory
                ports (bus *timing* is charged by the master, not here).

        Returns:
            Cycle count, total and per-cycle energy, and the emitted
            (event, value) pairs observed on the strobe/value ports.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._run_memoized(transition_name, input_values, read_values)
        with telemetry.tracer.span(
            "hw.run_transition",
            track="hw",
            args={"cfsm": self.cfsm.name, "transition": transition_name},
        ) as span:
            result = self._run_memoized(transition_name, input_values, read_values)
            span.set("cycles", result.cycles)
            span.set("energy_j", result.energy)
        metrics = telemetry.metrics
        metrics.counter("hw.invocations").inc()
        metrics.counter("hw.cycles").inc(result.cycles)
        return result

    def _run_memoized(
        self,
        transition_name: str,
        input_values: Optional[Dict[str, int]] = None,
        read_values: Optional[List[int]] = None,
    ) -> HwRunResult:
        """Replay an identical previous run, or simulate and record it."""
        sim = self.simulator
        if getattr(self, "_needs_settle", False):
            # Settling is itself a pure function of the state nets, so
            # doing it before keying keeps the key canonical.
            sim.settle()
            self._needs_settle = False
        values = sim.values
        key = (
            sim.netlist_token,
            transition_name,
            tuple(map(values.__getitem__, self._state_nets)),
            tuple(sorted((input_values or {}).items())),
            tuple(read_values or ()),
            self.max_cycles_per_transition,
        )
        entry = _HW_RUN_MEMO.get(key)
        metrics = self.telemetry.metrics if self.telemetry.enabled else None
        if entry is not None:
            _HW_RUN_MEMO.move_to_end(key)
            HW_RUN_MEMO_STATS.hits += 1
            if metrics is not None:
                metrics.counter("hw.run_memo.hits").inc()
            recorded, values_after, toggles = entry
            values[:] = values_after
            sim.cycle += recorded.cycles
            sim.total_energy += recorded.energy
            sim.total_toggles += toggles
            self.invocations += 1
            self.total_cycles += recorded.cycles
            self.total_energy += recorded.energy
            return HwRunResult(
                cycles=recorded.cycles,
                energy=recorded.energy,
                per_cycle_energy=list(recorded.per_cycle_energy),
                emitted=list(recorded.emitted),
                mem_read_addresses=list(recorded.mem_read_addresses),
                mem_writes=list(recorded.mem_writes),
            )
        HW_RUN_MEMO_STATS.misses += 1
        if metrics is not None:
            metrics.counter("hw.run_memo.misses").inc()
        toggles_before = sim.total_toggles
        result = self._run_transition(transition_name, input_values, read_values)
        _HW_RUN_MEMO[key] = (
            HwRunResult(
                cycles=result.cycles,
                energy=result.energy,
                per_cycle_energy=list(result.per_cycle_energy),
                emitted=list(result.emitted),
                mem_read_addresses=list(result.mem_read_addresses),
                mem_writes=list(result.mem_writes),
            ),
            list(values),
            sim.total_toggles - toggles_before,
        )
        if len(_HW_RUN_MEMO) > _HW_RUN_MEMO_CAPACITY:
            _HW_RUN_MEMO.popitem(last=False)
            HW_RUN_MEMO_STATS.evictions += 1
        return result

    def _run_transition(
        self,
        transition_name: str,
        input_values: Optional[Dict[str, int]] = None,
        read_values: Optional[List[int]] = None,
    ) -> HwRunResult:
        if transition_name not in self.block.go_ports:
            raise KeyError(
                "CFSM %r has no transition %r" % (self.cfsm.name, transition_name)
            )
        result = HwRunResult()
        inputs: Dict[str, int] = {self.block.go_ports[transition_name]: 1}
        mask = (1 << self.cfsm.width) - 1
        for event, value in (input_values or {}).items():
            port = self.block.input_ports.get(event)
            if port is not None:
                inputs[port] = value & mask

        if getattr(self, "_needs_settle", False):
            # Make flip-flop D inputs consistent with poked state
            # before the first clock edge of this run.
            self.simulator.settle()
            self._needs_settle = False

        script = list(read_values or [])
        script_pos = 0
        pending_strobes: List[str] = []
        pending_write_addr: Optional[int] = None
        sim = self.simulator
        values = sim.values
        strobe_watch = self._strobe_watch
        done_net = self._done_net
        done = False
        while not done:
            if result.cycles >= self.max_cycles_per_transition:
                raise HwEstimatorError(
                    "transition %s.%s exceeded %d cycles"
                    % (self.cfsm.name, transition_name,
                       self.max_cycles_per_transition)
                )
            energy = sim.step(inputs)
            inputs = {self.block.go_ports[transition_name]: 0}
            result.cycles += 1
            result.per_cycle_energy.append(energy)
            result.energy += energy

            # Emission values are registered, so a strobe seen in cycle
            # k is read from the value port after cycle k+1's edge.
            for event in pending_strobes:
                value = sim.peek(self.block.value_ports[event])
                if event == MEM_READ_REQ:
                    result.mem_read_addresses.append(value)
                elif event == MEM_WRITE_ADDR:
                    pending_write_addr = value
                elif event == MEM_WRITE_DATA:
                    result.mem_writes.append((pending_write_addr or 0, value))
                    pending_write_addr = None
                else:
                    result.emitted.append((event, value))
            pending_strobes = [
                event for event, net in strobe_watch if values[net]
            ]
            if pending_strobes and MEM_READ_REQ in pending_strobes:
                if script_pos >= len(script):
                    raise HwEstimatorError(
                        "transition %s.%s issued more memory reads than "
                        "the supplied read script" % (self.cfsm.name, transition_name)
                    )
                inputs["in_%s" % MEM_DATA_IN] = script[script_pos] & mask
                script_pos += 1
            done = bool(values[done_net])

        if pending_strobes:
            # Flush emissions strobed in the final cycle (cannot happen
            # with RtlCompiler output, where DONE follows every EMIT,
            # but kept for hand-written micro-programs).
            energy = sim.step(inputs)
            result.cycles += 1
            result.per_cycle_energy.append(energy)
            result.energy += energy
            for event in pending_strobes:
                value = sim.peek(self.block.value_ports[event])
                if event not in _INTERNAL_EVENTS:
                    result.emitted.append((event, value))

        self.invocations += 1
        self.total_cycles += result.cycles
        self.total_energy += result.energy
        return result

    def read_variable(self, name: str) -> int:
        """Current value of a CFSM variable register (for checking)."""
        return self.simulator.peek(self.block.register_ports[name])

    def poke_variable(self, name: str, value: int) -> None:
        """Force a CFSM variable register to ``value``.

        Used by acceleration strategies: when a cached estimate replaces
        a gate-level run, the netlist's architectural state is brought
        back in sync with the behavioral reference so that a later
        gate-level run starts from the right values.
        """
        port = self.block.register_ports[name]
        nets = self.block.netlist.output_ports[port]
        for index, net in enumerate(nets):
            self.simulator.values[net] = (value >> index) & 1
        self._needs_settle = True

"""Hardware power simulator facade used by the simulation master.

Plays the role of the paper's modified SIS power simulator: the master
hands it one CFSM transition (plus the triggering event values) and
receives a cycle-by-cycle energy report.  Block state (the CFSM's
variable registers) persists across invocations inside the gate-level
netlist, exactly like a real hardware block between reactions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cfsm.model import Cfsm
from repro.hw.library import DFF_CLOCK_ENERGY_J, GateLibrary
from repro.hw.logicsim import CompiledSimulator
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.hw.synth import (
    MEM_DATA_IN,
    MEM_READ_REQ,
    MEM_WRITE_ADDR,
    MEM_WRITE_DATA,
    SynthesizedBlock,
    synthesize_cfsm,
)

_INTERNAL_EVENTS = (MEM_READ_REQ, MEM_WRITE_ADDR, MEM_WRITE_DATA)


class HwEstimatorError(Exception):
    """Raised when a transition does not complete in the netlist."""


@dataclass
class HwRunResult:
    """Statistics for one hardware transition execution."""

    cycles: int = 0
    energy: float = 0.0
    per_cycle_energy: List[float] = field(default_factory=list)
    emitted: List[Tuple[str, int]] = field(default_factory=list)
    mem_read_addresses: List[int] = field(default_factory=list)
    mem_writes: List[Tuple[int, int]] = field(default_factory=list)


class HardwarePowerSimulator:
    """Gate-level power estimation for one hardware-mapped CFSM."""

    def __init__(
        self,
        cfsm: Cfsm,
        library: Optional[GateLibrary] = None,
        max_cycles_per_transition: int = 2_000_000,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.cfsm = cfsm
        self.library = library or GateLibrary.default()
        self.block: SynthesizedBlock = synthesize_cfsm(cfsm, self.library)
        self.simulator = CompiledSimulator(self.block.netlist, self.library)
        self.max_cycles_per_transition = max_cycles_per_transition
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self.invocations = 0
        self.total_cycles = 0
        self.total_energy = 0.0

    @property
    def gate_count(self) -> int:
        """Combinational cell count of the synthesized netlist."""
        return self.block.netlist.gate_count

    @property
    def dff_count(self) -> int:
        """Flip-flop count of the synthesized netlist."""
        return self.block.netlist.dff_count

    def idle_energy_per_cycle(self) -> float:
        """Clock-network energy burned per cycle while the block idles."""
        return DFF_CLOCK_ENERGY_J * self.block.netlist.dff_count

    def run_transition(
        self,
        transition_name: str,
        input_values: Optional[Dict[str, int]] = None,
        read_values: Optional[List[int]] = None,
    ) -> HwRunResult:
        """Simulate one transition at the gate level.

        Args:
            transition_name: which transition to start (the master has
                already determined that it is enabled).
            input_values: values of the triggering events, by event
                name; they are held constant on the input ports for the
                whole run, the way the master's vector exchange works in
                the paper's Figure 2(b).
            read_values: the words the block's shared-memory reads will
                return, in order.  The master knows them from behavioral
                execution and plays the bus interface on the memory
                ports (bus *timing* is charged by the master, not here).

        Returns:
            Cycle count, total and per-cycle energy, and the emitted
            (event, value) pairs observed on the strobe/value ports.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._run_transition(transition_name, input_values, read_values)
        with telemetry.tracer.span(
            "hw.run_transition",
            track="hw",
            args={"cfsm": self.cfsm.name, "transition": transition_name},
        ) as span:
            result = self._run_transition(transition_name, input_values, read_values)
            span.set("cycles", result.cycles)
            span.set("energy_j", result.energy)
        metrics = telemetry.metrics
        metrics.counter("hw.invocations").inc()
        metrics.counter("hw.cycles").inc(result.cycles)
        return result

    def _run_transition(
        self,
        transition_name: str,
        input_values: Optional[Dict[str, int]] = None,
        read_values: Optional[List[int]] = None,
    ) -> HwRunResult:
        if transition_name not in self.block.go_ports:
            raise KeyError(
                "CFSM %r has no transition %r" % (self.cfsm.name, transition_name)
            )
        result = HwRunResult()
        inputs: Dict[str, int] = {self.block.go_ports[transition_name]: 1}
        mask = (1 << self.cfsm.width) - 1
        for event, value in (input_values or {}).items():
            port = self.block.input_ports.get(event)
            if port is not None:
                inputs[port] = value & mask

        if getattr(self, "_needs_settle", False):
            # Make flip-flop D inputs consistent with poked state
            # before the first clock edge of this run.
            self.simulator.settle()
            self._needs_settle = False

        script = list(read_values or [])
        script_pos = 0
        pending_strobes: List[str] = []
        pending_write_addr: Optional[int] = None
        sim = self.simulator
        done = False
        while not done:
            if result.cycles >= self.max_cycles_per_transition:
                raise HwEstimatorError(
                    "transition %s.%s exceeded %d cycles"
                    % (self.cfsm.name, transition_name,
                       self.max_cycles_per_transition)
                )
            energy = sim.step(inputs)
            inputs = {self.block.go_ports[transition_name]: 0}
            result.cycles += 1
            result.per_cycle_energy.append(energy)
            result.energy += energy

            # Emission values are registered, so a strobe seen in cycle
            # k is read from the value port after cycle k+1's edge.
            for event in pending_strobes:
                value = sim.peek(self.block.value_ports[event])
                if event == MEM_READ_REQ:
                    result.mem_read_addresses.append(value)
                elif event == MEM_WRITE_ADDR:
                    pending_write_addr = value
                elif event == MEM_WRITE_DATA:
                    result.mem_writes.append((pending_write_addr or 0, value))
                    pending_write_addr = None
                else:
                    result.emitted.append((event, value))
            pending_strobes = [
                event
                for event, port in sorted(self.block.strobe_ports.items())
                if sim.peek(port)
            ]
            if MEM_READ_REQ in pending_strobes:
                if script_pos >= len(script):
                    raise HwEstimatorError(
                        "transition %s.%s issued more memory reads than "
                        "the supplied read script" % (self.cfsm.name, transition_name)
                    )
                inputs["in_%s" % MEM_DATA_IN] = script[script_pos] & mask
                script_pos += 1
            done = bool(sim.peek("done"))

        if pending_strobes:
            # Flush emissions strobed in the final cycle (cannot happen
            # with RtlCompiler output, where DONE follows every EMIT,
            # but kept for hand-written micro-programs).
            energy = sim.step(inputs)
            result.cycles += 1
            result.per_cycle_energy.append(energy)
            result.energy += energy
            for event in pending_strobes:
                value = sim.peek(self.block.value_ports[event])
                if event not in _INTERNAL_EVENTS:
                    result.emitted.append((event, value))

        self.invocations += 1
        self.total_cycles += result.cycles
        self.total_energy += result.energy
        return result

    def read_variable(self, name: str) -> int:
        """Current value of a CFSM variable register (for checking)."""
        return self.simulator.peek(self.block.register_ports[name])

    def poke_variable(self, name: str, value: int) -> None:
        """Force a CFSM variable register to ``value``.

        Used by acceleration strategies: when a cached estimate replaces
        a gate-level run, the netlist's architectural state is brought
        back in sync with the behavioral reference so that a later
        gate-level run starts from the right values.
        """
        port = self.block.register_ports[name]
        nets = self.block.netlist.output_ports[port]
        for index, net in enumerate(nets):
            self.simulator.values[net] = (value >> index) & 1
        self._needs_settle = True

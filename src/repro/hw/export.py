"""Netlist interchange: BLIF and structural Verilog writers.

The paper's hardware power estimator is a modified SIS, and SIS's
native exchange format is BLIF — so synthesized blocks can be written
back out for inspection with the very tool family the paper used.
A structural Verilog writer is provided for modern viewers/simulators.

Both writers emit purely structural descriptions over the cells of
:mod:`repro.hw.library`; flip-flops become BLIF ``.latch`` lines /
Verilog always-blocks with initial values.
"""

from __future__ import annotations

import io

from repro.hw.netlist import CONST0, CONST1, Netlist

#: Sum-of-products truth tables for the BLIF ``.names`` construct.
_BLIF_COVERS = {
    "INV": ["0 1"],
    "BUF": ["1 1"],
    "AND2": ["11 1"],
    "OR2": ["1- 1", "-1 1"],
    "XOR2": ["10 1", "01 1"],
    "XNOR2": ["11 1", "00 1"],
    "NAND2": ["0- 1", "-0 1"],
    "NOR2": ["00 1"],
    # MUX2(select, a, b) = (!select & a) | (select & b)
    "MUX2": ["01- 1", "1-1 1"],
}

_VERILOG_EXPR = {
    "INV": "~{0}",
    "BUF": "{0}",
    "AND2": "{0} & {1}",
    "OR2": "{0} | {1}",
    "XOR2": "{0} ^ {1}",
    "XNOR2": "~({0} ^ {1})",
    "NAND2": "~({0} & {1})",
    "NOR2": "~({0} | {1})",
    "MUX2": "{0} ? {2} : {1}",
}


def _net_name(netlist: Netlist, net: int) -> str:
    if net == CONST0:
        return "const0"
    if net == CONST1:
        return "const1"
    label = netlist.net_names.get(net)
    if label:
        cleaned = "".join(
            ch if ch.isalnum() or ch == "_" else "_" for ch in label
        )
        return "n%d_%s" % (net, cleaned)
    return "n%d" % net


def to_blif(netlist: Netlist, model_name: str = "") -> str:
    """Render the netlist as a BLIF model.

    Primary-input/-output buses are flattened to one signal per bit;
    flip-flops become ``.latch`` lines with their initial values; the
    constant nets are defined with constant ``.names`` covers.
    """
    name = model_name or netlist.name
    out = io.StringIO()
    out.write(".model %s\n" % name)

    inputs = []
    for port in sorted(netlist.input_ports):
        inputs.extend(_net_name(netlist, net)
                      for net in netlist.input_ports[port])
    out.write(".inputs %s\n" % " ".join(inputs))
    outputs = []
    for port in sorted(netlist.output_ports):
        outputs.extend(_net_name(netlist, net)
                       for net in netlist.output_ports[port])
    # Output ports may alias internal nets; BLIF is fine with that.
    out.write(".outputs %s\n" % " ".join(dict.fromkeys(outputs)))

    out.write("# constants\n")
    out.write(".names %s\n" % _net_name(netlist, CONST0))
    out.write(".names %s\n1\n" % _net_name(netlist, CONST1))

    out.write("# combinational cells\n")
    for gate in netlist.gates:
        signals = [_net_name(netlist, net) for net in gate.inputs]
        signals.append(_net_name(netlist, gate.output))
        out.write(".names %s\n" % " ".join(signals))
        for cover in _BLIF_COVERS[gate.cell]:
            out.write(cover + "\n")

    out.write("# state elements\n")
    for dff in netlist.dffs:
        out.write(".latch %s %s re clk %d\n"
                  % (_net_name(netlist, dff.d), _net_name(netlist, dff.q),
                     dff.init))

    out.write(".end\n")
    return out.getvalue()


def to_verilog(netlist: Netlist, module_name: str = "") -> str:
    """Render the netlist as structural Verilog.

    Buses keep their port names (``input [7:0] data``); internal nets
    are scalar wires; flip-flops are grouped into one clocked always
    block with an ``initial`` block for reset values.
    """
    name = module_name or netlist.name
    out = io.StringIO()

    port_decls = [("input", "clk", 1)]
    for port in sorted(netlist.input_ports):
        width = len(netlist.input_ports[port])
        port_decls.append(("input", port, width))
    for port in sorted(netlist.output_ports):
        width = len(netlist.output_ports[port])
        port_decls.append(("output", port, width))

    out.write("module %s (\n" % name)
    out.write(",\n".join("  %s" % port for _, port, _ in port_decls))
    out.write("\n);\n\n")
    for direction, port, width in port_decls:
        if width == 1:
            out.write("  %s %s;\n" % (direction, port))
        else:
            out.write("  %s [%d:0] %s;\n" % (direction, width - 1, port))

    out.write("\n  wire const0 = 1'b0;\n  wire const1 = 1'b1;\n")

    # Internal wires: every gate output plus every DFF q.
    declared = set()
    for gate in netlist.gates:
        declared.add(gate.output)
    out.write("\n  // combinational nets\n")
    for net in sorted(declared):
        out.write("  wire %s;\n" % _net_name(netlist, net))
    out.write("\n  // state elements\n")
    for dff in netlist.dffs:
        out.write("  reg %s;\n" % _net_name(netlist, dff.q))

    # Map primary-input bits onto their net names.
    out.write("\n  // input bit aliases\n")
    for port in sorted(netlist.input_ports):
        nets = netlist.input_ports[port]
        for index, net in enumerate(nets):
            bit = port if len(nets) == 1 else "%s[%d]" % (port, index)
            out.write("  wire %s = %s;\n" % (_net_name(netlist, net), bit))

    out.write("\n  // cells\n")
    for gate in netlist.gates:
        operands = [_net_name(netlist, net) for net in gate.inputs]
        expression = _VERILOG_EXPR[gate.cell].format(*operands)
        out.write("  assign %s = %s;\n"
                  % (_net_name(netlist, gate.output), expression))

    out.write("\n  // output port drivers\n")
    for port in sorted(netlist.output_ports):
        nets = netlist.output_ports[port]
        if len(nets) == 1:
            out.write("  assign %s = %s;\n"
                      % (port, _net_name(netlist, nets[0])))
        else:
            bits = ", ".join(_net_name(netlist, net)
                             for net in reversed(nets))
            out.write("  assign %s = {%s};\n" % (port, bits))

    out.write("\n  // clocked state\n")
    out.write("  initial begin\n")
    for dff in netlist.dffs:
        out.write("    %s = 1'b%d;\n" % (_net_name(netlist, dff.q), dff.init))
    out.write("  end\n")
    out.write("  always @(posedge clk) begin\n")
    for dff in netlist.dffs:
        out.write("    %s <= %s;\n"
                  % (_net_name(netlist, dff.q), _net_name(netlist, dff.d)))
    out.write("  end\n\nendmodule\n")
    return out.getvalue()

"""CMOS gate library with power-relevant cell data.

Cell capacitances and internal energies are representative of a 0.35um
standard-cell library (the technology generation of the paper's
experiments).  Per-toggle switched energy is ``1/2 * C_load * Vdd^2``
plus the cell's internal (short-circuit + internal node) energy; flip
flops additionally draw clock energy every cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

#: Default supply voltage (volts) — the paper's experiments use 3.3 V.
DEFAULT_VDD = 3.3


@dataclass(frozen=True)
class Cell:
    """One library cell.

    Attributes:
        name: cell name (e.g. ``NAND2``).
        inputs: number of input pins.
        function: boolean function over the input bits.
        load_cap_f: output load capacitance in farads (wire + fanout
            estimate folded in).
        internal_energy_j: energy dissipated inside the cell per output
            transition, in joules.
    """

    name: str
    inputs: int
    function: Callable[..., int]
    load_cap_f: float
    internal_energy_j: float

    def evaluate(self, *bits: int) -> int:
        """Apply the cell function to input bits."""
        return self.function(*bits)

    def switch_energy(self, vdd: float = DEFAULT_VDD) -> float:
        """Energy in joules for one output transition."""
        return 0.5 * self.load_cap_f * vdd * vdd + self.internal_energy_j


#: Energy drawn from the clock network per flip-flop per cycle (joules).
DFF_CLOCK_ENERGY_J = 0.015e-12


def _standard_cells() -> Dict[str, Cell]:
    femto = 1e-15
    pico_j = 1e-12
    return {
        "INV": Cell("INV", 1, lambda a: a ^ 1, 12 * femto, 0.005 * pico_j),
        "BUF": Cell("BUF", 1, lambda a: a, 14 * femto, 0.006 * pico_j),
        "NAND2": Cell("NAND2", 2, lambda a, b: (a & b) ^ 1, 14 * femto, 0.008 * pico_j),
        "NOR2": Cell("NOR2", 2, lambda a, b: (a | b) ^ 1, 14 * femto, 0.009 * pico_j),
        "AND2": Cell("AND2", 2, lambda a, b: a & b, 16 * femto, 0.010 * pico_j),
        "OR2": Cell("OR2", 2, lambda a, b: a | b, 16 * femto, 0.011 * pico_j),
        "XOR2": Cell("XOR2", 2, lambda a, b: a ^ b, 20 * femto, 0.016 * pico_j),
        "XNOR2": Cell("XNOR2", 2, lambda a, b: (a ^ b) ^ 1, 20 * femto, 0.016 * pico_j),
        "MUX2": Cell(
            "MUX2", 3, lambda s, a, b: b if s else a, 18 * femto, 0.014 * pico_j
        ),
        # DFF's function is identity on D; sequencing is handled by the
        # simulator, which updates Q at the clock edge.
        "DFF": Cell("DFF", 1, lambda d: d, 22 * femto, 0.020 * pico_j),
    }


class GateLibrary:
    """A named collection of cells."""

    def __init__(self, cells: Dict[str, Cell] = None, vdd: float = DEFAULT_VDD) -> None:
        self.cells = cells if cells is not None else _standard_cells()
        self.vdd = vdd

    @classmethod
    def default(cls) -> "GateLibrary":
        """The standard 0.35um-flavoured library at 3.3 V."""
        return cls()

    def cell(self, name: str) -> Cell:
        """Look up a cell by name."""
        if name not in self.cells:
            raise KeyError("no cell named %r in library" % name)
        return self.cells[name]

    def cell_names(self) -> Tuple[str, ...]:
        """All cell names (sorted)."""
        return tuple(sorted(self.cells))

    def signature(self) -> Tuple:
        """Hashable value identity of the library.

        Two libraries with equal signatures produce identical energy
        numbers for identical netlists (cell functions are fixed per
        cell name), so the signature is a safe cache key for compiled
        simulation code.
        """
        return (
            self.vdd,
            tuple(
                (name, cell.inputs, cell.load_cap_f, cell.internal_energy_j)
                for name, cell in sorted(self.cells.items())
            ),
        )

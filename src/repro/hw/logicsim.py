"""Levelized compiled-code gate-level simulation with power accounting.

The simulator translates a netlist into straight-line Python once
(levelized compiled-code simulation, the classic acceleration used by
gate-level power estimators), then executes one function call per clock
cycle.  Every net transition is detected against the previous settled
state and charged ``1/2 C V^2`` plus cell-internal energy; flip-flops
additionally draw clock energy every cycle.

The per-cycle energy sequence is exactly what the paper's modified SIS
power simulator reports back to the simulation master.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.library import DFF_CLOCK_ENERGY_J, GateLibrary
from repro.hw.netlist import CONST1, Netlist
from repro.telemetry import NULL_TELEMETRY, Telemetry

# Operand placeholders are filled with either a chunk-local temporary
# (when the driving gate lives in the same chunk) or a ``v[net]`` load.
_GATE_EXPR = {
    "INV": "{0}^1",
    "BUF": "{0}",
    "AND2": "{0}&{1}",
    "OR2": "{0}|{1}",
    "XOR2": "{0}^{1}",
    "XNOR2": "({0}^{1})^1",
    "NAND2": "({0}&{1})^1",
    "NOR2": "({0}|{1})^1",
    "MUX2": "{2} if {0} else {1}",
}

#: Gates per generated function; large netlists are split into chunks to
#: keep compilation fast.
_CHUNK_SIZE = 4000

#: Cache of compiled evaluation functions, keyed by (netlist structure,
#: library signature).  Iterative design-space exploration instantiates
#: the same synthesized blocks dozens of times (one master per design
#: point); the generated code depends only on the gate list and the
#: cell energies, so every instantiation after the first can skip the
#: codegen/``exec`` step entirely.  The evaluation functions are pure
#: (state lives in the ``v`` list each caller owns), which is what
#: makes sharing them across simulator instances safe.
#:
#: Values are ``(functions, token)``: the token is a process-unique
#: integer naming this compiled netlist.  Downstream memoization (the
#: hardware estimator's exact-state run memo) keys on the token instead
#: of re-hashing the gate list; tokens are never reused, so entries for
#: an evicted netlist simply go stale and age out.
_COMPILE_CACHE: "OrderedDict[Tuple, Tuple[List, int]]" = OrderedDict()

_NEXT_NETLIST_TOKEN = 0

#: Bound on distinct netlists kept compiled (LRU eviction).
_COMPILE_CACHE_CAPACITY = 64


class CompileCacheStats:
    """Process-wide hit/miss accounting for the compile cache."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


COMPILE_CACHE_STATS = CompileCacheStats()


def clear_compile_cache() -> None:
    """Drop all cached compiled functions (tests and benchmarks)."""
    _COMPILE_CACHE.clear()
    COMPILE_CACHE_STATS.reset()


class CompiledSimulator:
    """Cycle-based simulator for one synthesized block.

    Typical use by the hardware power estimator::

        sim = CompiledSimulator(netlist)
        sim.reset()
        energy = sim.step({"go": 1, "in_DATA": 0x42})
        done = sim.peek("done")
    """

    def __init__(
        self,
        netlist: Netlist,
        library: Optional[GateLibrary] = None,
        pi_energy_j: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        netlist.check()
        self.netlist = netlist
        self.library = library or GateLibrary.default()
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        buf = self.library.cell("BUF")
        self.pi_energy_j = (
            pi_energy_j if pi_energy_j is not None else buf.switch_energy(self.library.vdd)
        )
        dff_cell = self.library.cell("DFF")
        self._dff_switch_energy = dff_cell.switch_energy(self.library.vdd)
        self._clock_energy = DFF_CLOCK_ENERGY_J * netlist.dff_count
        self._dff_pairs: List[Tuple[int, int]] = [
            (dff.d, dff.q) for dff in netlist.dffs
        ]
        # Split views of the same pairs: ``step`` snapshots all D values
        # before writing any Q (DFF chains), and separate index lists
        # make that snapshot a plain ``map`` instead of tuple unpacking.
        self._dff_d: List[int] = [d for d, _ in self._dff_pairs]
        self._dff_q: List[int] = [q for _, q in self._dff_pairs]
        self._eval_funcs, self.netlist_token = self._compile_cached()
        self.values: List[int] = []
        self.cycle = 0
        self.total_energy = 0.0
        self.total_toggles = 0
        self.reset()

    # -- construction ---------------------------------------------------------

    def _compile_cached(self):
        """Compiled evaluation functions plus netlist token, cached."""
        global _NEXT_NETLIST_TOKEN
        key = (tuple(self.netlist.gates), self.library.signature(), _CHUNK_SIZE)
        entry = _COMPILE_CACHE.get(key)
        metrics = self.telemetry.metrics
        if entry is not None:
            _COMPILE_CACHE.move_to_end(key)
            COMPILE_CACHE_STATS.hits += 1
            metrics.counter("hw.compile_cache.hits").inc()
            return entry
        COMPILE_CACHE_STATS.misses += 1
        metrics.counter("hw.compile_cache.misses").inc()
        _NEXT_NETLIST_TOKEN += 1
        entry = (self._compile(), _NEXT_NETLIST_TOKEN)
        _COMPILE_CACHE[key] = entry
        if len(_COMPILE_CACHE) > _COMPILE_CACHE_CAPACITY:
            _COMPILE_CACHE.popitem(last=False)
            COMPILE_CACHE_STATS.evictions += 1
        return entry

    def _compile(self):
        functions = []
        gates = self.netlist.gates
        vdd = self.library.vdd
        for start in range(0, len(gates), _CHUNK_SIZE):
            chunk = gates[start:start + _CHUNK_SIZE]
            lines = ["def _eval(v):", " e = 0.0", " n = 0"]
            # Nets driven earlier in this chunk are kept in local
            # variables: LOAD_FAST is much cheaper than indexing ``v``,
            # and the gate list is topologically ordered so most fanin
            # is chunk-local.  ``v`` is still written on every toggle,
            # keeping it authoritative for DFFs, ports and later chunks.
            local_of: Dict[int, str] = {}
            for gate in chunk:
                cell = self.library.cell(gate.cell)
                operands = [
                    local_of.get(net) or "v[%d]" % net for net in gate.inputs
                ]
                expr = _GATE_EXPR[gate.cell].format(*operands)
                energy = cell.switch_energy(vdd)
                out = gate.output
                name = "t%d" % out
                lines.append(" %s = %s" % (name, expr))
                lines.append(
                    " if %s != v[%d]:\n  e += %r; n += 1; v[%d] = %s"
                    % (name, out, energy, out, name)
                )
                local_of[out] = name
            lines.append(" return e, n")
            namespace: Dict[str, object] = {}
            exec("\n".join(lines), namespace)  # noqa: S102 - generated by us
            functions.append(namespace["_eval"])
        if not functions:
            functions.append(lambda v: (0.0, 0))
        return functions

    # -- simulation -------------------------------------------------------------

    def reset(self) -> None:
        """Return to the initial state and settle the logic."""
        values = [0] * self.netlist.num_nets
        values[CONST1] = 1
        for dff in self.netlist.dffs:
            values[dff.q] = dff.init
        self.values = values
        for func in self._eval_funcs:
            func(values)
        self.cycle = 0
        self.total_energy = 0.0
        self.total_toggles = 0

    def settle(self) -> None:
        """Re-evaluate combinational logic without charging energy.

        Required after out-of-band state pokes (see
        ``HardwarePowerSimulator.poke_variable``): flip-flop D inputs
        must be made consistent with the poked Q values before the next
        clock edge, otherwise the edge would restore stale state.
        """
        for func in self._eval_funcs:
            func(self.values)

    def step(self, inputs: Optional[Dict[str, int]] = None) -> float:
        """Advance one clock cycle; returns the energy in joules.

        ``inputs`` maps primary-input port names to bus values; ports
        not mentioned hold their previous values.
        """
        v = self.values
        energy = self._clock_energy
        toggles = 0

        # Clock edge: Q follows the D captured from the settled state.
        # All D values are snapshotted before any Q is written so that
        # DFF chains latch the pre-edge state.
        latched = list(map(v.__getitem__, self._dff_d))
        dff_switch_energy = self._dff_switch_energy
        for q, new_q in zip(self._dff_q, latched):
            if v[q] != new_q:
                energy += dff_switch_energy
                toggles += 1
                v[q] = new_q

        # New primary-input values for this cycle.
        if inputs:
            for name, value in inputs.items():
                nets = self.netlist.input_ports.get(name)
                if nets is None:
                    raise KeyError("no input port named %r" % name)
                for index, net in enumerate(nets):
                    bit = (value >> index) & 1
                    if v[net] != bit:
                        energy += self.pi_energy_j
                        toggles += 1
                        v[net] = bit

        for func in self._eval_funcs:
            gate_energy, gate_toggles = func(v)
            energy += gate_energy
            toggles += gate_toggles

        self.cycle += 1
        self.total_energy += energy
        self.total_toggles += toggles
        return energy

    def peek(self, port: str) -> int:
        """Current value of an output port bus (LSB-first)."""
        nets = self.netlist.output_ports.get(port)
        if nets is None:
            raise KeyError("no output port named %r" % port)
        value = 0
        for index, net in enumerate(nets):
            value |= self.values[net] << index
        return value

    def peek_nets(self, nets: Sequence[int]) -> int:
        """Bus value over arbitrary nets (for white-box tests)."""
        value = 0
        for index, net in enumerate(nets):
            value |= self.values[net] << index
        return value

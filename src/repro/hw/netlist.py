"""Structural netlist model and a construction toolkit.

Nets are integer ids; net 0 is constant 0 and net 1 is constant 1.
Gates are appended in dependency order by the builder, so the gate list
is already a valid combinational evaluation order (this is what lets
:mod:`repro.hw.logicsim` compile the netlist to straight-line code).

The builder provides single-bit gate helpers with light constant
folding, plus the W-bit bus operators (ripple-carry adder/subtractor,
bus logic, 2:1 and one-hot muxes, zero detection, barrel shifter) that
:mod:`repro.hw.synth` assembles datapaths from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from repro.errors import ReproError

CONST0 = 0
CONST1 = 1


class NetlistError(ReproError):
    """Raised on malformed netlist construction.

    Carries the standard :class:`~repro.errors.ReproError` context
    (``component`` is the netlist name) plus the offending ``net`` id,
    so supervisors can attribute structural failures without parsing
    the message.
    """

    def __init__(self, *args, net: Optional[int] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.net = net

    @property
    def context(self) -> Dict[str, object]:
        fields = dict(super().context)
        if self.net is not None:
            fields["net"] = self.net
        return fields


@dataclass(frozen=True)
class Gate:
    """One combinational cell instance."""

    cell: str
    inputs: Tuple[int, ...]
    output: int


@dataclass(frozen=True)
class Dff:
    """One flip-flop: ``q`` follows ``d`` at each clock edge."""

    d: int
    q: int
    init: int = 0


@dataclass
class Netlist:
    """A synthesized block: gates, flip-flops, and port maps."""

    name: str
    num_nets: int = 2  # const0 and const1
    gates: List[Gate] = field(default_factory=list)
    dffs: List[Dff] = field(default_factory=list)
    input_ports: Dict[str, List[int]] = field(default_factory=dict)
    output_ports: Dict[str, List[int]] = field(default_factory=dict)
    net_names: Dict[int, str] = field(default_factory=dict)

    @property
    def gate_count(self) -> int:
        """Number of combinational cells."""
        return len(self.gates)

    @property
    def dff_count(self) -> int:
        """Number of flip-flops."""
        return len(self.dffs)

    def check(self) -> None:
        """Verify structural sanity and evaluation-order validity.

        Failures raise :class:`NetlistError` with structured context:
        ``component`` names this netlist, ``net`` the offending net id.
        """
        defined = {CONST0, CONST1}
        for nets in self.input_ports.values():
            defined.update(nets)
        for dff in self.dffs:
            defined.add(dff.q)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in defined:
                    raise NetlistError(
                        "gate %r reads net %d before it is defined"
                        % (gate.cell, net),
                        component=self.name, net=net,
                    )
            defined.add(gate.output)
        for dff in self.dffs:
            if dff.d not in defined:
                raise NetlistError(
                    "flip-flop D net %d is undefined" % dff.d,
                    component=self.name, net=dff.d,
                )
        for name, nets in self.output_ports.items():
            for net in nets:
                if net not in defined:
                    raise NetlistError(
                        "output port %r uses undefined net %d" % (name, net),
                        component=self.name, net=net,
                    )

    def stats(self) -> Dict[str, int]:
        """Cell-count summary by type (plus totals)."""
        counts: Dict[str, int] = {}
        for gate in self.gates:
            counts[gate.cell] = counts.get(gate.cell, 0) + 1
        counts["DFF"] = self.dff_count
        counts["total"] = self.gate_count + self.dff_count
        return counts


class NetlistBuilder:
    """Builds a :class:`Netlist` with constant folding helpers."""

    def __init__(self, name: str) -> None:
        self.netlist = Netlist(name=name)

    # -- nets and ports ------------------------------------------------------

    def new_net(self, name: Optional[str] = None) -> int:
        """Allocate a fresh net id."""
        net = self.netlist.num_nets
        self.netlist.num_nets += 1
        if name:
            self.netlist.net_names[net] = name
        return net

    def input_bus(self, name: str, width: int) -> List[int]:
        """Declare a primary-input bus of ``width`` bits (LSB first)."""
        if name in self.netlist.input_ports:
            raise NetlistError("duplicate input port %r" % name)
        nets = [self.new_net("%s[%d]" % (name, i)) for i in range(width)]
        self.netlist.input_ports[name] = nets
        return nets

    def output_bus(self, name: str, nets: Sequence[int]) -> None:
        """Declare a primary-output bus driven by ``nets``."""
        if name in self.netlist.output_ports:
            raise NetlistError("duplicate output port %r" % name)
        self.netlist.output_ports[name] = list(nets)

    # -- single-bit gates ------------------------------------------------------

    def gate(self, cell: str, *inputs: int) -> int:
        """Instantiate ``cell`` over ``inputs``; returns the output net."""
        output = self.new_net()
        self.netlist.gates.append(Gate(cell, tuple(inputs), output))
        return output

    def not_(self, a: int) -> int:
        if a == CONST0:
            return CONST1
        if a == CONST1:
            return CONST0
        return self.gate("INV", a)

    def buf(self, a: int) -> int:
        return self.gate("BUF", a)

    def and_(self, a: int, b: int) -> int:
        if CONST0 in (a, b):
            return CONST0
        if a == CONST1:
            return b
        if b == CONST1:
            return a
        if a == b:
            return a
        return self.gate("AND2", a, b)

    def or_(self, a: int, b: int) -> int:
        if CONST1 in (a, b):
            return CONST1
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        if a == b:
            return a
        return self.gate("OR2", a, b)

    def xor_(self, a: int, b: int) -> int:
        if a == CONST0:
            return b
        if b == CONST0:
            return a
        if a == CONST1:
            return self.not_(b)
        if b == CONST1:
            return self.not_(a)
        if a == b:
            return CONST0
        return self.gate("XOR2", a, b)

    def xnor_(self, a: int, b: int) -> int:
        return self.not_(self.xor_(a, b))

    def nand_(self, a: int, b: int) -> int:
        return self.not_(self.and_(a, b))

    def nor_(self, a: int, b: int) -> int:
        return self.not_(self.or_(a, b))

    def mux(self, select: int, a: int, b: int) -> int:
        """2:1 mux — ``a`` when select is 0, ``b`` when select is 1."""
        if select == CONST0:
            return a
        if select == CONST1:
            return b
        if a == b:
            return a
        return self.gate("MUX2", select, a, b)

    def dff(self, d: int, init: int = 0, name: Optional[str] = None) -> int:
        """Flip-flop; returns the Q net."""
        q = self.new_net(name)
        self.netlist.dffs.append(Dff(d=d, q=q, init=init))
        return q

    def add_dff(self, d: int, q: int, init: int = 0) -> None:
        """Attach a flip-flop between existing nets.

        Used for state registers whose Q net must exist before the
        next-state logic that drives D can be built.
        """
        self.netlist.dffs.append(Dff(d=d, q=q, init=init))

    # -- trees ------------------------------------------------------------------

    def or_tree(self, nets: Sequence[int]) -> int:
        """Balanced OR over any number of nets."""
        nets = list(nets)
        if not nets:
            return CONST0
        while len(nets) > 1:
            paired = []
            for index in range(0, len(nets) - 1, 2):
                paired.append(self.or_(nets[index], nets[index + 1]))
            if len(nets) % 2:
                paired.append(nets[-1])
            nets = paired
        return nets[0]

    def and_tree(self, nets: Sequence[int]) -> int:
        """Balanced AND over any number of nets."""
        nets = list(nets)
        if not nets:
            return CONST1
        while len(nets) > 1:
            paired = []
            for index in range(0, len(nets) - 1, 2):
                paired.append(self.and_(nets[index], nets[index + 1]))
            if len(nets) % 2:
                paired.append(nets[-1])
            nets = paired
        return nets[0]

    # -- buses ------------------------------------------------------------------

    def const_bus(self, value: int, width: int) -> List[int]:
        """Bus of constant nets encoding ``value`` (two's complement)."""
        return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]

    def bus_not(self, a: Sequence[int]) -> List[int]:
        return [self.not_(bit) for bit in a]

    def bus_and(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return [self.and_(x, y) for x, y in zip(a, b)]

    def bus_or(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return [self.or_(x, y) for x, y in zip(a, b)]

    def bus_xor(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return [self.xor_(x, y) for x, y in zip(a, b)]

    def bus_mux2(
        self, select: int, a: Sequence[int], b: Sequence[int]
    ) -> List[int]:
        """W-bit 2:1 mux."""
        return [self.mux(select, x, y) for x, y in zip(a, b)]

    def onehot_mux(self, choices: Sequence[Tuple[int, Sequence[int]]]) -> List[int]:
        """AND-OR one-hot selector over (select net, bus) pairs."""
        if not choices:
            raise NetlistError("one-hot mux needs at least one choice")
        width = len(choices[0][1])
        result = []
        for bit in range(width):
            terms = [self.and_(select, bus[bit]) for select, bus in choices]
            result.append(self.or_tree(terms))
        return result

    def ripple_add(
        self, a: Sequence[int], b: Sequence[int], carry_in: int = CONST0
    ) -> Tuple[List[int], int]:
        """Ripple-carry adder; returns (sum bus, carry out)."""
        if len(a) != len(b):
            raise NetlistError("adder operand widths differ")
        carry = carry_in
        total = []
        for x, y in zip(a, b):
            partial = self.xor_(x, y)
            total.append(self.xor_(partial, carry))
            carry = self.or_(self.and_(x, y), self.and_(partial, carry))
        return total, carry

    def ripple_sub(
        self, a: Sequence[int], b: Sequence[int]
    ) -> Tuple[List[int], int]:
        """Subtractor ``a - b``; carry-out 1 means no borrow (a >= b)."""
        diff, carry = self.ripple_add(a, self.bus_not(b), CONST1)
        return diff, carry

    def is_zero(self, a: Sequence[int]) -> int:
        """1 when every bit of ``a`` is 0."""
        return self.not_(self.or_tree(list(a)))

    def bus_eq(self, a: Sequence[int], b: Sequence[int]) -> int:
        """1 when the buses carry equal values."""
        return self.is_zero(self.bus_xor(a, b))

    def barrel_shift(
        self, a: Sequence[int], amount: Sequence[int], left: bool
    ) -> List[int]:
        """Logarithmic shifter (logical); shift amount uses the low bits
        of ``amount`` that are meaningful for the bus width."""
        width = len(a)
        stages = max(1, (width - 1).bit_length())
        current = list(a)
        for stage in range(stages):
            if stage >= len(amount):
                break
            shift = 1 << stage
            shifted = []
            for index in range(width):
                source = index - shift if left else index + shift
                if 0 <= source < width:
                    shifted.append(current[source])
                else:
                    shifted.append(CONST0)
            current = self.bus_mux2(amount[stage], current, shifted)
        return current

    def register(
        self,
        data: Sequence[int],
        enable: int,
        init: int = 0,
        name: Optional[str] = None,
    ) -> List[int]:
        """W-bit load-enable register; returns the Q bus.

        Implemented as ``q := mux(enable, q, data)`` into DFFs, the way
        synthesis maps enables onto feedback muxes.
        """
        width = len(data)
        q_nets = [
            self.new_net(None if name is None else "%s[%d]" % (name, i))
            for i in range(width)
        ]
        for index in range(width):
            d_net = self.mux(enable, q_nets[index], data[index])
            self.netlist.dffs.append(
                Dff(d=d_net, q=q_nets[index], init=(init >> index) & 1)
            )
        return q_nets

    def build(self) -> Netlist:
        """Check and return the netlist."""
        self.netlist.check()
        return self.netlist

"""Hardware power reporting, probabilistic, and statistical estimation.

Three estimation styles are provided, mirroring the options the paper
lists for the hardware power estimator:

* **Simulation-based** (the default used during co-estimation):
  :class:`repro.hw.estimator.HardwarePowerSimulator` runs the gate-level
  netlist and reports cycle-by-cycle energy from observed toggles.  The
  helpers in this module summarize such per-cycle traces.

* **Probabilistic** (for users who do not need cycle-by-cycle power):
  :func:`probabilistic_power` propagates signal probabilities through
  the netlist under a spatial/temporal independence assumption and
  returns the expected power, the classic aggregate-statistics approach
  referenced in the paper's Section 3.

* **Statistical (Monte-Carlo)**: :func:`monte_carlo_power` simulates
  the netlist under random input vectors until the estimate of the
  mean per-cycle power converges to a requested confidence interval —
  the statistical power-estimation style (McPOWER-like) the paper's
  Section 4.3 cites as prior art for hardware.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hw.library import DFF_CLOCK_ENERGY_J, GateLibrary
from repro.hw.netlist import CONST0, CONST1, Netlist


@dataclass
class PowerSummary:
    """Summary statistics over a per-cycle energy trace."""

    cycles: int
    total_energy_j: float
    average_power_w: float
    peak_power_w: float

    @classmethod
    def from_trace(
        cls, energies: Sequence[float], clock_period_s: float
    ) -> "PowerSummary":
        """Summarize per-cycle energies at the given clock period."""
        cycles = len(energies)
        total = float(sum(energies))
        if cycles == 0 or clock_period_s <= 0:
            return cls(cycles=cycles, total_energy_j=total,
                       average_power_w=0.0, peak_power_w=0.0)
        return cls(
            cycles=cycles,
            total_energy_j=total,
            average_power_w=total / (cycles * clock_period_s),
            peak_power_w=max(energies) / clock_period_s,
        )


_PROB_FUNCS = {
    "INV": lambda p: 1.0 - p[0],
    "BUF": lambda p: p[0],
    "AND2": lambda p: p[0] * p[1],
    "NAND2": lambda p: 1.0 - p[0] * p[1],
    "OR2": lambda p: 1.0 - (1.0 - p[0]) * (1.0 - p[1]),
    "NOR2": lambda p: (1.0 - p[0]) * (1.0 - p[1]),
    "XOR2": lambda p: p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0]),
    "XNOR2": lambda p: 1.0 - (p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0])),
    "MUX2": lambda p: (1.0 - p[0]) * p[1] + p[0] * p[2],
}


def propagate_probabilities(
    netlist: Netlist, input_probabilities: Optional[Dict[str, float]] = None
) -> List[float]:
    """Signal probability of every net under independence assumptions.

    Args:
        netlist: the block to analyze.
        input_probabilities: probability that each primary-input *bit*
            is 1 (by port name, applied to every bit of the bus).
            Defaults to 0.5.  Flip-flop outputs are also assumed to be
            0.5 unless they hold their initial value trivially.

    Returns:
        A probability per net id.
    """
    probabilities = [0.5] * netlist.num_nets
    probabilities[CONST0] = 0.0
    probabilities[CONST1] = 1.0
    defaults = input_probabilities or {}
    for name, nets in netlist.input_ports.items():
        p_one = defaults.get(name, 0.5)
        for net in nets:
            probabilities[net] = p_one
    for gate in netlist.gates:
        inputs = [probabilities[net] for net in gate.inputs]
        probabilities[gate.output] = _PROB_FUNCS[gate.cell](inputs)
    return probabilities


def probabilistic_power(
    netlist: Netlist,
    clock_period_s: float,
    library: Optional[GateLibrary] = None,
    input_probabilities: Optional[Dict[str, float]] = None,
) -> float:
    """Expected average power in watts from aggregate signal statistics.

    Per-net switching activity is approximated by ``2 p (1 - p)`` (the
    zero-delay temporal-independence estimate); every transition is
    charged the driving cell's switched energy, and flip-flops draw
    clock energy each cycle.
    """
    lib = library or GateLibrary.default()
    probabilities = propagate_probabilities(netlist, input_probabilities)
    energy_per_cycle = 0.0
    for gate in netlist.gates:
        probability = probabilities[gate.output]
        activity = 2.0 * probability * (1.0 - probability)
        energy_per_cycle += activity * lib.cell(gate.cell).switch_energy(lib.vdd)
    dff_cell = lib.cell("DFF")
    for dff in netlist.dffs:
        probability = probabilities[dff.d]
        activity = 2.0 * probability * (1.0 - probability)
        energy_per_cycle += activity * dff_cell.switch_energy(lib.vdd)
        energy_per_cycle += DFF_CLOCK_ENERGY_J
    return energy_per_cycle / clock_period_s


@dataclass
class MonteCarloResult:
    """Outcome of a statistical power estimation run."""

    average_power_w: float
    confidence_halfwidth_w: float
    cycles: int
    converged: bool

    @property
    def relative_halfwidth(self) -> float:
        """Half-width of the confidence interval relative to the mean."""
        if self.average_power_w == 0:
            return 0.0
        return self.confidence_halfwidth_w / self.average_power_w


def monte_carlo_power(
    netlist: Netlist,
    clock_period_s: float,
    library: Optional[GateLibrary] = None,
    input_one_probability: float = 0.5,
    relative_precision: float = 0.05,
    confidence_z: float = 1.96,
    min_cycles: int = 64,
    max_cycles: int = 20_000,
    warmup_cycles: int = 8,
    seed: int = 1,
) -> MonteCarloResult:
    """Average power from random-vector simulation with a stop rule.

    The netlist is clocked with independent random primary-input
    vectors (each bit 1 with ``input_one_probability``); per-cycle
    energies are accumulated until the ``confidence_z``-sigma interval
    of the running mean is within ``relative_precision`` of it, the
    standard Monte-Carlo stopping criterion of statistical power
    estimators.

    Returns the estimated average power, the confidence half-width,
    the number of measured cycles, and whether the stop rule was met
    before ``max_cycles``.
    """
    from repro.hw.logicsim import CompiledSimulator

    if not 0.0 <= input_one_probability <= 1.0:
        raise ValueError("input probability must lie in [0, 1]")
    if clock_period_s <= 0:
        raise ValueError("clock period must be positive")

    simulator = CompiledSimulator(netlist, library)
    rng = random.Random(seed)
    ports = sorted(netlist.input_ports)
    widths = {name: len(netlist.input_ports[name]) for name in ports}

    def random_inputs() -> Dict[str, int]:
        vector = {}
        for name in ports:
            value = 0
            for bit in range(widths[name]):
                if rng.random() < input_one_probability:
                    value |= 1 << bit
            vector[name] = value
        return vector

    for _ in range(warmup_cycles):
        simulator.step(random_inputs())

    count = 0
    mean = 0.0
    m2 = 0.0
    converged = False
    while count < max_cycles:
        energy = simulator.step(random_inputs())
        count += 1
        delta = energy - mean
        mean += delta / count
        m2 += delta * (energy - mean)
        if count >= min_cycles and mean > 0:
            std_error = math.sqrt(m2 / (count - 1) / count)
            if confidence_z * std_error <= relative_precision * mean:
                converged = True
                break

    power = mean / clock_period_s
    halfwidth = 0.0
    if count > 1:
        halfwidth = (
            confidence_z * math.sqrt(m2 / (count - 1) / count) / clock_period_s
        )
    return MonteCarloResult(
        average_power_w=power,
        confidence_halfwidth_w=halfwidth,
        cycles=count,
        converged=converged,
    )

"""Hardware synthesis: CFSM s-graphs to a gate-level FSMD.

Each hardware-mapped CFSM is compiled in two stages, mirroring the
"fast HW synthesis" box of the paper's Figure 2(a):

1. **RTL compilation** — every transition body is lowered to a
   *micro-program*: one register-transfer operation per controller
   state (shared-ALU FSMD style).  The micro-op IR has four op kinds:
   ALU transfers, non-zero tests with two successor states, event
   emissions, and DONE markers.

2. **Structural synthesis** — the micro-program is mapped onto a
   one-hot controller plus a datapath built from the gate library:
   load-enable registers for CFSM variables and temporaries, one shared
   ALU (ripple-carry add/sub, logic unit, optional barrel shifter,
   comparators), AND-OR one-hot operand selection, and per-event output
   value registers with strobe outputs.

Restrictions (documented for users): the hardware datapath is unsigned
modulo ``2^width``; MUL/DIV/MOD are not synthesizable (map such
processes to software); loop bounds must be non-negative.  The
reference micro-program executor in this module is used by tests to
check the gate-level netlist bit-for-bit against behavioral execution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union
from repro.errors import ReproError

from repro.cfsm.expr import BinaryOp, Const, EventValue, Expression, UnaryOp, Var
from repro.cfsm.model import Cfsm
from repro.cfsm.sgraph import (
    Assign,
    Emit,
    If,
    Loop,
    SGraph,
    SharedRead,
    SharedWrite,
    Statement,
)

#: Reserved port/event names for the block's shared-memory interface.
#: A SharedRead lowers to "emit the address on the memory-request port,
#: then capture the returned word from the memory-data input port"; a
#: SharedWrite drives the address and data ports in two cycles.  The
#: estimator (and, at system level, the simulation master) plays the
#: role of the bus interface by answering requests on these ports.
MEM_READ_REQ = "__MEMRD"
MEM_WRITE_ADDR = "__MEMWA"
MEM_WRITE_DATA = "__MEMWD"
MEM_DATA_IN = "__MEMDATA"
from repro.hw.library import GateLibrary
from repro.hw.netlist import Netlist, NetlistBuilder


class SynthesisError(ReproError):
    """Raised when a CFSM cannot be mapped to hardware."""


# ---------------------------------------------------------------------------
# Micro-op IR
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegSrc:
    """Datapath register operand."""

    name: str


@dataclass(frozen=True)
class ConstSrc:
    """Immediate operand (masked to the datapath width)."""

    value: int


@dataclass(frozen=True)
class InputSrc:
    """Input-event value port operand."""

    event: str


Src = Union[RegSrc, ConstSrc, InputSrc]

#: ALU operation mnemonics supported by the datapath.
ALU_OPS = ("ADD", "SUB", "AND", "OR", "XOR", "SHL", "SHR",
           "EQ", "NE", "LT", "LE", "GT", "GE", "PASS")


@dataclass
class AluOp:
    """``dest := a <op> b`` in one cycle."""

    dest: str
    op: str
    a: Src
    b: Src
    next: int = -1

    def __post_init__(self) -> None:
        if self.op not in ALU_OPS:
            raise SynthesisError("unsupported ALU op %r" % self.op)


@dataclass
class TestOp:
    """Branch: to ``next_taken`` when ``src`` is non-zero, else ``next``."""

    __test__ = False  # not a pytest test class

    src: Src
    next: int = -1
    next_taken: int = -1


@dataclass
class EmitOp:
    """Assert the event strobe and load its value register from ``src``."""

    event: str
    src: Src
    next: int = -1


@dataclass
class DoneOp:
    """End of a transition's micro-sequence; returns the FSMD to idle."""

    next: int = -1


MicroOp = Union[AluOp, TestOp, EmitOp, DoneOp]


@dataclass
class MicroProgram:
    """All transitions of one CFSM, lowered to micro-ops."""

    cfsm_name: str
    width: int
    ops: List[MicroOp] = field(default_factory=list)
    entries: Dict[str, int] = field(default_factory=dict)

    def execute(
        self,
        transition_name: str,
        state: Dict[str, int],
        inputs: Dict[str, int],
        max_cycles: int = 1_000_000,
    ) -> Tuple[int, List[Tuple[str, int]]]:
        """Reference execution of one transition's micro-sequence.

        Mutates ``state`` (register values, modulo ``2^width``) and
        returns ``(cycles, emitted (event, value) pairs)``.  Used to
        validate the gate-level netlist and for estimator fallbacks.
        """
        mask = (1 << self.width) - 1
        index = self.entries[transition_name]
        emitted: List[Tuple[str, int]] = []
        cycles = 0

        def read(src: Src) -> int:
            if isinstance(src, RegSrc):
                return state.get(src.name, 0) & mask
            if isinstance(src, ConstSrc):
                return src.value & mask
            return inputs.get(src.event, 0) & mask

        while True:
            cycles += 1
            if cycles > max_cycles:
                raise SynthesisError("micro-program exceeded %d cycles" % max_cycles)
            op = self.ops[index]
            if isinstance(op, AluOp):
                state[op.dest] = _alu_semantics(op.op, read(op.a), read(op.b), mask)
                index = op.next
            elif isinstance(op, TestOp):
                index = op.next_taken if read(op.src) != 0 else op.next
            elif isinstance(op, EmitOp):
                emitted.append((op.event, read(op.src)))
                index = op.next
            elif isinstance(op, DoneOp):
                return cycles, emitted
            else:
                raise SynthesisError("unknown micro-op %r" % op)


def _alu_semantics(op: str, a: int, b: int, mask: int) -> int:
    if op == "ADD":
        return (a + b) & mask
    if op == "SUB":
        return (a - b) & mask
    if op == "AND":
        return a & b
    if op == "OR":
        return a | b
    if op == "XOR":
        return a ^ b
    if op in ("SHL", "SHR"):
        # Match the barrel shifter exactly: only the stage-count low
        # bits of the amount are wired, so larger amounts wrap.
        width = mask.bit_length()
        stages = max(1, (width - 1).bit_length())
        amount = b & ((1 << stages) - 1)
        if op == "SHL":
            return (a << amount) & mask
        return (a & mask) >> amount
    if op == "EQ":
        return int(a == b)
    if op == "NE":
        return int(a != b)
    if op == "LT":
        return int(a < b)
    if op == "LE":
        return int(a <= b)
    if op == "GT":
        return int(a > b)
    if op == "GE":
        return int(a >= b)
    if op == "PASS":
        return a
    raise SynthesisError("unknown ALU op %r" % op)


# ---------------------------------------------------------------------------
# Stage 1: RTL compilation
# ---------------------------------------------------------------------------

_COMPARISONS = ("EQ", "NE", "LT", "LE", "GT", "GE")

_DIRECT_ALU = {
    "ADD": "ADD", "SUB": "SUB", "AND": "AND", "OR": "OR", "XOR": "XOR",
    "SHL": "SHL", "SHR": "SHR",
    "EQ": "EQ", "NE": "NE", "LT": "LT", "LE": "LE", "GT": "GT", "GE": "GE",
}


class RtlCompiler:
    """Lowers one CFSM's transitions into a :class:`MicroProgram`."""

    def __init__(self, cfsm: Cfsm) -> None:
        self.cfsm = cfsm
        self.program = MicroProgram(cfsm_name=cfsm.name, width=cfsm.width)
        self._temp_pool: List[str] = []
        self._temp_count = 0
        self._loop_depth = 0

    def compile(self) -> MicroProgram:
        for transition in self.cfsm.transitions:
            self.program.entries[transition.name] = len(self.program.ops)
            self._temp_pool = []
            self._loop_depth = 0
            self._compile_block(transition.body.statements)
            self._emit(DoneOp())
        self._check_targets()
        return self.program

    # -- helpers -----------------------------------------------------------

    def _emit(self, op: MicroOp) -> int:
        index = len(self.program.ops)
        self.program.ops.append(op)
        if op.next == -1:
            op.next = index + 1
        return index

    def _alloc_temp(self) -> str:
        if self._temp_pool:
            return self._temp_pool.pop()
        name = "_t%d" % self._temp_count
        self._temp_count += 1
        return name

    def _free_temp(self, src: Src) -> None:
        if isinstance(src, RegSrc) and src.name.startswith("_t"):
            if src.name not in self._temp_pool:
                self._temp_pool.append(src.name)

    def _check_targets(self) -> None:
        count = len(self.program.ops)
        for index, op in enumerate(self.program.ops):
            targets = [op.next] if not isinstance(op, DoneOp) else []
            if isinstance(op, TestOp):
                targets.append(op.next_taken)
            for target in targets:
                if not 0 <= target < count:
                    raise SynthesisError(
                        "micro-op %d has dangling target %d" % (index, target)
                    )

    # -- statements -----------------------------------------------------------

    def _compile_block(self, statements: Sequence[Statement]) -> None:
        for statement in statements:
            self._compile_statement(statement)

    def _compile_statement(self, statement: Statement) -> None:
        if isinstance(statement, Assign):
            self._compile_expr_into(statement.target, statement.value)
        elif isinstance(statement, Emit):
            src: Src = ConstSrc(0)
            if statement.value is not None:
                src = self._compile_expr(statement.value)
            self._emit(EmitOp(statement.event, src))
            self._free_temp(src)
        elif isinstance(statement, If):
            self._compile_if(statement)
        elif isinstance(statement, Loop):
            self._compile_loop(statement)
        elif isinstance(statement, SharedRead):
            address = self._compile_expr(statement.address)
            self._emit(EmitOp(MEM_READ_REQ, address))
            self._free_temp(address)
            self._emit(
                AluOp(statement.target, "PASS", InputSrc(MEM_DATA_IN), ConstSrc(0))
            )
        elif isinstance(statement, SharedWrite):
            address = self._compile_expr(statement.address)
            self._emit(EmitOp(MEM_WRITE_ADDR, address))
            self._free_temp(address)
            data = self._compile_expr(statement.value)
            self._emit(EmitOp(MEM_WRITE_DATA, data))
            self._free_temp(data)
        else:
            raise SynthesisError("cannot synthesize statement %r" % statement)

    def _compile_if(self, statement: If) -> None:
        cond = self._compile_expr(statement.cond)
        test_index = self._emit(TestOp(cond))
        self._free_temp(cond)
        test = self.program.ops[test_index]
        test.next_taken = len(self.program.ops)
        self._compile_block(statement.then)
        if statement.els:
            # A PASS-to-nowhere join state skips the else block.
            join_index = self._emit(AluOp("_join", "PASS", ConstSrc(0), ConstSrc(0)))
            test.next = len(self.program.ops)
            self._compile_block(statement.els)
            self.program.ops[join_index].next = len(self.program.ops)
        else:
            test.next = len(self.program.ops)

    def _compile_loop(self, statement: Loop) -> None:
        counter = "_lc%d" % self._loop_depth
        self._loop_depth += 1
        count_src = self._compile_expr(statement.count)
        self._emit(AluOp(counter, "PASS", count_src, ConstSrc(0)))
        self._free_temp(count_src)
        test_index = self._emit(TestOp(RegSrc(counter)))
        test = self.program.ops[test_index]
        test.next_taken = len(self.program.ops)
        self._compile_block(statement.body)
        decrement = AluOp(counter, "SUB", RegSrc(counter), ConstSrc(1))
        self._emit(decrement)
        decrement.next = test_index
        test.next = len(self.program.ops)
        self._loop_depth -= 1

    # -- expressions -----------------------------------------------------------

    def _compile_expr(self, expression: Expression) -> Src:
        if isinstance(expression, Const):
            return ConstSrc(expression.value)
        if isinstance(expression, Var):
            return RegSrc(expression.name)
        if isinstance(expression, EventValue):
            return InputSrc(expression.event)
        dest = self._alloc_temp()
        self._compile_expr_into(dest, expression)
        return RegSrc(dest)

    def _compile_expr_into(self, dest: str, expression: Expression) -> None:
        """Compile ``expression`` with its final op writing ``dest``."""
        if isinstance(expression, (Const, Var, EventValue)):
            self._emit(AluOp(dest, "PASS", self._compile_expr(expression), ConstSrc(0)))
            return
        if isinstance(expression, UnaryOp):
            operand = self._compile_expr(expression.operand)
            if expression.op == "NEG":
                self._emit(AluOp(dest, "SUB", ConstSrc(0), operand))
            elif expression.op == "NOT":
                self._emit(AluOp(dest, "EQ", operand, ConstSrc(0)))
            elif expression.op == "BNOT":
                self._emit(AluOp(dest, "XOR", operand, ConstSrc(-1)))
            else:
                raise SynthesisError("cannot synthesize unary %r" % expression.op)
            self._free_temp(operand)
            return
        if isinstance(expression, BinaryOp):
            op = expression.op
            if op in ("MUL", "DIV", "MOD"):
                raise SynthesisError(
                    "%s is not synthesizable; map process %r to software"
                    % (op, self.cfsm.name)
                )
            if op in ("LAND", "LOR"):
                left = self._bool_src(expression.left)
                right = self._bool_src(expression.right)
                self._emit(AluOp(dest, "AND" if op == "LAND" else "OR", left, right))
                self._free_temp(left)
                self._free_temp(right)
                return
            if op not in _DIRECT_ALU:
                raise SynthesisError("cannot synthesize binary %r" % op)
            left = self._compile_expr(expression.left)
            right = self._compile_expr(expression.right)
            self._emit(AluOp(dest, _DIRECT_ALU[op], left, right))
            self._free_temp(left)
            self._free_temp(right)
            return
        raise SynthesisError("cannot synthesize expression %r" % expression)

    def _bool_src(self, expression: Expression) -> Src:
        """Source normalized to 0/1 (comparisons already are)."""
        if isinstance(expression, BinaryOp) and expression.op in _COMPARISONS:
            return self._compile_expr(expression)
        operand = self._compile_expr(expression)
        dest = self._alloc_temp()
        self._emit(AluOp(dest, "NE", operand, ConstSrc(0)))
        self._free_temp(operand)
        return RegSrc(dest)


# ---------------------------------------------------------------------------
# Stage 2: structural synthesis
# ---------------------------------------------------------------------------


@dataclass
class SynthesizedBlock:
    """The synthesis result handed to the hardware power estimator."""

    cfsm: Cfsm
    micro_program: MicroProgram
    netlist: Netlist
    go_ports: Dict[str, str]  # transition name -> go port name
    input_ports: Dict[str, str]  # event name -> value port name
    value_ports: Dict[str, str]  # event name -> emitted-value port name
    strobe_ports: Dict[str, str]  # event name -> strobe port name
    register_ports: Dict[str, str]  # variable name -> observation port

    def logic_depth(self) -> int:
        """Levelized combinational depth of the synthesized netlist."""
        return levelize(self.netlist).depth


@dataclass(frozen=True)
class Levelization:
    """Levelized view of a netlist's combinational logic.

    ``net_levels[n]`` is the combinational level of net ``n``: 0 for
    constants, primary inputs, and flip-flop outputs (cycle
    boundaries), and ``1 + max(level of inputs)`` for gate outputs.
    ``level_widths[d]`` counts the gates at level ``d + 1`` — the gates
    that could evaluate concurrently in a data-parallel backend.
    ``depth`` (the critical path in gate delays) bounds the clock the
    block could sustain and feeds the static cost model.
    """

    net_levels: Tuple[int, ...]
    level_widths: Tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.level_widths)


def levelize(netlist: Netlist) -> Levelization:
    """Levelize ``netlist`` (single pass: gates are in dependency order)."""
    levels = [0] * netlist.num_nets
    widths: List[int] = []
    for gate in netlist.gates:
        level = 1 + max((levels[net] for net in gate.inputs), default=0)
        levels[gate.output] = level
        while len(widths) < level:
            widths.append(0)
        widths[level - 1] += 1
    return Levelization(net_levels=tuple(levels),
                        level_widths=tuple(widths))


def synthesize_cfsm(
    cfsm: Cfsm, library: Optional[GateLibrary] = None
) -> SynthesizedBlock:
    """Synthesize ``cfsm`` into a gate-level FSMD netlist."""
    program = RtlCompiler(cfsm).compile()
    return _Structural(cfsm, program, library or GateLibrary.default()).build()


#: Synthesis results keyed by (CFSM structure, library) digest.  The
#: explorer instantiates one master — and therefore one
#: HardwarePowerSimulator per hardware block — per design point, and
#: synthesis is a pure function of the CFSM structure and the library.
#: The cached SynthesizedBlock is shared read-only: all mutable
#: simulation state (net values, registers) lives in each
#: CompiledSimulator instance.
_SYNTH_CACHE: "OrderedDict[str, SynthesizedBlock]" = OrderedDict()

_SYNTH_CACHE_CAPACITY = 128


class SynthCacheStats:
    """Process-wide hit/miss accounting for the synthesis cache."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


SYNTH_CACHE_STATS = SynthCacheStats()


def clear_synth_cache() -> None:
    """Drop all cached synthesis results (tests and benchmarks)."""
    _SYNTH_CACHE.clear()
    SYNTH_CACHE_STATS.reset()


def synthesize_cfsm_cached(
    cfsm: Cfsm, library: Optional[GateLibrary] = None
) -> SynthesizedBlock:
    """Like :func:`synthesize_cfsm`, via the process-wide cache."""
    from repro.cfsm.fingerprint import cfsm_digest

    resolved = library or GateLibrary.default()
    key = cfsm_digest(cfsm, resolved.signature())
    block = _SYNTH_CACHE.get(key)
    if block is not None:
        _SYNTH_CACHE.move_to_end(key)
        SYNTH_CACHE_STATS.hits += 1
        return block
    SYNTH_CACHE_STATS.misses += 1
    block = synthesize_cfsm(cfsm, resolved)
    _SYNTH_CACHE[key] = block
    if len(_SYNTH_CACHE) > _SYNTH_CACHE_CAPACITY:
        _SYNTH_CACHE.popitem(last=False)
        SYNTH_CACHE_STATS.evictions += 1
    return block


class _Structural:
    """Maps a micro-program onto gates."""

    def __init__(self, cfsm: Cfsm, program: MicroProgram, library: GateLibrary) -> None:
        self.cfsm = cfsm
        self.program = program
        self.library = library
        self.width = cfsm.width
        self.builder = NetlistBuilder("%s_netlist" % cfsm.name)

    def build(self) -> SynthesizedBlock:
        builder = self.builder
        program = self.program
        ops = program.ops
        width = self.width

        # -- ports -------------------------------------------------------
        go_ports: Dict[str, str] = {}
        go_nets: Dict[str, int] = {}
        for name in program.entries:
            port = "go_%s" % name
            go_ports[name] = port
            go_nets[name] = builder.input_bus(port, 1)[0]

        input_events = sorted(
            {op.a.event for op in ops if isinstance(op, AluOp) and isinstance(op.a, InputSrc)}
            | {op.b.event for op in ops if isinstance(op, AluOp) and isinstance(op.b, InputSrc)}
            | {op.src.event for op in ops if isinstance(op, (TestOp, EmitOp)) and isinstance(op.src, InputSrc)}
        )
        input_ports: Dict[str, str] = {}
        input_buses: Dict[str, List[int]] = {}
        for event in input_events:
            port = "in_%s" % event
            input_ports[event] = port
            input_buses[event] = builder.input_bus(port, width)

        # -- controller state registers (Q created first, D attached last)
        state_q = [builder.new_net("s%d" % index) for index in range(len(ops))]
        idle_q = builder.new_net("idle")

        # -- operand sources ------------------------------------------------
        registers = sorted(
            set(self.cfsm.variables)
            | {op.dest for op in ops if isinstance(op, AluOp)}
        )
        reg_buses: Dict[str, List[int]] = {}

        # Registers must exist before operand muxes; build them with a
        # placeholder data bus?  No — load-enable registers read the
        # shared result bus, which reads operand muxes, which read the
        # register Q nets.  Create Q nets now, attach DFF muxes later.
        for reg in registers:
            reg_buses[reg] = [
                builder.new_net("%s[%d]" % (reg, bit)) for bit in range(width)
            ]

        def src_bus(src: Src) -> List[int]:
            if isinstance(src, RegSrc):
                return reg_buses[src.name]
            if isinstance(src, ConstSrc):
                return builder.const_bus(src.value, width)
            return input_buses[src.event]

        # -- one-hot operand selection ------------------------------------
        a_users: Dict[Src, List[int]] = {}
        b_users: Dict[Src, List[int]] = {}
        for index, op in enumerate(ops):
            if isinstance(op, AluOp):
                a_users.setdefault(op.a, []).append(index)
                b_users.setdefault(op.b, []).append(index)
            elif isinstance(op, (TestOp, EmitOp)):
                a_users.setdefault(op.src, []).append(index)

        def build_operand_bus(users: Dict[Src, List[int]]) -> List[int]:
            choices = []
            for src in sorted(users, key=repr):
                select = builder.or_tree([state_q[i] for i in users[src]])
                choices.append((select, src_bus(src)))
            if not choices:
                return builder.const_bus(0, width)
            return builder.onehot_mux(choices)

        a_bus = build_operand_bus(a_users)
        b_bus = build_operand_bus(b_users)

        # -- ALU -------------------------------------------------------------
        used_alu_ops = sorted({op.op for op in ops if isinstance(op, AluOp)})
        sum_bus, _carry = builder.ripple_add(a_bus, b_bus)
        diff_bus, no_borrow = builder.ripple_sub(a_bus, b_bus)
        eq_net = builder.is_zero(builder.bus_xor(a_bus, b_bus))
        lt_net = builder.not_(no_borrow)  # unsigned a < b
        le_net = builder.or_(lt_net, eq_net)

        def flag_bus(flag: int) -> List[int]:
            return [flag] + [0] * (width - 1)

        unit_results: Dict[str, List[int]] = {
            "ADD": sum_bus,
            "SUB": diff_bus,
            "AND": builder.bus_and(a_bus, b_bus),
            "OR": builder.bus_or(a_bus, b_bus),
            "XOR": builder.bus_xor(a_bus, b_bus),
            "EQ": flag_bus(eq_net),
            "NE": flag_bus(builder.not_(eq_net)),
            "LT": flag_bus(lt_net),
            "LE": flag_bus(le_net),
            "GT": flag_bus(builder.not_(le_net)),
            "GE": flag_bus(builder.not_(lt_net)),
            "PASS": list(a_bus),
        }
        if "SHL" in used_alu_ops:
            unit_results["SHL"] = builder.barrel_shift(a_bus, b_bus, left=True)
        if "SHR" in used_alu_ops:
            unit_results["SHR"] = builder.barrel_shift(a_bus, b_bus, left=False)

        op_selects: Dict[str, int] = {}
        for alu_op in used_alu_ops:
            states = [
                state_q[i]
                for i, op in enumerate(ops)
                if isinstance(op, AluOp) and op.op == alu_op
            ]
            op_selects[alu_op] = builder.or_tree(states)
        if used_alu_ops:
            result_bus = builder.onehot_mux(
                [(op_selects[alu_op], unit_results[alu_op]) for alu_op in used_alu_ops]
            )
        else:
            result_bus = builder.const_bus(0, width)

        # -- register write-back ---------------------------------------------
        for reg in registers:
            writer_states = [
                state_q[i]
                for i, op in enumerate(ops)
                if isinstance(op, AluOp) and op.dest == reg
            ]
            enable = builder.or_tree(writer_states)
            init = self.cfsm.variables.get(reg, 0)
            for bit in range(width):
                q_net = reg_buses[reg][bit]
                d_net = builder.mux(enable, q_net, result_bus[bit])
                builder.add_dff(d_net, q_net, (init >> bit) & 1)

        # -- emissions ---------------------------------------------------------
        value_ports: Dict[str, str] = {}
        strobe_ports: Dict[str, str] = {}
        emit_events = sorted({op.event for op in ops if isinstance(op, EmitOp)})
        for event in emit_events:
            states = [
                state_q[i]
                for i, op in enumerate(ops)
                if isinstance(op, EmitOp) and op.event == event
            ]
            strobe = builder.or_tree(states)
            value_reg = builder.register(a_bus, strobe, name="emit_%s" % event)
            value_port = "val_%s" % event
            strobe_port = "stb_%s" % event
            builder.output_bus(value_port, value_reg)
            builder.output_bus(strobe_port, [strobe])
            value_ports[event] = value_port
            strobe_ports[event] = strobe_port

        # -- controller next-state logic ---------------------------------------
        test_nonzero = builder.or_tree(a_bus)  # test ops route src via A
        incoming: Dict[int, List[int]] = {index: [] for index in range(len(ops))}
        done_states: List[int] = []
        for index, op in enumerate(ops):
            if isinstance(op, DoneOp):
                done_states.append(state_q[index])
                continue
            if isinstance(op, TestOp):
                taken = builder.and_(state_q[index], test_nonzero)
                fall = builder.and_(state_q[index], builder.not_(test_nonzero))
                incoming[op.next_taken].append(taken)
                incoming[op.next].append(fall)
            else:
                incoming[op.next].append(state_q[index])
        any_go_terms = []
        for name, entry in program.entries.items():
            start = builder.and_(idle_q, go_nets[name])
            incoming[entry].append(start)
            any_go_terms.append(go_nets[name])
        for index in range(len(ops)):
            builder.add_dff(builder.or_tree(incoming[index]), state_q[index], 0)
        stay_idle = builder.and_(idle_q, builder.not_(builder.or_tree(any_go_terms)))
        idle_d = builder.or_(builder.or_tree(done_states), stay_idle)
        builder.add_dff(idle_d, idle_q, 1)

        done_net = builder.or_tree(done_states)
        builder.output_bus("done", [done_net])
        builder.output_bus("idle", [idle_q])

        # -- variable observation ports (for equivalence checking) --------------
        register_ports: Dict[str, str] = {}
        for name in sorted(self.cfsm.variables):
            port = "var_%s" % name
            builder.output_bus(port, reg_buses[name])
            register_ports[name] = port

        netlist = builder.build()
        return SynthesizedBlock(
            cfsm=self.cfsm,
            micro_program=program,
            netlist=netlist,
            go_ports=go_ports,
            input_ports=input_ports,
            value_ports=value_ports,
            strobe_ports=strobe_ports,
            register_ports=register_ports,
        )

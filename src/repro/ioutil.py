"""Crash-safe file output.

Long co-estimation runs write artifacts worth hours of CPU time —
trace files, metrics snapshots, benchmark records, sweep checkpoints.
A plain ``open(path, "w")`` truncates the previous contents first, so a
crash (or a kill during a checkpoint) leaves a zero-byte or half-written
file where the last good artifact used to be.

:func:`atomic_write_text` implements the standard durable-replace
recipe: write to a temporary file *in the same directory* (so the final
rename never crosses a filesystem), flush and fsync it, then
``os.replace`` it over the destination, then fsync the *containing
directory*.  Readers observe either the old complete file or the new
complete file, never a truncated one — and the directory fsync makes
the rename itself durable: without it, a power cut between the rename
and the filesystem's metadata flush can resurrect the old file (or on
first write, no file at all), losing a checkpoint the process already
reported as safely written.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any

__all__ = ["atomic_write_text", "atomic_write_json", "fsync_directory"]


def fsync_directory(directory: str) -> None:
    """Flush a directory's metadata (its entry table) to stable storage.

    Needed after ``os.replace`` for the rename to survive a crash.
    Best-effort: platforms/filesystems that cannot fsync a directory
    (some network mounts; directories opened read-only on Windows) are
    silently tolerated — the data-file fsync already happened, so the
    worst case is the pre-rename state, which is exactly what atomic
    replace promises anyway.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str) -> str:
    """Atomically replace ``path`` with ``text``; returns ``path``.

    The temporary file is created next to the destination and renamed
    into place only after a successful write + fsync; on any failure it
    is removed and the previous contents of ``path`` survive intact.
    """
    destination = os.path.abspath(path)
    directory = os.path.dirname(destination)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(destination) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, destination)
        fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: str, payload: Any, indent: int = 1) -> str:
    """Atomically write ``payload`` as sorted, indented JSON + newline."""
    return atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )

"""Whole-design static analysis (the ``repro lint`` subsystem).

Layers:

* :mod:`repro.lint.diagnostics` — rule catalog, severities, locations,
  fingerprints;
* :mod:`repro.lint.baseline` — accepted-findings suppression files;
* :mod:`repro.lint.emitters` — text / JSON / SARIF 2.1.0 reports;
* :mod:`repro.lint.network_rules` — per-CFSM and cross-CFSM wiring
  rules (including shared-variable race detection);
* :mod:`repro.lint.paths` — s-graph reachability, feasible-path
  enumeration, the Section 4.2 cacheability report, and Section 4.1
  macro-model coverage;
* :mod:`repro.lint.netlist_rules` — gate-level structural lint;
* :mod:`repro.lint.absint` — abstract interpretation engine (bit-level
  netlist fixpoint, expression intervals, sound energy bounds);
* :mod:`repro.lint.dataflow_rules` — DF5xx dataflow diagnostics;
* :mod:`repro.lint.transvalidate` — TV6xx translation validation of
  the optimizer's rewrite-rule registry;
* :mod:`repro.lint.cost` — per-system static :class:`CostReport`
  (cycle, energy, and cache-table bounds) consumed by the service's
  cost-aware admission control;
* :mod:`repro.lint.passes` — the pass manager tying it together.
"""

from repro.lint.absint import (
    Interval,
    abstract_eval,
    abstract_netlist_values,
    compute_var_intervals,
    netlist_energy_bound,
)
from repro.lint.baseline import (
    Baseline,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    Location,
    Rule,
    Severity,
    exit_code,
    max_severity,
    rule,
    sort_diagnostics,
)
from repro.lint.emitters import (
    EMITTERS,
    render_json,
    render_sarif,
    render_text,
    sarif_report,
)
from repro.lint.cost import CostReport, compute_cost_report
from repro.lint.passes import PASSES, LintPass, LintResult, run_lint
from repro.lint.paths import CacheabilityReport, cacheability_report
from repro.lint.transvalidate import (
    ValidationReport,
    check_rewrite_rules,
    validate_rules,
)

__all__ = [
    "Baseline",
    "BaselineError",
    "CacheabilityReport",
    "CostReport",
    "Diagnostic",
    "EMITTERS",
    "Interval",
    "LintPass",
    "LintResult",
    "Location",
    "PASSES",
    "RULES",
    "Rule",
    "Severity",
    "ValidationReport",
    "abstract_eval",
    "abstract_netlist_values",
    "cacheability_report",
    "check_rewrite_rules",
    "compute_cost_report",
    "compute_var_intervals",
    "exit_code",
    "load_baseline",
    "max_severity",
    "netlist_energy_bound",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "run_lint",
    "sarif_report",
    "sort_diagnostics",
    "validate_rules",
    "write_baseline",
]

"""Whole-design static analysis (the ``repro lint`` subsystem).

Layers:

* :mod:`repro.lint.diagnostics` — rule catalog, severities, locations,
  fingerprints;
* :mod:`repro.lint.baseline` — accepted-findings suppression files;
* :mod:`repro.lint.emitters` — text / JSON / SARIF 2.1.0 reports;
* :mod:`repro.lint.network_rules` — per-CFSM and cross-CFSM wiring
  rules (including shared-variable race detection);
* :mod:`repro.lint.paths` — s-graph reachability, feasible-path
  enumeration, the Section 4.2 cacheability report, and Section 4.1
  macro-model coverage;
* :mod:`repro.lint.netlist_rules` — gate-level structural lint;
* :mod:`repro.lint.passes` — the pass manager tying it together.
"""

from repro.lint.baseline import (
    Baseline,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    Location,
    Rule,
    Severity,
    exit_code,
    max_severity,
    rule,
    sort_diagnostics,
)
from repro.lint.emitters import (
    EMITTERS,
    render_json,
    render_sarif,
    render_text,
    sarif_report,
)
from repro.lint.passes import PASSES, LintPass, LintResult, run_lint
from repro.lint.paths import CacheabilityReport, cacheability_report

__all__ = [
    "Baseline",
    "BaselineError",
    "CacheabilityReport",
    "Diagnostic",
    "EMITTERS",
    "LintPass",
    "LintResult",
    "Location",
    "PASSES",
    "RULES",
    "Rule",
    "Severity",
    "cacheability_report",
    "exit_code",
    "load_baseline",
    "max_severity",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "run_lint",
    "sarif_report",
    "sort_diagnostics",
    "write_baseline",
]

"""Abstract interpretation over netlists and s-graph expressions.

Two sound abstract domains power the DF5xx dataflow diagnostics and
the static cost model (:mod:`repro.lint.cost`):

* a **bit-level ternary domain** (``0``, ``1``, ``TOP``) evaluated to
  fixpoint over the synthesized netlist.  Gates are stored in
  dependency order, so one forward sweep settles the combinational
  logic; flip-flop outputs start at their initial values and *join*
  their D inputs until nothing changes.  A net whose fixpoint value is
  still ``0`` or ``1`` provably never toggles in any concrete run —
  which yields both diagnostics (constant logic feeding live gates)
  and a sound per-cycle **upper bound on switched energy**: the
  compiled simulator charges a gate at most one ``switch_energy`` per
  cycle, and a proven-constant output charges none, ever;

* an **interval domain** over s-graph expressions mirroring the exact
  interpreter semantics of :mod:`repro.cfsm.expr` (including the
  32-bit unsigned SHR wrap, ``DIV``-by-zero-is-zero, and the ``& 31``
  shift-amount mask).  Per-CFSM variable intervals are computed by a
  widening fixpoint over every assignment; guards and branch
  conditions whose interval excludes (or pins) zero are decided
  *beyond* what the syntactic constant propagation of
  :mod:`repro.lint.paths` can see.

Soundness is the contract, fuzz-tested in
``tests/property/test_prop_absint.py``: for every net and every
expression, the concrete value always lies inside the abstract one.
Every transfer function below is written to over-approximate; when in
doubt it answers TOP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cfsm.expr import (
    BinaryOp,
    Const,
    EventValue,
    Expression,
    UnaryOp,
    Var,
)
from repro.cfsm.model import Cfsm
from repro.cfsm.sgraph import Assign, If, Loop, SharedRead, Statement
from repro.hw.library import DFF_CLOCK_ENERGY_J, GateLibrary
from repro.hw.netlist import CONST0, CONST1, Netlist

__all__ = [
    "Interval",
    "TOP_INTERVAL",
    "abstract_eval",
    "compute_var_intervals",
    "abstract_netlist_values",
    "NetlistEnergyBound",
    "netlist_energy_bound",
]


# ---------------------------------------------------------------------------
# Interval domain over expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Interval:
    """A closed integer interval; ``None`` bounds mean +/- infinity."""

    lo: Optional[int] = None
    hi: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError("empty interval [%d, %d]" % (self.lo, self.hi))

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        return TOP_INTERVAL

    @property
    def bounded(self) -> bool:
        return self.lo is not None and self.hi is not None

    @property
    def is_constant(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None \
            else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None \
            else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, previous: "Interval") -> "Interval":
        """Standard interval widening against the previous iterate."""
        lo = self.lo
        hi = self.hi
        if previous.lo is not None and (lo is None or lo < previous.lo):
            lo = None
        if previous.hi is not None and (hi is None or hi > previous.hi):
            hi = None
        return Interval(lo, hi)

    # -- truthiness (the LAND/LOR/NOT and guard questions) --------------

    @property
    def definitely_zero(self) -> bool:
        return self.lo == 0 and self.hi == 0

    @property
    def definitely_nonzero(self) -> bool:
        return not self.contains(0)

    def __repr__(self) -> str:
        render = lambda b, inf: inf if b is None else str(b)  # noqa: E731
        return "[%s, %s]" % (render(self.lo, "-inf"), render(self.hi, "+inf"))


TOP_INTERVAL = Interval(None, None)
_BOOL = Interval(0, 1)
_TRUE = Interval.const(1)
_FALSE = Interval.const(0)


def _max_abs(interval: Interval) -> Optional[int]:
    if not interval.bounded:
        return None
    assert interval.lo is not None and interval.hi is not None
    return max(abs(interval.lo), abs(interval.hi))


def _signed_bits_hull(*intervals: Interval) -> Interval:
    """Smallest symmetric two's-complement range holding every operand.

    Bitwise AND/OR/XOR of k-bit two's-complement values stay k-bit
    two's-complement values (Python integers behave as infinitely
    sign-extended bit strings), so the result of any bitwise operator
    over these operands lies inside the hull.
    """
    bits = 1
    for interval in intervals:
        if not interval.bounded:
            return TOP_INTERVAL
        assert interval.lo is not None and interval.hi is not None
        for endpoint in (interval.lo, interval.hi):
            while not -(1 << (bits - 1)) <= endpoint <= (1 << (bits - 1)) - 1:
                bits += 1
    return Interval(-(1 << (bits - 1)), (1 << (bits - 1)) - 1)


def _add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def _sub(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.hi is None else a.lo - b.hi
    hi = None if a.hi is None or b.lo is None else a.hi - b.lo
    return Interval(lo, hi)


def _mul(a: Interval, b: Interval) -> Interval:
    if a == _FALSE or b == _FALSE:
        return _FALSE
    if not a.bounded or not b.bounded:
        return TOP_INTERVAL
    assert a.lo is not None and a.hi is not None
    assert b.lo is not None and b.hi is not None
    products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return Interval(min(products), max(products))


def _div(a: Interval, b: Interval) -> Interval:
    """Truncating division with the interpreter's b==0 -> 0 convention."""
    if b.is_constant and b.lo not in (0, None):
        if not a.bounded:
            return TOP_INTERVAL
        assert a.lo is not None and a.hi is not None and b.lo is not None
        lo = int(a.lo / b.lo)
        hi = int(a.hi / b.lo)
        return Interval(min(lo, hi), max(lo, hi))
    # |a / b| <= |a| for any b != 0 (|b| >= 1), and b == 0 yields 0.
    magnitude = _max_abs(a)
    if magnitude is None:
        return TOP_INTERVAL
    return Interval(-magnitude, magnitude)


def _mod(a: Interval, b: Interval) -> Interval:
    """``a - trunc(a/b)*b``: same sign as ``a``; magnitude < |b| when
    b != 0, and exactly ``a`` when b == 0."""
    magnitude_a = _max_abs(a)
    magnitude_b = _max_abs(b)
    if magnitude_a is None or magnitude_b is None:
        return TOP_INTERVAL
    bound = max(magnitude_a if b.contains(0) else 0,
                max(0, magnitude_b - 1))
    assert a.lo is not None and a.hi is not None
    lo = 0 if a.lo >= 0 else -bound
    hi = 0 if a.hi <= 0 else bound
    return Interval(min(lo, hi), max(lo, hi))


def _shift_amounts(b: Interval) -> Tuple[int, int]:
    """Range of ``b & 31`` (the interpreter's shift-amount mask)."""
    if b.bounded and b.lo is not None and b.hi is not None \
            and 0 <= b.lo and b.hi <= 31:
        return b.lo, b.hi
    return 0, 31


def _shl(a: Interval, b: Interval) -> Interval:
    if not a.bounded:
        return TOP_INTERVAL
    assert a.lo is not None and a.hi is not None
    smin, smax = _shift_amounts(b)
    candidates = [a.lo << smin, a.lo << smax, a.hi << smin, a.hi << smax]
    return Interval(min(candidates), max(candidates))


def _shr(a: Interval, b: Interval) -> Interval:
    smin, smax = _shift_amounts(b)
    wrap = 1 << 32
    if a.bounded and a.lo is not None and a.hi is not None \
            and 0 <= a.lo and a.hi < wrap:
        return Interval(a.lo >> smax, a.hi >> smin)
    # The operand wraps to [0, 2^32): the shifted result stays inside.
    return Interval(0, (wrap - 1) >> smin)


def _compare(op: str, a: Interval, b: Interval) -> Interval:
    if a.bounded and b.bounded:
        assert a.lo is not None and a.hi is not None
        assert b.lo is not None and b.hi is not None
        if op == "LT":
            if a.hi < b.lo:
                return _TRUE
            if a.lo >= b.hi:
                return _FALSE
        elif op == "LE":
            if a.hi <= b.lo:
                return _TRUE
            if a.lo > b.hi:
                return _FALSE
        elif op == "GT":
            if a.lo > b.hi:
                return _TRUE
            if a.hi <= b.lo:
                return _FALSE
        elif op == "GE":
            if a.lo >= b.hi:
                return _TRUE
            if a.hi < b.lo:
                return _FALSE
        elif op == "EQ":
            if a.is_constant and b.is_constant and a.lo == b.lo:
                return _TRUE
            if a.hi < b.lo or b.hi < a.lo:
                return _FALSE
        elif op == "NE":
            if a.is_constant and b.is_constant and a.lo == b.lo:
                return _FALSE
            if a.hi < b.lo or b.hi < a.lo:
                return _TRUE
    else:
        # Half-bounded operands can still decide strict comparisons.
        if op in ("LT", "LE") and a.hi is not None and b.lo is not None:
            if (a.hi < b.lo) or (op == "LE" and a.hi <= b.lo):
                return _TRUE
        if op in ("GT", "GE") and a.lo is not None and b.hi is not None:
            if (a.lo > b.hi) or (op == "GE" and a.lo >= b.hi):
                return _TRUE
    return _BOOL


def _logical(op: str, a: Interval, b: Interval) -> Interval:
    if op == "LAND":
        if a.definitely_zero or b.definitely_zero:
            return _FALSE
        if a.definitely_nonzero and b.definitely_nonzero:
            return _TRUE
    else:  # LOR
        if a.definitely_nonzero or b.definitely_nonzero:
            return _TRUE
        if a.definitely_zero and b.definitely_zero:
            return _FALSE
    return _BOOL


def _binary_interval(op: str, a: Interval, b: Interval) -> Interval:
    if op == "ADD":
        return _add(a, b)
    if op == "SUB":
        return _sub(a, b)
    if op == "MUL":
        return _mul(a, b)
    if op == "DIV":
        return _div(a, b)
    if op == "MOD":
        return _mod(a, b)
    if op in ("AND", "OR", "XOR"):
        if op == "AND" and (a == _FALSE or b == _FALSE):
            return _FALSE
        if a.is_constant and b.is_constant:
            assert a.lo is not None and b.lo is not None
            value = {"AND": a.lo & b.lo, "OR": a.lo | b.lo,
                     "XOR": a.lo ^ b.lo}[op]
            return Interval.const(value)
        hull = _signed_bits_hull(a, b)
        if op == "AND" and a.lo is not None and a.lo >= 0 \
                and b.lo is not None and b.lo >= 0:
            # Both operands non-negative: 0 <= a & b <= min(a, b).
            ceiling = hull.hi
            if a.hi is not None and b.hi is not None:
                ceiling = min(a.hi, b.hi)
            return Interval(0, ceiling)
        if a.lo is not None and a.lo >= 0 and b.lo is not None \
                and b.lo >= 0 and hull.hi is not None:
            return Interval(0, hull.hi)
        return hull
    if op == "SHL":
        return _shl(a, b)
    if op == "SHR":
        return _shr(a, b)
    if op in ("EQ", "NE", "LT", "LE", "GT", "GE"):
        return _compare(op, a, b)
    if op in ("LAND", "LOR"):
        return _logical(op, a, b)
    return TOP_INTERVAL


def _unary_interval(op: str, a: Interval) -> Interval:
    if op == "NEG":
        lo = None if a.hi is None else -a.hi
        hi = None if a.lo is None else -a.lo
        return Interval(lo, hi)
    if op == "BNOT":  # ~a == -a - 1
        lo = None if a.hi is None else -a.hi - 1
        hi = None if a.lo is None else -a.lo - 1
        return Interval(lo, hi)
    if op == "NOT":
        if a.definitely_zero:
            return _TRUE
        if a.definitely_nonzero:
            return _FALSE
        return _BOOL
    return TOP_INTERVAL


#: Abstract environment: variable name (or ``@event`` key) -> interval.
AbstractEnv = Mapping[str, Interval]


def abstract_eval(expression: Expression, env: AbstractEnv) -> Interval:
    """Sound interval for ``expression`` under ``env``.

    Unbound variables and event values are TOP (they arrive from other
    processes or shared memory and can hold anything).
    """
    if isinstance(expression, Const):
        return Interval.const(expression.value)
    if isinstance(expression, Var):
        return env.get(expression.name, TOP_INTERVAL)
    if isinstance(expression, EventValue):
        return env.get(expression.env_key, TOP_INTERVAL)
    if isinstance(expression, BinaryOp):
        return _binary_interval(
            expression.op,
            abstract_eval(expression.left, env),
            abstract_eval(expression.right, env),
        )
    if isinstance(expression, UnaryOp):
        return _unary_interval(
            expression.op, abstract_eval(expression.operand, env)
        )
    return TOP_INTERVAL


# ---------------------------------------------------------------------------
# Per-CFSM variable intervals (widening fixpoint)
# ---------------------------------------------------------------------------

#: Fixpoint rounds before widening kicks in.  Small: the flow-
#: insensitive system converges in a handful of rounds for real
#: designs, and widening guarantees termination for counters.
_WIDEN_AFTER = 3
_MAX_ROUNDS = 32


def compute_var_intervals(cfsm: Cfsm) -> Dict[str, Interval]:
    """Flow-insensitive interval per variable, over-approximating every
    value the variable can hold at any point of any transition.

    Starts from the initial values, joins the abstract value of every
    assignment's RHS (shared-memory reads are TOP), and widens any
    still-growing bound to infinity after a few rounds.
    """
    intervals: Dict[str, Interval] = {
        name: Interval.const(initial)
        for name, initial in cfsm.variables.items()
    }
    assigns: List[Assign] = []
    for transition in cfsm.transitions:
        for stmt in transition.body.nodes():
            if isinstance(stmt, Assign):
                assigns.append(stmt)
            elif isinstance(stmt, SharedRead):
                intervals[stmt.target] = TOP_INTERVAL
    for round_index in range(_MAX_ROUNDS):
        changed = False
        for stmt in assigns:
            current = intervals.get(stmt.target, TOP_INTERVAL)
            if current == TOP_INTERVAL:
                continue
            value = abstract_eval(stmt.value, intervals)
            joined = current.join(value)
            if round_index >= _WIDEN_AFTER:
                joined = joined.widen(current)
            if joined != current:
                intervals[stmt.target] = joined
                changed = True
        if not changed:
            break
    return intervals


def decided_branches(
    statements: Sequence[Statement], intervals: AbstractEnv
) -> List[Tuple[If, bool]]:
    """``(if_statement, taken)`` for every If whose condition's
    interval pins the outcome.  The caller filters out branches the
    syntactic constant propagation already decided."""
    decided: List[Tuple[If, bool]] = []

    def walk(stmts: Sequence[Statement]) -> None:
        for stmt in stmts:
            if isinstance(stmt, If):
                cond = abstract_eval(stmt.cond, intervals)
                if cond.definitely_nonzero:
                    decided.append((stmt, True))
                elif cond.definitely_zero:
                    decided.append((stmt, False))
                walk(stmt.then)
                walk(stmt.els)
            elif isinstance(stmt, Loop):
                walk(stmt.body)

    walk(statements)
    return decided


# ---------------------------------------------------------------------------
# Bit-level ternary domain over netlists
# ---------------------------------------------------------------------------

#: Abstract bit: 0, 1, or None (TOP / unknown).
AbstractBit = Optional[int]


def _join_bit(a: AbstractBit, b: AbstractBit) -> AbstractBit:
    return a if a == b else None


def _gate_transfer(cell: str, ins: List[AbstractBit]) -> AbstractBit:
    """Ternary semantics of one gate, mirroring the compiled simulator's
    generated expressions exactly."""
    if cell == "BUF":
        return ins[0]
    if cell == "INV":
        return None if ins[0] is None else ins[0] ^ 1
    a, b = (ins[0], ins[1]) if len(ins) > 1 else (ins[0], None)
    if cell == "AND2":
        if a == 0 or b == 0:
            return 0
        if a == 1 and b == 1:
            return 1
        return None
    if cell == "NAND2":
        if a == 0 or b == 0:
            return 1
        if a == 1 and b == 1:
            return 0
        return None
    if cell == "OR2":
        if a == 1 or b == 1:
            return 1
        if a == 0 and b == 0:
            return 0
        return None
    if cell == "NOR2":
        if a == 1 or b == 1:
            return 0
        if a == 0 and b == 0:
            return 1
        return None
    if cell == "XOR2":
        if a is None or b is None:
            return None
        return a ^ b
    if cell == "XNOR2":
        if a is None or b is None:
            return None
        return (a ^ b) ^ 1
    if cell == "MUX2":
        sel, if0, if1 = ins[0], ins[1], ins[2]
        if sel == 1:
            return if1
        if sel == 0:
            return if0
        return _join_bit(if0, if1)
    return None


def abstract_netlist_values(netlist: Netlist) -> List[AbstractBit]:
    """Fixpoint abstract value per net (0, 1, or TOP).

    Primary inputs are TOP (externally driven), flip-flop outputs start
    at their initial values and join their D fixpoints — so a ``0`` or
    ``1`` in the result is a proof the net holds that value at every
    settled cycle of every concrete run.
    """
    values: List[AbstractBit] = [None] * netlist.num_nets
    values[CONST0] = 0
    values[CONST1] = 1
    for dff in netlist.dffs:
        values[dff.q] = dff.init
    # Each iteration either reaches the fixpoint or widens at least one
    # flip-flop output to TOP, so the loop ends within dff_count + 1
    # rounds; the range() is a belt-and-suspenders backstop.
    for _ in range(len(netlist.dffs) + 2):
        for gate in netlist.gates:
            values[gate.output] = _gate_transfer(
                gate.cell, [values[net] for net in gate.inputs]
            )
        changed = False
        for dff in netlist.dffs:
            joined = _join_bit(values[dff.q], values[dff.d])
            if joined != values[dff.q]:
                values[dff.q] = joined
                changed = True
        if not changed:
            break
    return values


@dataclass(frozen=True)
class NetlistEnergyBound:
    """Sound per-cycle switched-energy bound for one netlist.

    ``total_j`` is an upper bound on what
    :meth:`repro.hw.logicsim.CompiledSimulator.step` can return for any
    inputs in any cycle: the clock tree charges every flip-flop each
    cycle, and every net that is not proven constant is charged one
    full toggle.
    """

    netlist: str
    total_j: float
    clock_j: float
    dff_switch_j: float
    input_j: float
    gate_switch_j: float
    gate_outputs: int
    constant_gate_outputs: int
    constant_dff_outputs: int
    #: Energy the constant nets can never dissipate — the headroom a
    #: constant-folding resynthesis would reclaim from the bound.
    dead_toggle_j: float

    def to_payload(self) -> Dict[str, object]:
        return {
            "netlist": self.netlist,
            "total_j": self.total_j,
            "clock_j": self.clock_j,
            "dff_switch_j": self.dff_switch_j,
            "input_j": self.input_j,
            "gate_switch_j": self.gate_switch_j,
            "gate_outputs": self.gate_outputs,
            "constant_gate_outputs": self.constant_gate_outputs,
            "constant_dff_outputs": self.constant_dff_outputs,
            "dead_toggle_j": self.dead_toggle_j,
        }


def netlist_energy_bound(
    netlist: Netlist,
    library: Optional[GateLibrary] = None,
    values: Optional[List[AbstractBit]] = None,
    pi_energy_j: Optional[float] = None,
) -> NetlistEnergyBound:
    """Per-cycle energy upper bound from the ternary fixpoint.

    Mirrors the compiled simulator's charging scheme term by term: a
    gate or flip-flop output toggles at most once per cycle (each is
    written exactly once per ``step``), primary-input bits are driven
    externally and must all be assumed to toggle, and the clock tree
    charges every flip-flop unconditionally.
    """
    lib = library or GateLibrary.default()
    if values is None:
        values = abstract_netlist_values(netlist)
    if pi_energy_j is None:
        pi_energy_j = lib.cell("BUF").switch_energy(lib.vdd)
    clock_j = DFF_CLOCK_ENERGY_J * netlist.dff_count
    dff_energy = lib.cell("DFF").switch_energy(lib.vdd)
    dff_switch_j = 0.0
    constant_dffs = 0
    for dff in netlist.dffs:
        if values[dff.q] is None:
            dff_switch_j += dff_energy
        else:
            constant_dffs += 1
    input_bits = sum(len(nets) for nets in netlist.input_ports.values())
    input_j = input_bits * pi_energy_j
    gate_switch_j = 0.0
    dead_toggle_j = 0.0
    constant_gates = 0
    for gate in netlist.gates:
        energy = lib.cell(gate.cell).switch_energy(lib.vdd)
        if values[gate.output] is None:
            gate_switch_j += energy
        else:
            constant_gates += 1
            dead_toggle_j += energy
    return NetlistEnergyBound(
        netlist=netlist.name,
        total_j=clock_j + dff_switch_j + input_j + gate_switch_j,
        clock_j=clock_j,
        dff_switch_j=dff_switch_j,
        input_j=input_j,
        gate_switch_j=gate_switch_j,
        gate_outputs=len(netlist.gates),
        constant_gate_outputs=constant_gates,
        constant_dff_outputs=constant_dffs,
        dead_toggle_j=dead_toggle_j,
    )

"""Baseline files: accepted-findings suppression.

A baseline is a checked-in JSON inventory of known findings.  Linting
with ``--baseline`` subtracts them, so a legacy design can gate CI on
*new* findings only — the standard ratchet workflow (ruff's
``--add-noqa``, ESLint bulk-suppressions, Android lint baselines).

Suppression matches on the diagnostic fingerprint (rule code +
location + message), never on ordering, so concurrent analyses and
report reshuffles do not invalidate a baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ReproError
from repro.lint.diagnostics import Diagnostic

#: Format marker so later PRs can migrate baseline files knowingly.
BASELINE_VERSION = 1


class BaselineError(ReproError):
    """Raised for unreadable or future-versioned baseline files."""


@dataclass
class Baseline:
    """A set of suppressed findings keyed by fingerprint."""

    entries: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @classmethod
    def from_diagnostics(cls, diagnostics: List[Diagnostic]) -> "Baseline":
        """Baseline accepting exactly the given findings."""
        entries: Dict[str, Dict[str, str]] = {}
        for diagnostic in diagnostics:
            entries[diagnostic.fingerprint] = {
                "code": diagnostic.code,
                "location": diagnostic.location.qualified_name(),
                "message": diagnostic.message,
            }
        return cls(entries=entries)

    def suppresses(self, diagnostic: Diagnostic) -> bool:
        """Whether ``diagnostic`` is in the accepted set."""
        return diagnostic.fingerprint in self.entries

    def apply(
        self, diagnostics: List[Diagnostic]
    ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """Split into (kept, suppressed), preserving order."""
        kept: List[Diagnostic] = []
        suppressed: List[Diagnostic] = []
        for diagnostic in diagnostics:
            if self.suppresses(diagnostic):
                suppressed.append(diagnostic)
            else:
                kept.append(diagnostic)
        return kept, suppressed

    # -- serialization -----------------------------------------------------

    def to_json(self) -> str:
        """Serialize; entries are sorted so the file diffs cleanly."""
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro-lint",
            "suppress": [
                {
                    "fingerprint": fingerprint,
                    "code": meta.get("code", ""),
                    "location": meta.get("location", ""),
                    "message": meta.get("message", ""),
                }
                for fingerprint, meta in sorted(self.entries.items())
            ],
        }
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        """Parse a baseline produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise BaselineError("baseline is not valid JSON: %s" % error)
        if not isinstance(payload, dict):
            raise BaselineError("baseline must be a JSON object")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise BaselineError(
                "unsupported baseline version %r (expected %d)"
                % (version, BASELINE_VERSION)
            )
        entries: Dict[str, Dict[str, str]] = {}
        for row in payload.get("suppress", []):
            if not isinstance(row, dict) or "fingerprint" not in row:
                raise BaselineError("malformed baseline entry: %r" % (row,))
            fingerprint = str(row["fingerprint"])
            entries[fingerprint] = {
                "code": str(row.get("code", "")),
                "location": str(row.get("location", "")),
                "message": str(row.get("message", "")),
            }
        return cls(entries=entries)


def load_baseline(path: str) -> Baseline:
    """Read a baseline file from disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return Baseline.from_json(handle.read())
    except OSError as error:
        raise BaselineError("cannot read baseline %s: %s" % (path, error))


def write_baseline(path: str, diagnostics: List[Diagnostic]) -> Baseline:
    """Write a baseline accepting ``diagnostics`` (atomic)."""
    from repro.ioutil import atomic_write_text

    baseline = Baseline.from_diagnostics(diagnostics)
    atomic_write_text(path, baseline.to_json())
    return baseline

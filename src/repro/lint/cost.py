"""Static cost model: per-system resource and energy bounds.

Combines the three static analyses into one `CostReport` the rest of
the stack can act on *before* running anything:

* **gate-level structure** — gate/flip-flop counts and the levelized
  combinational depth from :func:`repro.hw.synth.levelize`;
* **DF5xx energy bounds** — the bit-level fixpoint's sound per-cycle
  switched-energy bound (:func:`repro.lint.absint.netlist_energy_bound`);
* **cycle and macro-op bounds** — a worst-case walk of each
  transition's s-graph mirroring the RTL compiler's one-op-per-cycle
  micro-program (hardware) and the interpreter's macro-operation
  stream (software), with loop bounds from interval analysis.
  Hardware loop counters wrap to the datapath width, so hardware
  bounds are always finite; software loops fall back to the
  interpreter's per-loop iteration cap (beyond which execution raises)
  and the report marks the transition as cap-assumed;
* **Section 4.2 path counts** — the predicted energy-cache table size
  from :func:`repro.lint.paths.cacheability_report`.

The scalar :attr:`CostReport.cost_units` is a deterministic, unitless
admission weight (monotone in predicted work); the service multiplies
it by a *learned* seconds-per-unit rate, so only relative magnitudes
matter.  ``repro lint --cost`` renders the report; the service derives
``Retry-After`` quotes and shed decisions from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfsm.expr import BinaryOp, Const, EventValue, Expression, UnaryOp, Var
from repro.cfsm.model import Cfsm, Network
from repro.cfsm.sgraph import (
    Assign,
    Emit,
    If,
    Loop,
    SharedRead,
    SharedWrite,
    Statement,
)
from repro.errors import ReproError
from repro.lint.absint import (
    AbstractEnv,
    abstract_eval,
    abstract_netlist_values,
    compute_var_intervals,
    netlist_energy_bound,
)
from repro.lint.paths import cacheability_report

__all__ = [
    "ComponentCost",
    "CostReport",
    "compute_cost_report",
    "hw_transition_cycle_bound",
    "sw_transition_op_bound",
]

_COMPARISONS = ("EQ", "NE", "LT", "LE", "GT", "GE")
_UNSYNTHESIZABLE = ("MUL", "DIV", "MOD")


class _Unbounded(Exception):
    """Internal: a hardware bound walk hit an unsynthesizable operator."""


# ---------------------------------------------------------------------------
# Hardware: micro-program cycle bounds (one micro-op == one cycle)
# ---------------------------------------------------------------------------


def _is_leaf(expression: Expression) -> bool:
    return isinstance(expression, (Const, Var, EventValue))


def _hw_ops_into(expression: Expression) -> int:
    """Micro-ops to place ``expression`` into a destination register,
    mirroring ``RtlCompiler._compile_expr_into`` exactly."""
    if _is_leaf(expression):
        return 1  # PASS
    if isinstance(expression, UnaryOp):
        return _hw_ops(expression.operand) + 1
    if isinstance(expression, BinaryOp):
        if expression.op in _UNSYNTHESIZABLE:
            raise _Unbounded(expression.op)
        if expression.op in ("LAND", "LOR"):
            return (_hw_bool_src(expression.left)
                    + _hw_bool_src(expression.right) + 1)
        return _hw_ops(expression.left) + _hw_ops(expression.right) + 1
    raise _Unbounded(type(expression).__name__)


def _hw_ops(expression: Expression) -> int:
    """Micro-ops to make ``expression`` available as an ALU source
    (leaves are free register/constant sources)."""
    return 0 if _is_leaf(expression) else _hw_ops_into(expression)


def _hw_bool_src(expression: Expression) -> int:
    if isinstance(expression, BinaryOp) and expression.op in _COMPARISONS:
        return _hw_ops(expression)
    return _hw_ops(expression) + 1  # extra NE-with-zero op


def _hw_loop_iterations(
    count: Expression, intervals: AbstractEnv, width: int
) -> int:
    """Worst-case iterations of a hardware loop.

    The synthesized loop counter holds ``count & mask``, so iterations
    never exceed the datapath mask — even a negative or unbounded
    count is finite in hardware.
    """
    mask = (1 << width) - 1
    interval = abstract_eval(count, intervals)
    if (interval.bounded and interval.lo is not None
            and interval.hi is not None
            and 0 <= interval.lo and interval.hi <= mask):
        return interval.hi
    return mask


def _hw_block(
    statements: Sequence[Statement], intervals: AbstractEnv, width: int
) -> int:
    return sum(_hw_statement(stmt, intervals, width) for stmt in statements)


def _hw_statement(
    stmt: Statement, intervals: AbstractEnv, width: int
) -> int:
    if isinstance(stmt, Assign):
        return _hw_ops_into(stmt.value)
    if isinstance(stmt, Emit):
        value_ops = 0 if stmt.value is None else _hw_ops(stmt.value)
        return value_ops + 1  # EmitOp
    if isinstance(stmt, SharedRead):
        return _hw_ops(stmt.address) + 2  # EmitOp + PASS landing
    if isinstance(stmt, SharedWrite):
        return _hw_ops(stmt.address) + _hw_ops(stmt.value) + 2
    if isinstance(stmt, If):
        then_ops = _hw_block(stmt.then, intervals, width)
        els_ops = _hw_block(stmt.els, intervals, width)
        if stmt.els:
            then_ops += 1  # join PASS on the then-path
        return _hw_ops(stmt.cond) + 1 + max(then_ops, els_ops)
    if isinstance(stmt, Loop):
        iterations = _hw_loop_iterations(stmt.count, intervals, width)
        body = _hw_block(stmt.body, intervals, width)
        # counter-init PASS, then per iteration TestOp + body + SUB,
        # then the final exiting TestOp.
        return _hw_ops(stmt.count) + 1 + iterations * (2 + body) + 1
    return 0


def hw_transition_cycle_bound(
    cfsm: Cfsm, transition_index: int,
    intervals: Optional[AbstractEnv] = None,
) -> Optional[int]:
    """Worst-case micro-program cycles for one transition (``None``
    when the body is unsynthesizable — NL300 reports that)."""
    if intervals is None:
        intervals = compute_var_intervals(cfsm)
    transition = cfsm.transitions[transition_index]
    try:
        body = _hw_block(transition.body.statements, intervals, cfsm.width)
    except _Unbounded:
        return None
    return body + 1  # DoneOp


# ---------------------------------------------------------------------------
# Software: macro-operation bounds (the interpreter's trace stream)
# ---------------------------------------------------------------------------


def _sw_expr_ops(expression: Expression) -> int:
    """Macro-ops one evaluation appends: ADETECT per event-value read
    plus one operator call per tree node (no short-circuit — the
    interpreter bulk-extends the static op prelude)."""
    return len(expression.event_values()) + len(expression.macro_ops())


@dataclass
class _SwWalk:
    capped: bool = False


def _sw_block(
    statements: Sequence[Statement], intervals: AbstractEnv,
    iteration_cap: int, walk: _SwWalk,
) -> int:
    return sum(
        _sw_statement(stmt, intervals, iteration_cap, walk)
        for stmt in statements
    )


def _sw_statement(
    stmt: Statement, intervals: AbstractEnv,
    iteration_cap: int, walk: _SwWalk,
) -> int:
    if isinstance(stmt, Assign):
        return _sw_expr_ops(stmt.value) + 1  # AIVC/AVV
    if isinstance(stmt, Emit):
        value_ops = 0 if stmt.value is None else _sw_expr_ops(stmt.value)
        return value_ops + 1  # AEMIT
    if isinstance(stmt, SharedRead):
        return _sw_expr_ops(stmt.address) + 1  # ASHRD
    if isinstance(stmt, SharedWrite):
        return _sw_expr_ops(stmt.address) + _sw_expr_ops(stmt.value) + 1
    if isinstance(stmt, If):
        then_ops = _sw_block(stmt.then, intervals, iteration_cap, walk)
        els_ops = _sw_block(stmt.els, intervals, iteration_cap, walk)
        return _sw_expr_ops(stmt.cond) + 1 + max(then_ops, els_ops)
    if isinstance(stmt, Loop):
        interval = abstract_eval(stmt.count, intervals)
        if interval.hi is None or interval.hi > iteration_cap:
            # Beyond the cap the interpreter raises, so capped
            # executions bound every *completed* one.
            iterations = iteration_cap
            walk.capped = True
        else:
            iterations = max(0, interval.hi)
        body = _sw_block(stmt.body, intervals, iteration_cap, walk)
        # TLOOPT per iteration plus the final TLOOPF.
        return _sw_expr_ops(stmt.count) + iterations * (1 + body) + 1
    return 0


def sw_transition_op_bound(
    cfsm: Cfsm, transition_index: int,
    intervals: Optional[AbstractEnv] = None,
) -> Tuple[int, bool]:
    """``(macro-op bound, cap_assumed)`` for one transition."""
    if intervals is None:
        intervals = compute_var_intervals(cfsm)
    transition = cfsm.transitions[transition_index]
    walk = _SwWalk()
    ops = _sw_block(
        transition.body.statements, intervals,
        transition.body.max_iterations, walk,
    )
    return ops, walk.capped


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------


@dataclass
class ComponentCost:
    """Static cost bounds for one mapped process."""

    name: str
    implementation: str  # "hw" | "sw"
    #: Worst-case reaction length: micro-program cycles (hw) or
    #: interpreter macro-operations (sw).  ``None`` when the process
    #: is unsynthesizable hardware.
    cycles_per_event_bound: Optional[int]
    #: Sound upper bound on the energy one reaction can dissipate
    #: under the matching estimator model (gate-level hw, Section 4.1
    #: macro-model sw).  ``None`` when no bound exists.
    energy_per_event_bound_j: Optional[float]
    #: Transitions whose software loop bound fell back to the
    #: interpreter's iteration cap.
    cap_assumed_transitions: Tuple[str, ...] = ()
    # -- hardware-only structure (zero for software) --
    gate_count: int = 0
    dff_count: int = 0
    logic_depth: int = 0
    constant_gate_outputs: int = 0
    energy_per_cycle_bound_j: float = 0.0
    dead_toggle_j: float = 0.0

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "implementation": self.implementation,
            "cycles_per_event_bound": self.cycles_per_event_bound,
            "energy_per_event_bound_j": self.energy_per_event_bound_j,
            "cap_assumed_transitions": list(self.cap_assumed_transitions),
            "gate_count": self.gate_count,
            "dff_count": self.dff_count,
            "logic_depth": self.logic_depth,
            "constant_gate_outputs": self.constant_gate_outputs,
            "energy_per_cycle_bound_j": self.energy_per_cycle_bound_j,
            "dead_toggle_j": self.dead_toggle_j,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ComponentCost":
        return cls(
            name=str(payload["name"]),
            implementation=str(payload["implementation"]),
            cycles_per_event_bound=payload["cycles_per_event_bound"],  # type: ignore[arg-type]
            energy_per_event_bound_j=payload["energy_per_event_bound_j"],  # type: ignore[arg-type]
            cap_assumed_transitions=tuple(
                payload.get("cap_assumed_transitions", ())  # type: ignore[arg-type]
            ),
            gate_count=int(payload.get("gate_count", 0)),  # type: ignore[arg-type]
            dff_count=int(payload.get("dff_count", 0)),  # type: ignore[arg-type]
            logic_depth=int(payload.get("logic_depth", 0)),  # type: ignore[arg-type]
            constant_gate_outputs=int(
                payload.get("constant_gate_outputs", 0)  # type: ignore[arg-type]
            ),
            energy_per_cycle_bound_j=float(
                payload.get("energy_per_cycle_bound_j", 0.0)  # type: ignore[arg-type]
            ),
            dead_toggle_j=float(payload.get("dead_toggle_j", 0.0)),  # type: ignore[arg-type]
        )


@dataclass
class CostReport:
    """Static cost bounds for one whole system."""

    system: str
    components: List[ComponentCost] = field(default_factory=list)
    #: Predicted Section 4.2 per-path cache table size (static bound).
    cache_table_size: int = 0
    #: Whether any live transition's path set is unbounded.
    cache_table_unbounded: bool = False

    @property
    def cycles_per_event_bound(self) -> Optional[int]:
        """Worst single reaction across the system (``None`` if any
        component has no bound)."""
        bounds: List[int] = []
        for component in self.components:
            if component.cycles_per_event_bound is None:
                return None
            bounds.append(component.cycles_per_event_bound)
        return max(bounds) if bounds else 0

    @property
    def energy_per_event_bound_j(self) -> Optional[float]:
        bounds: List[float] = []
        for component in self.components:
            if component.energy_per_event_bound_j is None:
                return None
            bounds.append(component.energy_per_event_bound_j)
        return max(bounds) if bounds else 0.0

    @property
    def clock_energy_per_cycle_j(self) -> float:
        """The always-burning floor: sum of per-cycle hardware bounds."""
        return sum(
            component.energy_per_cycle_bound_j
            for component in self.components
        )

    @property
    def cost_units(self) -> float:
        """Deterministic, unitless admission weight.

        Monotone in predicted simulation work: gate evaluations per
        worst-case hardware reaction, software macro-operations, and
        the cache-table population the Section 4.2 strategy must warm.
        The service learns seconds-per-unit online, so only relative
        magnitudes between systems matter.
        """
        units = 1.0
        for component in self.components:
            cycles = component.cycles_per_event_bound
            if component.implementation == "hw":
                capped = min(cycles if cycles is not None else 1024, 1024)
                units += component.gate_count * capped / 50_000.0
            else:
                capped = min(cycles if cycles is not None else 4096, 4096)
                units += capped / 500.0
        units += min(self.cache_table_size, 4096) / 1024.0
        return round(units, 4)

    def component(self, name: str) -> ComponentCost:
        for entry in self.components:
            if entry.name == name:
                return entry
        raise KeyError("no cost entry for component %r" % name)

    def to_payload(self) -> Dict[str, object]:
        return {
            "system": self.system,
            "cost_units": self.cost_units,
            "cycles_per_event_bound": self.cycles_per_event_bound,
            "energy_per_event_bound_j": self.energy_per_event_bound_j,
            "clock_energy_per_cycle_j": self.clock_energy_per_cycle_j,
            "cache_table_size": self.cache_table_size,
            "cache_table_unbounded": self.cache_table_unbounded,
            "components": [c.to_payload() for c in self.components],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CostReport":
        return cls(
            system=str(payload["system"]),
            components=[
                ComponentCost.from_payload(entry)
                for entry in payload.get("components", ())  # type: ignore[union-attr]
            ],
            cache_table_size=int(payload.get("cache_table_size", 0)),  # type: ignore[arg-type]
            cache_table_unbounded=bool(
                payload.get("cache_table_unbounded", False)
            ),
        )

    def render(self) -> str:
        lines = ["Static cost report: %s" % self.system]
        lines.append(
            "  cost units %.4f | cycles/event <= %s | energy/event <= %s J"
            % (
                self.cost_units,
                self.cycles_per_event_bound,
                "%.3g" % self.energy_per_event_bound_j
                if self.energy_per_event_bound_j is not None else "unbounded",
            )
        )
        lines.append(
            "  clock floor %.3g J/cycle | cache table %d entr%s%s"
            % (
                self.clock_energy_per_cycle_j,
                self.cache_table_size,
                "y" if self.cache_table_size == 1 else "ies",
                " (unbounded)" if self.cache_table_unbounded else "",
            )
        )
        for component in self.components:
            if component.implementation == "hw":
                lines.append(
                    "  [hw] %-12s %5d gates, %3d dffs, depth %3d, "
                    "cycles <= %s, energy <= %.3g J/event "
                    "(%d const outs, %.3g J dead)"
                    % (
                        component.name, component.gate_count,
                        component.dff_count, component.logic_depth,
                        component.cycles_per_event_bound,
                        component.energy_per_event_bound_j or 0.0,
                        component.constant_gate_outputs,
                        component.dead_toggle_j,
                    )
                )
            else:
                capped = (" (loop cap assumed: %s)"
                          % ", ".join(component.cap_assumed_transitions)
                          if component.cap_assumed_transitions else "")
                lines.append(
                    "  [sw] %-12s macro-ops <= %s, energy <= %s J/event%s"
                    % (
                        component.name,
                        component.cycles_per_event_bound,
                        "%.3g" % component.energy_per_event_bound_j
                        if component.energy_per_event_bound_j is not None
                        else "unbounded",
                        capped,
                    )
                )
        return "\n".join(lines)


def _hw_component_cost(cfsm: Cfsm) -> ComponentCost:
    from repro.hw.synth import levelize, synthesize_cfsm_cached

    intervals = compute_var_intervals(cfsm)
    cycle_bounds: List[Optional[int]] = [
        hw_transition_cycle_bound(cfsm, index, intervals)
        for index in range(len(cfsm.transitions))
    ]
    worst: Optional[int]
    if any(bound is None for bound in cycle_bounds):
        worst = None
    else:
        worst = max([bound for bound in cycle_bounds if bound is not None],
                    default=0)
    try:
        block = synthesize_cfsm_cached(cfsm)
    except ReproError:
        return ComponentCost(
            name=cfsm.name, implementation="hw",
            cycles_per_event_bound=worst,
            energy_per_event_bound_j=None,
        )
    netlist = block.netlist
    values = abstract_netlist_values(netlist)
    bound = netlist_energy_bound(netlist, values=values)
    energy: Optional[float] = None
    if worst is not None:
        energy = worst * bound.total_j
    return ComponentCost(
        name=cfsm.name, implementation="hw",
        cycles_per_event_bound=worst,
        energy_per_event_bound_j=energy,
        gate_count=netlist.gate_count,
        dff_count=netlist.dff_count,
        logic_depth=levelize(netlist).depth,
        constant_gate_outputs=bound.constant_gate_outputs,
        energy_per_cycle_bound_j=bound.total_j,
        dead_toggle_j=bound.dead_toggle_j,
    )


def _sw_component_cost(cfsm: Cfsm, max_op_energy_j: Optional[float]) -> ComponentCost:
    intervals = compute_var_intervals(cfsm)
    worst = 0
    capped: List[str] = []
    for index, transition in enumerate(cfsm.transitions):
        ops, cap_assumed = sw_transition_op_bound(cfsm, index, intervals)
        worst = max(worst, ops)
        if cap_assumed:
            capped.append(transition.name)
    energy: Optional[float] = None
    if max_op_energy_j is not None:
        energy = worst * max_op_energy_j
    return ComponentCost(
        name=cfsm.name, implementation="sw",
        cycles_per_event_bound=worst,
        energy_per_event_bound_j=energy,
        cap_assumed_transitions=tuple(capped),
    )


def compute_cost_report(
    network: Network, parameter_file=None
) -> CostReport:
    """Build the static cost report for ``network``.

    ``parameter_file`` (a characterized
    :class:`~repro.core.macromodel.ParameterFile`) prices software
    macro-operations; when omitted and the network has software
    processes, the default characterization runs (slow path, cached
    per process by the caller if needed).
    """
    report = CostReport(system=network.name)
    software = network.software_cfsms()
    max_op_energy: Optional[float] = None
    if software:
        if parameter_file is None:
            from repro.core.macromodel import MacroModelCharacterizer

            parameter_file = MacroModelCharacterizer().characterize()
        energies = [cost.energy_j for cost in parameter_file.costs.values()]
        if energies:
            max_op_energy = max(energies)
    for name in sorted(network.cfsms):
        cfsm = network.cfsms[name]
        if network.implementation(name) == "hw":
            report.components.append(_hw_component_cost(cfsm))
        else:
            report.components.append(_sw_component_cost(cfsm, max_op_energy))
    cache = cacheability_report(network)
    report.cache_table_size = cache.predicted_table_size("path")
    report.cache_table_unbounded = cache.unbounded
    return report

"""DF5xx diagnostics: dataflow findings from abstract interpretation.

The engine lives in :mod:`repro.lint.absint`; this module turns its
proofs into diagnostics.

* **Expression scope (fast)** — per-CFSM interval analysis decides
  guards (DF503) and branch conditions (DF504) that the syntactic
  constant propagation of :mod:`repro.lint.paths` (SG202/SG203) could
  not.  Both rules explicitly skip anything the syntactic pass already
  decided, so a finding here is always *new* information.

* **Netlist scope (slow)** — the bit-level ternary fixpoint proves
  gate outputs constant.  A constant output still feeding live logic
  is DF501 (the cone below it is re-synthesizable to wires); the
  per-netlist aggregate of provably-dead toggles, with the switching
  energy they can never dissipate, is DF502.  The same fixpoint backs
  the per-cycle energy upper bound consumed by
  :mod:`repro.lint.cost`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cfsm.model import Network
from repro.errors import ReproError
from repro.lint.absint import (
    abstract_eval,
    abstract_netlist_values,
    compute_var_intervals,
    decided_branches,
    netlist_energy_bound,
)
from repro.lint.diagnostics import Diagnostic, Location, make
from repro.lint.paths import compute_value_sets, static_value

#: DF501 findings per netlist before the rest folds into the DF502
#: aggregate — keeps huge netlists from flooding reports.
MAX_CONSTANT_NET_FINDINGS = 8


def check_expression_dataflow(network: Network) -> List[Diagnostic]:
    """DF503/DF504: interval-decided guards and branches."""
    diagnostics: List[Diagnostic] = []
    for name in sorted(network.cfsms):
        cfsm = network.cfsms[name]
        intervals = compute_var_intervals(cfsm)
        values = compute_value_sets(cfsm)
        for transition in cfsm.transitions:
            guard = transition.guard
            if guard is not None and static_value(guard, values) is None:
                interval = abstract_eval(guard, intervals)
                if interval.definitely_zero:
                    diagnostics.append(make(
                        "DF503",
                        "guard is always zero for every reachable "
                        "variable range (interval %r); the transition "
                        "can never fire" % (interval,),
                        Location(system=network.name, cfsm=name,
                                 transition=transition.name,
                                 expr=repr(guard)),
                        data={"interval": repr(interval)},
                    ))
            for stmt, taken in decided_branches(
                    transition.body.statements, intervals):
                if static_value(stmt.cond, values) is not None:
                    continue  # SG203's syntactic territory
                diagnostics.append(make(
                    "DF504",
                    "branch condition is always %s over the reachable "
                    "variable ranges; the %s arm is unreachable"
                    % ("true" if taken else "false",
                       "else" if taken else "then"),
                    Location(system=network.name, cfsm=name,
                             transition=transition.name,
                             node=stmt.node_id, expr=repr(stmt.cond)),
                    data={"taken": taken},
                ))
    return diagnostics


def check_netlist_dataflow(network: Network) -> List[Diagnostic]:
    """DF501/DF502: constant nets and dead toggles in synthesized HW."""
    from repro.hw.netlist import CONST0, CONST1
    from repro.hw.synth import synthesize_cfsm_cached

    diagnostics: List[Diagnostic] = []
    for cfsm in network.hardware_cfsms():
        try:
            block = synthesize_cfsm_cached(cfsm)
        except ReproError:
            continue  # NL300 already reports the failure
        netlist = block.netlist
        values = abstract_netlist_values(netlist)
        fanout: Dict[int, int] = {}
        for gate in netlist.gates:
            for net in gate.inputs:
                fanout[net] = fanout.get(net, 0) + 1
        for dff in netlist.dffs:
            fanout[dff.d] = fanout.get(dff.d, 0) + 1
        reported = 0
        for gate in netlist.gates:
            net = gate.output
            if net in (CONST0, CONST1) or values[net] is None:
                continue
            loads = fanout.get(net, 0)
            if loads == 0:
                continue  # dead logic is NL304's finding
            if reported >= MAX_CONSTANT_NET_FINDINGS:
                break
            reported += 1
            diagnostics.append(make(
                "DF501",
                "%s output is provably constant %d yet drives %d "
                "load(s); the cone below is re-synthesizable to wires"
                % (gate.cell, values[net], loads),
                Location(system=network.name, cfsm=cfsm.name,
                         netlist=netlist.name, net=net),
                data={"cell": gate.cell, "value": values[net],
                      "fanout": loads},
            ))
        bound = netlist_energy_bound(netlist, values=values)
        if bound.constant_gate_outputs or bound.constant_dff_outputs:
            diagnostics.append(make(
                "DF502",
                "%d of %d gate outputs (and %d flip-flops) can never "
                "toggle; %.3g J of switching energy per cycle is "
                "provably dead"
                % (bound.constant_gate_outputs, bound.gate_outputs,
                   bound.constant_dff_outputs, bound.dead_toggle_j),
                Location(system=network.name, cfsm=cfsm.name,
                         netlist=netlist.name),
                data=bound.to_payload(),
            ))
    return diagnostics

"""Core types of the static-analysis diagnostic framework.

The framework mirrors what production linters (clang-tidy, ruff,
Verilator) converge on: every finding is a :class:`Diagnostic` carrying
a *stable rule code* (the contract with baselines, CI greps, and SARIF
consumers), a :class:`Severity`, a structured :class:`Location` into
the design hierarchy, and a deterministic fingerprint used for
baseline suppression.

Rules are declared once in the :data:`RULES` registry; analyses look
their descriptors up by code so that severity, title, and rationale
live in exactly one place (the same table renders the docs catalog and
the SARIF ``tool.driver.rules`` array).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple


class Severity:
    """Diagnostic severities, ordered ``NOTE < WARNING < ERROR``."""

    NOTE = "note"
    WARNING = "warning"
    ERROR = "error"

    ORDER: Tuple[str, ...] = (NOTE, WARNING, ERROR)

    @staticmethod
    def rank(severity: str) -> int:
        """Position in the ordering (higher is more severe)."""
        try:
            return Severity.ORDER.index(severity)
        except ValueError:
            raise ValueError("unknown severity %r" % (severity,)) from None

    @staticmethod
    def max(severities: List[str]) -> Optional[str]:
        """The most severe of ``severities`` (``None`` when empty)."""
        if not severities:
            return None
        return max(severities, key=Severity.rank)


@dataclass(frozen=True)
class Location:
    """A position in the design hierarchy a diagnostic points at.

    All fields are optional; analyses fill in what they know.  The
    rendered form is stable (it participates in fingerprints), so field
    rendering order must never change.
    """

    system: Optional[str] = None
    cfsm: Optional[str] = None
    transition: Optional[str] = None
    node: Optional[int] = None
    event: Optional[str] = None
    variable: Optional[str] = None
    netlist: Optional[str] = None
    net: Optional[int] = None
    port: Optional[str] = None
    #: Expression-level anchor (rendered source of the sub-expression a
    #: dataflow or translation-validation finding is about).  Rendered
    #: last so that adding it did not move any pre-existing fingerprint.
    expr: Optional[str] = None

    def qualified_name(self) -> str:
        """Hierarchical path, e.g. ``tcpip_nic/ip_check/block_done@n3``."""
        parts: List[str] = []
        for value in (self.system, self.cfsm, self.transition):
            if value is not None:
                parts.append(value)
        if self.netlist is not None:
            parts.append("netlist:%s" % self.netlist)
        rendered = "/".join(parts) if parts else "<design>"
        if self.node is not None:
            rendered += "@n%d" % self.node
        if self.net is not None:
            rendered += "@net%d" % self.net
        if self.port is not None:
            rendered += "@port:%s" % self.port
        if self.event is not None:
            rendered += "[event:%s]" % self.event
        if self.variable is not None:
            rendered += "[var:%s]" % self.variable
        if self.expr is not None:
            rendered += "{expr:%s}" % self.expr
        return rendered


@dataclass(frozen=True)
class Rule:
    """Descriptor of one lint rule.

    Attributes:
        code: stable identifier (``CFSM001`` ...); never reused or
            renumbered once released — baselines and CI configs key
            on it.
        title: short kebab-ish name for listings.
        severity: default severity of findings.
        rationale: one-line justification (rendered in the docs
            catalog and SARIF rule metadata).
        in_validate: whether the rule is part of the historical
            :func:`repro.cfsm.validate.validate_network` contract
            (those findings raise in strict builds).
        fast: whether the rule runs in the pre-flight subset used by
            ``estimate``/``explore`` (no synthesis, no
            characterization).
    """

    code: str
    title: str
    severity: str
    rationale: str
    in_validate: bool = False
    fast: bool = True


@dataclass
class Diagnostic:
    """One finding of one rule at one location."""

    code: str
    severity: str
    message: str
    location: Location = field(default_factory=Location)
    data: Dict[str, object] = field(default_factory=dict)

    @property
    def fingerprint(self) -> str:
        """Deterministic identity for baseline suppression.

        Derived from the rule code, the rendered location, and the
        message — stable across runs and machines, independent of
        finding order.
        """
        payload = "%s|%s|%s" % (
            self.code,
            self.location.qualified_name(),
            self.message,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]

    def render(self) -> str:
        """One-line human-readable form."""
        return "%s [%s] %s: %s" % (
            self.severity,
            self.code,
            self.location.qualified_name(),
            self.message,
        )


def _rules(entries: List[Rule]) -> Mapping[str, Rule]:
    table: Dict[str, Rule] = {}
    for rule in entries:
        if rule.code in table:
            raise ValueError("duplicate rule code %r" % rule.code)
        table[rule.code] = rule
    return table


#: The rule catalog.  Codes are append-only: removing or renumbering a
#: code breaks checked-in baselines, so retired rules keep their row
#: (documented as retired) and new rules take fresh numbers.
RULES: Mapping[str, Rule] = _rules([
    # -- per-CFSM structural checks (the historical validate.py set) --
    Rule("CFSM001", "duplicate-transition-name", Severity.ERROR,
         "Two transitions with one name make priority order ambiguous.",
         in_validate=True),
    Rule("CFSM002", "transition-without-trigger", Severity.ERROR,
         "A transition with no trigger events can never fire.",
         in_validate=True),
    Rule("CFSM003", "undeclared-trigger-input", Severity.ERROR,
         "Triggering on an event the process does not declare as an "
         "input means the buffer can never hold it.",
         in_validate=True),
    Rule("CFSM004", "assigns-undeclared-variable", Severity.ERROR,
         "Stores to undeclared variables have no persistent home and "
         "silently vanish between reactions.",
         in_validate=True),
    Rule("CFSM005", "emits-undeclared-output", Severity.ERROR,
         "Emitting an event that is not a declared output bypasses the "
         "network wiring and the bus model.",
         in_validate=True),
    Rule("CFSM006", "value-on-pure-event", Severity.ERROR,
         "Pure events carry no value; the emitted value is dropped.",
         in_validate=True),
    Rule("CFSM007", "reads-undeclared-variable", Severity.ERROR,
         "Reads of undeclared variables crash the interpreter at "
         "simulation time; catch them before the run.",
         in_validate=True),
    Rule("CFSM008", "reads-undeclared-event-value", Severity.ERROR,
         "Reading the value of an event the process does not consume "
         "can never be satisfied by the buffer.",
         in_validate=True),
    Rule("CFSM009", "reads-pure-event-value", Severity.ERROR,
         "Pure events carry no value to read.",
         in_validate=True),
    Rule("CFSM010", "undeclared-shared-variable", Severity.ERROR,
         "A shared-memory mapping for a variable that does not exist "
         "maps nothing onto the bus.",
         in_validate=True),
    Rule("CFSM011", "guard-reads-undeclared-variable", Severity.ERROR,
         "Guards over undeclared variables crash enabled-transition "
         "evaluation at simulation time.",
         in_validate=True),
    Rule("CFSM012", "valueless-emit-on-valued-event", Severity.WARNING,
         "Emitting a valued event without a value delivers 0 to every "
         "consumer; almost always a forgotten payload."),
    Rule("CFSM013", "consumes-undeclared-event", Severity.ERROR,
         "A consume list naming an event outside the declared inputs "
         "silently consumes nothing."),
    # -- network-scope wiring analysis --
    Rule("NET101", "unmapped-cfsm", Severity.ERROR,
         "Every process needs a HW/SW mapping before the partition-"
         "aware estimators can be dispatched.",
         in_validate=True),
    Rule("NET102", "undriven-input", Severity.ERROR,
         "An input no process emits and no testbench drives stalls "
         "every transition triggering on it.",
         in_validate=True),
    Rule("NET103", "unknown-bus-event", Severity.ERROR,
         "Mapping an undeclared event onto the bus charges traffic "
         "that can never occur.",
         in_validate=True),
    Rule("NET104", "unwatched-reset-event", Severity.ERROR,
         "A reset event with no watching process re-initializes "
         "nothing.",
         in_validate=True),
    Rule("NET105", "trigger-on-reset-event", Severity.ERROR,
         "Reset delivery pre-empts normal reaction, so a transition "
         "triggering on a reset event can never fire.",
         in_validate=True),
    Rule("NET106", "event-type-conflict", Severity.ERROR,
         "Emitter and consumer disagreeing on an event's value-ness or "
         "width corrupts every delivery.",
         in_validate=True),
    Rule("NET107", "multi-producer-event", Severity.WARNING,
         "Two processes emitting one event race in the consumer's "
         "one-place buffer under nondeterministic discrete-event "
         "ordering; the surviving value is schedule-dependent."),
    Rule("NET108", "shared-write-race", Severity.WARNING,
         "Two processes writing the same shared-memory word without an "
         "event-ordered handshake make the final contents (and the "
         "cached path energies) schedule-dependent."),
    Rule("NET109", "unconsumed-output", Severity.NOTE,
         "An output no process consumes is either a primary output of "
         "the system or a wiring mistake; listed so reviewers decide."),
    # -- s-graph reachability and path analysis --
    Rule("SG201", "shadowed-transition", Severity.WARNING,
         "An earlier unguarded transition with a subset trigger always "
         "wins, so this transition is dead code and its paths inflate "
         "the static path count."),
    Rule("SG202", "statically-false-guard", Severity.WARNING,
         "The guard can never evaluate non-zero for any reachable "
         "variable values; the transition is dead."),
    Rule("SG203", "constant-branch", Severity.NOTE,
         "A test with a statically constant outcome leaves one branch "
         "unreachable (dead states in the s-graph)."),
    Rule("SG204", "unbounded-path-table", Severity.NOTE,
         "A data-dependent loop containing tests makes the set of "
         "execution-path signatures unbounded, so the Section 4.2 "
         "energy-cache table grows without limit for this transition."),
    Rule("SG205", "path-table-blowup", Severity.NOTE,
         "The statically enumerated path count is large; the Section "
         "4.2 energy cache will key that many entries for one "
         "transition and rarely converge."),
    # -- macro-model coverage (Section 4.1) --
    Rule("MM401", "uncharacterized-macro-op", Severity.WARNING,
         "A macro-operation absent from the characterization table "
         "forces ISS fallbacks (or silently costs zero) under the "
         "Section 4.1 macro-model strategy.", fast=False),
    # -- netlist structural lint --
    Rule("NL300", "synthesis-failed", Severity.ERROR,
         "The hardware synthesizer rejected the process; gate-level "
         "estimation cannot run.", fast=False),
    Rule("NL301", "combinational-loop", Severity.ERROR,
         "A combinational cycle has no valid evaluation order; the "
         "compiled simulator would never settle.", fast=False),
    Rule("NL302", "undriven-net", Severity.ERROR,
         "A net read by logic but driven by nothing floats; its "
         "simulated value is undefined.", fast=False),
    Rule("NL303", "multiple-net-drivers", Severity.ERROR,
         "Two drivers shorted onto one net contend every cycle.",
         fast=False),
    Rule("NL304", "dead-gate", Severity.NOTE,
         "A gate whose output reaches no output port or register is "
         "dead logic: it burns estimated power for nothing.",
         fast=False),
    Rule("NL305", "port-width-mismatch", Severity.WARNING,
         "Emitter and consumer value ports of one event differ in "
         "width; high bits are silently truncated or zero-padded.",
         fast=False),
    Rule("NL306", "invalid-dff-init", Severity.WARNING,
         "A flip-flop initial value outside {0, 1} cannot be loaded "
         "into a single-bit register.", fast=False),
    # -- dataflow / abstract interpretation (bit-level + intervals) --
    Rule("DF501", "constant-net-feeds-logic", Severity.NOTE,
         "Abstract interpretation proves this gate output constant in "
         "every reachable cycle, yet it still feeds live logic: the "
         "cone below it is re-synthesizable to wires.", fast=False),
    Rule("DF502", "provably-dead-toggles", Severity.NOTE,
         "A fraction of this netlist's gates can never toggle (bit-"
         "level fixpoint); their switching energy is pure bound "
         "slack a constant-folding resynthesis would reclaim.",
         fast=False),
    Rule("DF503", "interval-false-guard", Severity.WARNING,
         "Interval analysis over the reachable variable ranges proves "
         "the guard always zero — the transition is dead even though "
         "syntactic constant propagation could not decide it."),
    Rule("DF504", "interval-decided-branch", Severity.NOTE,
         "Interval analysis pins this branch condition's outcome, so "
         "one arm is unreachable beyond what the syntactic SG203 "
         "check can see."),
    # -- optimizer translation validation --
    Rule("TV601", "unsound-rewrite-rule", Severity.ERROR,
         "A registered optimizer rewrite changed the meaning of a "
         "template expression: optimized designs silently diverge "
         "from their source semantics."),
    Rule("TV602", "unexercised-rewrite-rule", Severity.WARNING,
         "A registered rewrite rule fired on none of its declared "
         "templates; unexercised rules rot into unsound ones "
         "unnoticed."),
    Rule("TV603", "rewrite-validation-crash", Severity.ERROR,
         "A rewrite rule (or its rewritten expression) raised during "
         "validation; the optimizer would crash on designs matching "
         "the template."),
])


def rule(code: str) -> Rule:
    """Look up a rule descriptor by code."""
    try:
        return RULES[code]
    except KeyError:
        raise KeyError("unknown lint rule code %r" % (code,)) from None


def make(code: str, message: str, location: Optional[Location] = None,
         severity: Optional[str] = None,
         data: Optional[Dict[str, object]] = None) -> Diagnostic:
    """Build a diagnostic for ``code`` with the rule's default severity."""
    descriptor = rule(code)
    return Diagnostic(
        code=code,
        severity=severity or descriptor.severity,
        message=message,
        location=location or Location(),
        data=dict(data or {}),
    )


def max_severity(diagnostics: List[Diagnostic]) -> Optional[str]:
    """Most severe severity present (``None`` for a clean run)."""
    return Severity.max([d.severity for d in diagnostics])


def exit_code(diagnostics: List[Diagnostic]) -> int:
    """CLI exit status: 0 clean/notes, 1 warnings, 2 errors."""
    worst = max_severity(diagnostics)
    if worst == Severity.ERROR:
        return 2
    if worst == Severity.WARNING:
        return 1
    return 0


def sort_diagnostics(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    """Stable report order: severity (desc), code, location, message."""
    return sorted(
        diagnostics,
        key=lambda d: (
            -Severity.rank(d.severity),
            d.code,
            d.location.qualified_name(),
            d.message,
        ),
    )

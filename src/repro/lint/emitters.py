"""Report emitters: human text, machine JSON, and SARIF 2.1.0.

The SARIF output follows the 2.1.0 schema shape that code-scanning
services (GitHub, Azure DevOps) ingest: one run, the rule catalog in
``tool.driver.rules``, one ``result`` per diagnostic with a logical
location (designs have no source files) and a partial fingerprint for
cross-run matching.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.lint.diagnostics import (
    Diagnostic,
    RULES,
    Severity,
    max_severity,
    sort_diagnostics,
)

TOOL_NAME = "repro-lint"
TOOL_VERSION = "1.0.0"
TOOL_URI = "https://github.com/repro/repro"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

#: SARIF ``level`` values happen to match our severity strings
#: (``note`` / ``warning`` / ``error``); keep an explicit map anyway so
#: a future severity does not silently leak an invalid level.
_SARIF_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def render_text(diagnostics: List[Diagnostic], suppressed: int = 0,
                title: Optional[str] = None) -> str:
    """Human-readable report, most severe first."""
    lines: List[str] = []
    if title:
        lines.append("lint: %s" % title)
    ordered = sort_diagnostics(diagnostics)
    for diagnostic in ordered:
        lines.append(diagnostic.render())
    counts = {severity: 0 for severity in Severity.ORDER}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    summary = "%d error(s), %d warning(s), %d note(s)" % (
        counts[Severity.ERROR], counts[Severity.WARNING],
        counts[Severity.NOTE],
    )
    if suppressed:
        summary += ", %d suppressed by baseline" % suppressed
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(diagnostics: List[Diagnostic], suppressed: int = 0,
                title: Optional[str] = None) -> str:
    """Machine-readable report (stable ordering and key set)."""
    payload: Dict[str, Any] = {
        "tool": TOOL_NAME,
        "version": TOOL_VERSION,
        "title": title or "",
        "max_severity": max_severity(diagnostics),
        "suppressed": suppressed,
        "diagnostics": [
            {
                "code": d.code,
                "severity": d.severity,
                "message": d.message,
                "location": d.location.qualified_name(),
                "fingerprint": d.fingerprint,
                "data": _jsonable(d.data),
            }
            for d in sort_diagnostics(diagnostics)
        ],
    }
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of diagnostic data to JSON-safe values."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = list(value)
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return [_jsonable(item) for item in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _logical_locations(diagnostic: Diagnostic) -> List[Dict[str, Any]]:
    """SARIF logical locations for one finding.

    The fully qualified design path always comes first.  Findings
    anchored at a sub-expression (dataflow DF5xx, translation
    validation TV6xx) additionally carry the expression itself as a
    child logical location of kind ``expression`` so SARIF viewers can
    render the hierarchy instead of a flat string.
    """
    locations: List[Dict[str, Any]] = [
        {"fullyQualifiedName": diagnostic.location.qualified_name()}
    ]
    if diagnostic.location.expr is not None:
        locations.append({
            "name": diagnostic.location.expr,
            "kind": "expression",
            "parentIndex": 0,
        })
    return locations


def sarif_report(diagnostics: List[Diagnostic],
                 title: Optional[str] = None) -> Dict[str, Any]:
    """The SARIF 2.1.0 log as a plain dict."""
    rule_codes = sorted(RULES)
    rule_index = {code: index for index, code in enumerate(rule_codes)}
    rules = [
        {
            "id": code,
            "name": RULES[code].title,
            "shortDescription": {"text": RULES[code].title},
            "fullDescription": {"text": RULES[code].rationale},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[RULES[code].severity],
            },
        }
        for code in rule_codes
    ]
    results = [
        {
            "ruleId": d.code,
            "ruleIndex": rule_index[d.code],
            "level": _SARIF_LEVELS[d.severity],
            "message": {"text": d.message},
            "locations": [{"logicalLocations": _logical_locations(d)}],
            "partialFingerprints": {"reproLint/v1": d.fingerprint},
        }
        for d in sort_diagnostics(diagnostics)
    ]
    run: Dict[str, Any] = {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "version": TOOL_VERSION,
                "informationUri": TOOL_URI,
                "rules": rules,
            }
        },
        "results": results,
    }
    if title:
        run["properties"] = {"title": title}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


def render_sarif(diagnostics: List[Diagnostic], suppressed: int = 0,
                 title: Optional[str] = None) -> str:
    """SARIF 2.1.0 report as JSON text.

    ``suppressed`` is accepted for signature parity with the other
    emitters; baseline-suppressed findings are simply absent (SARIF's
    own ``suppressions`` mechanism is a possible later refinement).
    """
    return json.dumps(sarif_report(diagnostics, title=title),
                      indent=1, sort_keys=True) + "\n"


#: Emitter dispatch for the CLI's ``--format`` flag.
EMITTERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}

"""Gate-level structural lint (NL300-NL306).

Checks any :class:`~repro.hw.netlist.Netlist` — hand-built or produced
by :mod:`repro.hw.synth` — for the classic structural defects:
combinational cycles, floating nets, shorted drivers, dead logic, and
invalid flip-flop initialization.  At network scope it synthesizes
every hardware-mapped process (through the process-wide synthesis
cache, so a following estimation run pays nothing extra) and compares
the value-bus widths of connected blocks.

Dead gates are reported as ONE aggregated note per netlist: the
builder's constant folding and the shared-ALU synthesis style leave
fanout-free cells behind by construction (unused ALU unit results,
unread carry-outs), so a per-gate note would drown real findings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfsm.model import Network
from repro.errors import ReproError
from repro.hw.netlist import CONST0, CONST1, Netlist
from repro.lint.diagnostics import Diagnostic, Location, make


def lint_netlist(netlist: Netlist,
                 system: Optional[str] = None) -> List[Diagnostic]:
    """Structural rules NL301-NL304 and NL306 over one netlist."""
    diagnostics: List[Diagnostic] = []
    where = Location(system=system, netlist=netlist.name)

    drivers: Dict[int, int] = {CONST0: 1, CONST1: 1}

    def drive(net: int) -> None:
        drivers[net] = drivers.get(net, 0) + 1

    for nets in netlist.input_ports.values():
        for net in nets:
            drive(net)
    for dff in netlist.dffs:
        drive(dff.q)
    for gate in netlist.gates:
        drive(gate.output)

    for net in sorted(net for net, count in drivers.items() if count > 1):
        diagnostics.append(make(
            "NL303",
            "net %d has %d drivers shorted together" % (net, drivers[net]),
            Location(system=system, netlist=netlist.name, net=net),
            data={"drivers": drivers[net]},
        ))

    read_nets: Set[int] = set()
    for gate in netlist.gates:
        read_nets.update(gate.inputs)
    for dff in netlist.dffs:
        read_nets.add(dff.d)
    for nets in netlist.output_ports.values():
        read_nets.update(nets)
    for net in sorted(read_nets - set(drivers)):
        diagnostics.append(make(
            "NL302",
            "net %d is read by logic but driven by nothing" % net,
            Location(system=system, netlist=netlist.name, net=net),
        ))

    diagnostics.extend(_combinational_loops(netlist, system))

    dead = _dead_gate_count(netlist)
    if dead:
        diagnostics.append(make(
            "NL304",
            "%d of %d gates reach no output port or flip-flop "
            "(fanout-free logic left by constant folding / unused ALU "
            "units)" % (dead, netlist.gate_count),
            where, data={"dead_gates": dead, "gates": netlist.gate_count},
        ))

    for index, dff in enumerate(netlist.dffs):
        if dff.init not in (0, 1):
            diagnostics.append(make(
                "NL306",
                "flip-flop %d (q=net %d) has init %d, outside {0, 1}"
                % (index, dff.q, dff.init),
                Location(system=system, netlist=netlist.name, net=dff.q),
                data={"init": dff.init},
            ))
    return diagnostics


def _combinational_loops(netlist: Netlist,
                         system: Optional[str]) -> List[Diagnostic]:
    """NL301: gates that can never be scheduled because their inputs
    (transitively) depend on their own outputs.

    Worklist topological scheduling: a gate is ready once all its
    inputs are defined (constants, input ports, flip-flop Q nets, or
    previously scheduled gate outputs).  Gates left over whose missing
    inputs ARE driven — just never definable — sit on a cycle.
    """
    defined: Set[int] = {CONST0, CONST1}
    for nets in netlist.input_ports.values():
        defined.update(nets)
    for dff in netlist.dffs:
        defined.add(dff.q)

    driven: Set[int] = set(defined)
    for gate in netlist.gates:
        driven.add(gate.output)

    remaining = list(netlist.gates)
    while True:
        scheduled, deferred = [], []
        for gate in remaining:
            if all(net in defined for net in gate.inputs):
                scheduled.append(gate)
            else:
                deferred.append(gate)
        if not scheduled:
            break
        for gate in scheduled:
            defined.add(gate.output)
        remaining = deferred

    cyclic = [
        gate for gate in remaining
        if all(net in driven for net in gate.inputs)
    ]
    if not cyclic:
        return []
    nets = sorted({gate.output for gate in cyclic})
    cells = sorted({gate.cell for gate in cyclic})
    return [make(
        "NL301",
        "combinational loop through %d gate(s) (%s); nets involved: %s"
        % (len(cyclic), ", ".join(cells),
           ", ".join(str(net) for net in nets[:8])
           + ("..." if len(nets) > 8 else "")),
        Location(system=system, netlist=netlist.name, net=nets[0]),
        data={"nets": nets, "cells": cells},
    )]


def _dead_gate_count(netlist: Netlist) -> int:
    """Gates whose output transitively reaches no port or flip-flop."""
    by_output = {gate.output: gate for gate in netlist.gates}
    needed: Set[int] = set()
    for nets in netlist.output_ports.values():
        needed.update(nets)
    for dff in netlist.dffs:
        needed.add(dff.d)
    live: Set[int] = set()
    stack = [net for net in needed if net in by_output]
    while stack:
        net = stack.pop()
        if net in live:
            continue
        live.add(net)
        for source in by_output[net].inputs:
            if source in by_output and source not in live:
                stack.append(source)
    return netlist.gate_count - len(live)


def check_hw_blocks(network: Network) -> List[Diagnostic]:
    """Synthesize every HW-mapped process and lint the results
    (NL300 on rejection, NL301-NL306 structurally, NL305 across
    connected blocks)."""
    from repro.hw.synth import SynthesizedBlock, synthesize_cfsm_cached

    diagnostics: List[Diagnostic] = []
    blocks: Dict[str, SynthesizedBlock] = {}
    for cfsm in network.hardware_cfsms():
        try:
            blocks[cfsm.name] = synthesize_cfsm_cached(cfsm)
        except ReproError as error:
            diagnostics.append(make(
                "NL300",
                "hardware synthesis failed: %s" % error,
                Location(system=network.name, cfsm=cfsm.name),
            ))
            continue
        diagnostics.extend(
            lint_netlist(blocks[cfsm.name].netlist, system=network.name)
        )

    for producer_name, producer in sorted(blocks.items()):
        for event, value_port in sorted(producer.value_ports.items()):
            out_width = len(producer.netlist.output_ports[value_port])
            for consumer in network.consumers_of(event):
                consumed = blocks.get(consumer.name)
                if consumed is None:
                    continue
                in_port = consumed.input_ports.get(event)
                if in_port is None:
                    continue
                in_width = len(consumed.netlist.input_ports[in_port])
                if in_width != out_width:
                    diagnostics.append(make(
                        "NL305",
                        "event %r travels from %r (%d-bit bus) to %r "
                        "(%d-bit bus); the datapath widths disagree"
                        % (event, producer_name, out_width,
                           consumer.name, in_width),
                        Location(system=network.name, event=event,
                                 port=value_port),
                        data={"producer": producer_name,
                              "consumer": consumer.name,
                              "producer_width": out_width,
                              "consumer_width": in_width},
                    ))
    return diagnostics

"""Per-CFSM structural rules and cross-CFSM network analysis.

The per-CFSM checks are the historical :mod:`repro.cfsm.validate` set,
re-homed as rules ``CFSM001``-``CFSM011`` (their message texts are
preserved verbatim — :func:`repro.cfsm.validate.validate_cfsm` renders
these diagnostics back into its legacy string form).  Two gaps found
while porting became new rules: ``CFSM012`` (valueless emit on a
valued event — the consumer silently reads 0) and ``CFSM013`` (a
``consumes`` list naming events outside the declared inputs).

The network-scope analysis covers what no single-process check can
see: write/write races on shared-memory words under nondeterministic
discrete-event ordering, multi-producer events racing in one-place
buffers, emitter/consumer type conflicts, and undriven/unconsumed
events at network scope.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cfsm.expr import Const
from repro.cfsm.model import Cfsm, Network, Transition
from repro.cfsm.sgraph import (
    Assign,
    Emit,
    SharedRead,
    SharedWrite,
    _expressions_of,
)
from repro.lint.diagnostics import Diagnostic, Location, make


def check_cfsm(cfsm: Cfsm, system: Optional[str] = None) -> List[Diagnostic]:
    """Per-process structural rules (CFSM001-CFSM013)."""
    diagnostics: List[Diagnostic] = []
    seen_transitions: Set[str] = set()
    for transition in cfsm.transitions:
        where = Location(system=system, cfsm=cfsm.name,
                         transition=transition.name)

        def report(code: str, message: str,
                   location: Location = where, **data: object) -> None:
            diagnostics.append(make(code, message, location, data=data))

        if transition.name in seen_transitions:
            report("CFSM001", "duplicate transition name")
        seen_transitions.add(transition.name)
        if not transition.trigger:
            report("CFSM002", "has no trigger events (would never fire)")
        for event in transition.trigger:
            if event not in cfsm.inputs:
                report("CFSM003",
                       "triggers on undeclared input %r" % event,
                       event=event)
        diagnostics.extend(_check_body(cfsm, transition, where))
        if transition.guard is not None:
            for name in transition.guard.variables():
                if name not in cfsm.variables:
                    report("CFSM011",
                           "guard reads undeclared variable %r" % name,
                           variable=name)
            for event in transition.guard.event_values():
                diagnostics.extend(
                    _check_value_read(cfsm, event, where)
                )
        for event in transition.consumes:
            if event not in cfsm.inputs:
                diagnostics.append(make(
                    "CFSM013",
                    "consume list names undeclared input %r" % event,
                    where, data={"event": event},
                ))
    for name in sorted(cfsm.shared_variables):
        if name not in cfsm.variables:
            diagnostics.append(make(
                "CFSM010",
                "shared variable %r is not declared" % name,
                Location(system=system, cfsm=cfsm.name, variable=name),
            ))
    return diagnostics


def _check_body(cfsm: Cfsm, transition: Transition,
                where: Location) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for stmt in transition.body.nodes():
        at = Location(system=where.system, cfsm=where.cfsm,
                      transition=where.transition, node=stmt.node_id)
        if isinstance(stmt, (Assign, SharedRead)) \
                and stmt.target not in cfsm.variables:
            diagnostics.append(make(
                "CFSM004",
                "assigns undeclared variable %r" % stmt.target,
                at, data={"variable": stmt.target},
            ))
        if isinstance(stmt, Emit):
            if stmt.event not in cfsm.outputs:
                diagnostics.append(make(
                    "CFSM005",
                    "emits undeclared output %r" % stmt.event,
                    at, data={"event": stmt.event},
                ))
            elif stmt.value is not None \
                    and not cfsm.outputs[stmt.event].has_value:
                diagnostics.append(make(
                    "CFSM006",
                    "emits a value on pure event %r" % stmt.event,
                    at, data={"event": stmt.event},
                ))
            elif stmt.value is None and cfsm.outputs[stmt.event].has_value:
                diagnostics.append(make(
                    "CFSM012",
                    "emits valued event %r without a value (consumers "
                    "read 0)" % stmt.event,
                    at, data={"event": stmt.event},
                ))
        for expression in _expressions_of(stmt):
            for name in expression.variables():
                if name not in cfsm.variables:
                    diagnostics.append(make(
                        "CFSM007",
                        "reads undeclared variable %r" % name,
                        at, data={"variable": name},
                    ))
            for event in expression.event_values():
                diagnostics.extend(_check_value_read(cfsm, event, at))
    return diagnostics


def _check_value_read(cfsm: Cfsm, event: str,
                      where: Location) -> List[Diagnostic]:
    if event not in cfsm.inputs:
        return [make("CFSM008",
                     "reads value of undeclared input %r" % event,
                     where, data={"event": event})]
    if not cfsm.inputs[event].has_value:
        return [make("CFSM009",
                     "reads value of pure event %r" % event,
                     where, data={"event": event})]
    return []


# -- network-scope analysis --------------------------------------------------


def check_network(network: Network) -> List[Diagnostic]:
    """Cross-CFSM wiring rules (NET101-NET109)."""
    system = network.name
    diagnostics: List[Diagnostic] = []

    for name, _ in sorted(network.cfsms.items()):
        if network.mapping.get(name) is None:
            diagnostics.append(make(
                "NET101", "has no HW/SW mapping",
                Location(system=system, cfsm=name),
            ))

    # Inputs nothing drives: not produced by a CFSM, not testbench-driven.
    dangling = network.external_inputs() - network.environment_inputs
    for event in sorted(dangling):
        consumers = ", ".join(c.name for c in network.consumers_of(event))
        diagnostics.append(make(
            "NET102",
            "event %r is consumed by [%s] but produced by no CFSM and "
            "not declared as an environment input" % (event, consumers),
            Location(system=system, event=event),
        ))

    known_events = _declared_event_names(network)
    for event in sorted(network.bus_events):
        if event not in known_events:
            diagnostics.append(make(
                "NET103",
                "bus event %r is not declared by any CFSM" % event,
                Location(system=system, event=event),
            ))

    for event in sorted(network.reset_events):
        if not network.consumers_of(event):
            diagnostics.append(make(
                "NET104",
                "reset event %r has no watching process" % event,
                Location(system=system, event=event),
            ))
        for _, cfsm in sorted(network.cfsms.items()):
            for transition in cfsm.transitions:
                if event in transition.trigger:
                    diagnostics.append(make(
                        "NET105",
                        "triggers on reset event %r" % event,
                        Location(system=system, cfsm=cfsm.name,
                                 transition=transition.name, event=event),
                    ))

    diagnostics.extend(_check_event_types(network))
    diagnostics.extend(_check_multi_producers(network))
    diagnostics.extend(_check_shared_write_races(network))
    diagnostics.extend(_check_unconsumed_outputs(network))
    return diagnostics


def _declared_event_names(network: Network) -> Set[str]:
    names: Set[str] = set()
    for cfsm in network.cfsms.values():
        names.update(cfsm.inputs)
        names.update(cfsm.outputs)
    return names


def _check_event_types(network: Network) -> List[Diagnostic]:
    """NET106: emitter/consumer declarations must agree per event."""
    declarations: Dict[str, List[Tuple[str, str, object]]] = {}
    for name, cfsm in sorted(network.cfsms.items()):
        for direction, collection in (("input", cfsm.inputs),
                                      ("output", cfsm.outputs)):
            for event, event_type in sorted(collection.items()):
                declarations.setdefault(event, []).append(
                    (name, direction, event_type)
                )
    diagnostics: List[Diagnostic] = []
    for event, rows in sorted(declarations.items()):
        types = {(row[2].has_value, row[2].width) for row in rows}
        if len(types) > 1:
            detail = "; ".join(
                "%s.%s: has_value=%s width=%d"
                % (name, direction, event_type.has_value, event_type.width)
                for name, direction, event_type in rows
            )
            diagnostics.append(make(
                "NET106",
                "event %r declared with conflicting types (%s)"
                % (event, detail),
                Location(system=network.name, event=event),
            ))
    return diagnostics


def _check_multi_producers(network: Network) -> List[Diagnostic]:
    """NET107: one event emitted by several processes races in the
    consumer's one-place buffer."""
    diagnostics: List[Diagnostic] = []
    for event in sorted(_declared_event_names(network)):
        producers = [c.name for c in network.producers_of(event)]
        if len(producers) > 1:
            diagnostics.append(make(
                "NET107",
                "event %r is emitted by %d processes (%s); delivery "
                "order into one-place buffers is nondeterministic"
                % (event, len(producers), ", ".join(producers)),
                Location(system=network.name, event=event),
                data={"producers": producers},
            ))
    return diagnostics


def _constant_write_addresses(
    cfsm: Cfsm,
) -> Dict[int, List[str]]:
    """Statically-known shared-memory write addresses per transition.

    Only :class:`Const` addresses are collected: variable addresses
    cannot be bounded without a value analysis, so they are excluded
    rather than reported speculatively (documented limitation).
    """
    addresses: Dict[int, List[str]] = {}
    for transition in cfsm.transitions:
        for stmt in transition.body.nodes():
            if isinstance(stmt, SharedWrite) \
                    and isinstance(stmt.address, Const):
                addresses.setdefault(stmt.address.value, []).append(
                    transition.name
                )
    return addresses


def _causally_ordered(a: Cfsm, t_a: str, b: Cfsm, t_b: str) -> bool:
    """Whether one transition's emissions (transitively within its own
    process are ignored) directly trigger the other.

    A direct emit→trigger edge is the paper's handshake idiom
    (producer stores, then announces; consumer reacts to the
    announcement): those writes are ordered per occurrence, so they are
    not reported as races.
    """
    def edge(src: Cfsm, src_t: str, dst: Cfsm, dst_t: str) -> bool:
        source = src.transition_by_name(src_t)
        emitted = set(source.body.events_emitted())
        target = dst.transition_by_name(dst_t)
        return bool(emitted & set(target.trigger))

    return edge(a, t_a, b, t_b) or edge(b, t_b, a, t_a)


def _check_shared_write_races(network: Network) -> List[Diagnostic]:
    """NET108: two processes writing one shared word, unordered."""
    diagnostics: List[Diagnostic] = []
    cfsms = sorted(network.cfsms.items())
    writes = {name: _constant_write_addresses(cfsm) for name, cfsm in cfsms}
    for index, (name_a, cfsm_a) in enumerate(cfsms):
        for name_b, cfsm_b in cfsms[index + 1:]:
            common = sorted(set(writes[name_a]) & set(writes[name_b]))
            racy_addresses: List[int] = []
            for address in common:
                pairs = [
                    (t_a, t_b)
                    for t_a in writes[name_a][address]
                    for t_b in writes[name_b][address]
                ]
                if any(not _causally_ordered(cfsm_a, t_a, cfsm_b, t_b)
                       for t_a, t_b in pairs):
                    racy_addresses.append(address)
            if racy_addresses:
                rendered = ", ".join("0x%x" % a for a in racy_addresses)
                diagnostics.append(make(
                    "NET108",
                    "processes %r and %r both write shared address(es) "
                    "%s with no event ordering between the writing "
                    "transitions" % (name_a, name_b, rendered),
                    Location(system=network.name, cfsm=name_a),
                    data={"other": name_b, "addresses": racy_addresses},
                ))
    return diagnostics


def _check_unconsumed_outputs(network: Network) -> List[Diagnostic]:
    """NET109: outputs no process consumes (primary outputs or typos)."""
    diagnostics: List[Diagnostic] = []
    consumed: Set[str] = set()
    for cfsm in network.cfsms.values():
        consumed.update(cfsm.inputs)
    for name, cfsm in sorted(network.cfsms.items()):
        for event in sorted(cfsm.outputs):
            if event not in consumed:
                diagnostics.append(make(
                    "NET109",
                    "output %r of %r is consumed by no process (primary "
                    "output, or dead wiring)" % (event, name),
                    Location(system=network.name, cfsm=name, event=event),
                ))
    return diagnostics

"""Pass manager: which analyses run, in what order, over a network.

Passes are registered in a fixed order (cheap structural checks first)
and filtered two ways: the *fast subset* (``fast=True`` passes only —
no synthesis, no macro-model characterization) backs the pre-flight
gate inside ``estimate``/``explore``; a baseline subtracts accepted
findings afterwards.  Per-rule hit counts are threaded into a
:class:`~repro.telemetry.metrics.MetricsRegistry` as
``lint.rule.<CODE>`` counters so long-running explorations expose what
the gate keeps catching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.cfsm.model import Network
from repro.lint.baseline import Baseline
from repro.lint.diagnostics import (
    Diagnostic,
    exit_code,
    max_severity,
    sort_diagnostics,
)


@dataclass(frozen=True)
class LintPass:
    """One analysis stage.

    ``fast`` passes are pure structural walks; slow passes may
    synthesize hardware or characterize the software macro-model.
    """

    name: str
    run: Callable[[Network], List[Diagnostic]]
    fast: bool = True


def _run_cfsm_rules(network: Network) -> List[Diagnostic]:
    from repro.lint.network_rules import check_cfsm

    diagnostics: List[Diagnostic] = []
    for _, cfsm in sorted(network.cfsms.items()):
        diagnostics.extend(check_cfsm(cfsm, system=network.name))
    return diagnostics


def _run_network_rules(network: Network) -> List[Diagnostic]:
    from repro.lint.network_rules import check_network

    return check_network(network)


def _run_path_rules(network: Network) -> List[Diagnostic]:
    from repro.lint.paths import check_paths

    return check_paths(network)


def _run_macro_coverage(network: Network) -> List[Diagnostic]:
    from repro.core.macromodel import MacroModelCharacterizer
    from repro.lint.paths import check_macro_coverage

    if not network.software_cfsms():
        return []
    parameter_file = MacroModelCharacterizer().characterize()
    return check_macro_coverage(network, parameter_file)


def _run_netlist_rules(network: Network) -> List[Diagnostic]:
    from repro.lint.netlist_rules import check_hw_blocks

    return check_hw_blocks(network)


def _run_expression_dataflow(network: Network) -> List[Diagnostic]:
    from repro.lint.dataflow_rules import check_expression_dataflow

    return check_expression_dataflow(network)


def _run_netlist_dataflow(network: Network) -> List[Diagnostic]:
    from repro.lint.dataflow_rules import check_netlist_dataflow

    return check_netlist_dataflow(network)


#: All registered passes, execution order.  Names are stable (they
#: appear in ``--verbose`` output and telemetry), codes stay with their
#: pass.
PASSES: List[LintPass] = [
    LintPass("cfsm-structure", _run_cfsm_rules),
    LintPass("network-wiring", _run_network_rules),
    LintPass("path-analysis", _run_path_rules),
    LintPass("dataflow-expr", _run_expression_dataflow),
    LintPass("macro-coverage", _run_macro_coverage, fast=False),
    LintPass("netlist-structure", _run_netlist_rules, fast=False),
    LintPass("dataflow-netlist", _run_netlist_dataflow, fast=False),
]


@dataclass
class LintResult:
    """Everything one lint run produced."""

    system: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: List[Diagnostic] = field(default_factory=list)
    passes_run: List[str] = field(default_factory=list)

    @property
    def max_severity(self) -> Optional[str]:
        return max_severity(self.diagnostics)

    @property
    def exit_code(self) -> int:
        return exit_code(self.diagnostics)

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)


def run_lint(network: Network,
             fast_only: bool = False,
             baseline: Optional[Baseline] = None,
             metrics=None) -> LintResult:
    """Run the pass pipeline over ``network``.

    ``fast_only`` restricts to the pre-flight subset.  ``baseline``
    moves accepted findings into ``result.suppressed``.  ``metrics``
    (a :class:`~repro.telemetry.metrics.MetricsRegistry`) receives
    ``lint.rule.<CODE>`` hit counters for every finding, suppressed or
    not — the baseline hides reports, not facts.
    """
    result = LintResult(system=network.name)
    diagnostics: List[Diagnostic] = []
    for lint_pass in PASSES:
        if fast_only and not lint_pass.fast:
            continue
        diagnostics.extend(lint_pass.run(network))
        result.passes_run.append(lint_pass.name)
    diagnostics = sort_diagnostics(diagnostics)
    if metrics is not None:
        for diagnostic in diagnostics:
            metrics.counter("lint.rule.%s" % diagnostic.code).inc()
    if baseline is not None:
        kept, suppressed = baseline.apply(diagnostics)
        result.diagnostics = kept
        result.suppressed = suppressed
    else:
        result.diagnostics = diagnostics
    return result

"""S-graph reachability, path enumeration, and §4.2 cacheability.

The energy cache (Section 4.2) is keyed on the *path signature* of a
transition execution — the sequence of test outcomes.  Its steady-state
table size is therefore exactly the number of feasible control paths.
This module predicts that number statically:

* a flow-insensitive value-set analysis over each CFSM's variables
  (all constant assignments collected; anything data-dependent widens
  to TOP) lets statically-decided branches be pruned, so the predicted
  count matches what a simulation can actually exercise;
* counted loops with a statically-known bound multiply the body's path
  choices per iteration (``k^C`` signatures); a *data-dependent* bound
  around a branching body makes the table unbounded (``SG204``), the
  paper's Figure 4(b) spread-histogram case;
* transitions that can never fire — shadowed by a higher-priority
  unguarded transition (``SG201``) or carrying a statically-false guard
  (``SG202``) — are reported and excluded from the prediction.

The same walk powers the §4.1 coverage check (``MM401``): the macro-ops
a body can emit are extracted statically and compared against the
characterized parameter file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cfsm.actions import MacroOpKind
from repro.cfsm.expr import Const, Expression
from repro.cfsm.model import Cfsm, Network, Transition
from repro.cfsm.sgraph import (
    Assign,
    Emit,
    If,
    Loop,
    SharedRead,
    SharedWrite,
    Statement,
)
from repro.lint.diagnostics import Diagnostic, Location, make

#: Above this many distinct signatures the enumerator stops tracking
#: the exact set and keeps only the arithmetic count (``capped``).
SIGNATURE_CAP = 4096

#: Per-transition path count above which ``SG205`` flags the table as
#: disproportionate to a one-place-buffer reactive process.
BLOWUP_THRESHOLD = 512

#: Value set meaning "statically unknown" (TOP).
TOP = None

ValueSets = Dict[str, Optional[FrozenSet[int]]]


def compute_value_sets(cfsm: Cfsm) -> ValueSets:
    """Flow-insensitive constant sets per variable.

    A variable's set is its initial value plus every constant ever
    assigned to it anywhere in the process; one non-constant assignment
    (or any shared-memory read) widens it to TOP.
    """
    values: ValueSets = {
        name: frozenset((initial,))
        for name, initial in cfsm.variables.items()
    }
    for transition in cfsm.transitions:
        for stmt in transition.body.nodes():
            if isinstance(stmt, Assign):
                current = values.get(stmt.target, frozenset())
                if current is TOP:
                    continue
                if isinstance(stmt.value, Const):
                    values[stmt.target] = current | {stmt.value.value}
                else:
                    values[stmt.target] = TOP
            elif isinstance(stmt, SharedRead):
                values[stmt.target] = TOP
    return values


def static_value(expression: Expression,
                 values: ValueSets) -> Optional[int]:
    """Evaluate ``expression`` if every input is statically a
    singleton; ``None`` when any leaf is unknown (event values always
    are — they arrive from other processes)."""
    if expression.event_values():
        return None
    env: Dict[str, int] = {}
    for name in expression.variables():
        value_set = values.get(name, TOP)
        if value_set is TOP or len(value_set) != 1:
            return None
        env[name] = next(iter(value_set))
    return expression.evaluate(env)


# -- path enumeration --------------------------------------------------------


@dataclass
class PathSet:
    """The feasible path signatures of a statement sequence.

    ``signatures`` is the exact set while it stays under
    :data:`SIGNATURE_CAP` (``None`` once capped — ``count`` stays
    exact).  ``unbounded`` marks a data-dependent loop around a
    branching body: the signature population is then input-dependent
    and no finite table holds it.
    """

    count: int = 1
    signatures: Optional[Tuple[Tuple[Tuple[int, str], ...], ...]] = ((),)
    unbounded: bool = False

    @property
    def capped(self) -> bool:
        return self.signatures is None

    def sequence(self, other: "PathSet") -> "PathSet":
        count = self.count * other.count
        signatures = None
        if self.signatures is not None and other.signatures is not None \
                and count <= SIGNATURE_CAP:
            signatures = tuple(
                head + tail
                for head in self.signatures
                for tail in other.signatures
            )
        return PathSet(count=count, signatures=signatures,
                       unbounded=self.unbounded or other.unbounded)

    def prefixed(self, node_id: int, outcome: str) -> "PathSet":
        signatures = None
        if self.signatures is not None:
            signatures = tuple(
                ((node_id, outcome),) + tail for tail in self.signatures
            )
        return PathSet(count=self.count, signatures=signatures,
                       unbounded=self.unbounded)

    def union(self, other: "PathSet") -> "PathSet":
        count = self.count + other.count
        signatures = None
        if self.signatures is not None and other.signatures is not None \
                and count <= SIGNATURE_CAP:
            signatures = self.signatures + other.signatures
        return PathSet(count=count, signatures=signatures,
                       unbounded=self.unbounded or other.unbounded)

    def power(self, exponent: int) -> "PathSet":
        count = self.count ** exponent
        signatures = None
        if self.signatures is not None and count <= SIGNATURE_CAP:
            result = PathSet()
            for _ in range(exponent):
                result = result.sequence(self)
            signatures = result.signatures
        return PathSet(count=count, signatures=signatures,
                       unbounded=self.unbounded)


@dataclass
class PathEnumeration:
    """Result of enumerating one transition body."""

    paths: PathSet
    constant_branches: List[Tuple[int, bool]] = field(default_factory=list)

    @property
    def count(self) -> int:
        return self.paths.count


def enumerate_paths(body_statements: Sequence[Statement],
                    values: ValueSets) -> PathEnumeration:
    """Enumerate the feasible path signatures of a statement list."""
    constant_branches: List[Tuple[int, bool]] = []

    def walk(stmts: Sequence[Statement]) -> PathSet:
        result = PathSet()
        for stmt in stmts:
            result = result.sequence(_paths_of(stmt))
        return result

    def _paths_of(stmt: Statement) -> PathSet:
        if isinstance(stmt, If):
            decided = static_value(stmt.cond, values)
            if decided is not None:
                taken = bool(decided)
                constant_branches.append((stmt.node_id, taken))
                branch = walk(stmt.then if taken else stmt.els)
                return branch.prefixed(stmt.node_id, "T" if taken else "F")
            then_paths = walk(stmt.then).prefixed(stmt.node_id, "T")
            else_paths = walk(stmt.els).prefixed(stmt.node_id, "F")
            return then_paths.union(else_paths)
        if isinstance(stmt, Loop):
            body = walk(stmt.body)
            bound = static_value(stmt.count, values)
            if bound is not None:
                return body.power(max(0, bound))
            if body.count == 1 and not body.unbounded:
                # The body never branches: iteration count does not
                # touch the signature (TLOOPT/TLOOPF are not recorded).
                return PathSet()
            return PathSet(count=body.count, signatures=None,
                           unbounded=True)
        return PathSet()

    return PathEnumeration(paths=walk(body_statements),
                           constant_branches=constant_branches)


# -- transition liveness -----------------------------------------------------


def shadowing_transition(cfsm: Cfsm, index: int,
                         values: ValueSets) -> Optional[Transition]:
    """Higher-priority transition that always wins over number ``index``.

    Transitions are tried in order and the first enabled one fires; an
    earlier transition with a trigger *subset* and no guard (or a
    statically-true guard) is enabled whenever the later one is, so the
    later transition is dead code.
    """
    candidate = cfsm.transitions[index]
    for earlier in cfsm.transitions[:index]:
        if not set(earlier.trigger) <= set(candidate.trigger):
            continue
        if earlier.guard is None:
            return earlier
        decided = static_value(earlier.guard, values)
        if decided is not None and bool(decided):
            return earlier
    return None


# -- §4.2 cacheability report ------------------------------------------------


@dataclass(frozen=True)
class TransitionPathReport:
    """Static path prediction for one transition."""

    cfsm: str
    transition: str
    path_count: int
    unbounded: bool
    capped: bool
    dead: bool


@dataclass
class CacheabilityReport:
    """Predicted §4.2 energy-cache population for one system.

    ``predicted_table_size("path")`` is the steady-state entry count of
    an :class:`~repro.core.caching.EnergyCache` keyed per path;
    ``"transition"`` gives the coarser per-transition granularity.
    Dead transitions contribute nothing — the simulator can never
    insert their keys.
    """

    system: str
    rows: List[TransitionPathReport] = field(default_factory=list)

    @property
    def unbounded(self) -> bool:
        return any(row.unbounded for row in self.rows if not row.dead)

    def predicted_table_size(self, granularity: str = "path") -> int:
        live = [row for row in self.rows if not row.dead]
        if granularity == "path":
            return sum(row.path_count for row in live)
        if granularity == "transition":
            return len(live)
        raise ValueError("unknown granularity %r" % granularity)

    def row_for(self, cfsm: str, transition: str) -> TransitionPathReport:
        for row in self.rows:
            if row.cfsm == cfsm and row.transition == transition:
                return row
        raise KeyError("no report row for %s.%s" % (cfsm, transition))


def cacheability_report(network: Network) -> CacheabilityReport:
    """Build the §4.2 cacheability report for every process."""
    report = CacheabilityReport(system=network.name)
    for name, cfsm in sorted(network.cfsms.items()):
        values = compute_value_sets(cfsm)
        for index, transition in enumerate(cfsm.transitions):
            enumeration = enumerate_paths(
                transition.body.statements, values
            )
            guard_value = (
                static_value(transition.guard, values)
                if transition.guard is not None else None
            )
            dead = (
                shadowing_transition(cfsm, index, values) is not None
                or (guard_value is not None and not guard_value)
            )
            report.rows.append(TransitionPathReport(
                cfsm=name,
                transition=transition.name,
                path_count=enumeration.count,
                unbounded=enumeration.paths.unbounded,
                capped=enumeration.paths.capped,
                dead=dead,
            ))
    return report


# -- lint rules over the above ----------------------------------------------


def check_paths(network: Network) -> List[Diagnostic]:
    """Reachability and cacheability rules (SG201-SG205)."""
    diagnostics: List[Diagnostic] = []
    for name, cfsm in sorted(network.cfsms.items()):
        values = compute_value_sets(cfsm)
        for index, transition in enumerate(cfsm.transitions):
            where = Location(system=network.name, cfsm=name,
                             transition=transition.name)
            shadow = shadowing_transition(cfsm, index, values)
            if shadow is not None:
                diagnostics.append(make(
                    "SG201",
                    "dead transition: higher-priority transition %r "
                    "fires on a subset of its trigger (%s) with no "
                    "guard to yield" % (
                        shadow.name, ", ".join(sorted(shadow.trigger)),
                    ),
                    where, data={"shadowed_by": shadow.name},
                ))
            if transition.guard is not None:
                decided = static_value(transition.guard, values)
                if decided is not None and not decided:
                    diagnostics.append(make(
                        "SG202",
                        "dead transition: guard is statically false "
                        "for every reachable variable valuation",
                        where,
                    ))
            enumeration = enumerate_paths(
                transition.body.statements, values
            )
            for node_id, taken in enumeration.constant_branches:
                diagnostics.append(make(
                    "SG203",
                    "branch at node %d always takes the %s arm under "
                    "every reachable variable valuation" % (
                        node_id, "then" if taken else "else",
                    ),
                    Location(system=network.name, cfsm=name,
                             transition=transition.name, node=node_id),
                    data={"taken": taken},
                ))
            if enumeration.paths.unbounded:
                diagnostics.append(make(
                    "SG204",
                    "unbounded energy-cache table: a data-dependent "
                    "loop bound encloses a branching body, so the path "
                    "signature population grows with the input "
                    "(Fig. 4(b) spread-histogram case)",
                    where,
                ))
            elif enumeration.count > BLOWUP_THRESHOLD:
                diagnostics.append(make(
                    "SG205",
                    "path-table blowup: %d statically-feasible paths "
                    "(threshold %d); per-path caching will mostly miss"
                    % (enumeration.count, BLOWUP_THRESHOLD),
                    where, data={"paths": enumeration.count},
                ))
    return diagnostics


# -- §4.1 macro-model coverage ----------------------------------------------


def static_macro_ops(transition: Transition) -> Set[str]:
    """Macro-op names the body can emit, mirroring the interpreter."""
    ops: Set[str] = set()

    def expression_ops(expression: Expression) -> None:
        if expression.event_values():
            ops.add(MacroOpKind.ADETECT)
        ops.update(expression.macro_ops())

    for stmt in transition.body.nodes():
        if isinstance(stmt, Assign):
            ops.add(MacroOpKind.AIVC if isinstance(stmt.value, Const)
                    else MacroOpKind.AVV)
            expression_ops(stmt.value)
        elif isinstance(stmt, Emit):
            ops.add(MacroOpKind.AEMIT)
            if stmt.value is not None:
                expression_ops(stmt.value)
        elif isinstance(stmt, SharedRead):
            ops.add(MacroOpKind.ASHRD)
            expression_ops(stmt.address)
        elif isinstance(stmt, SharedWrite):
            ops.add(MacroOpKind.ASHWR)
            expression_ops(stmt.address)
            expression_ops(stmt.value)
        elif isinstance(stmt, If):
            ops.add(MacroOpKind.TIVART)
            ops.add(MacroOpKind.TIVARF)
            expression_ops(stmt.cond)
        elif isinstance(stmt, Loop):
            ops.add(MacroOpKind.TLOOPT)
            ops.add(MacroOpKind.TLOOPF)
            expression_ops(stmt.count)
    if transition.guard is not None:
        expression_ops(transition.guard)
    return ops


def check_macro_coverage(network: Network,
                         parameter_file) -> List[Diagnostic]:
    """MM401: ops a SW process can emit but the table does not price."""
    characterized = set(parameter_file.costs)
    diagnostics: List[Diagnostic] = []
    for cfsm in network.software_cfsms():
        used: Dict[str, List[str]] = {}
        for transition in cfsm.transitions:
            for op in static_macro_ops(transition):
                used.setdefault(op, []).append(transition.name)
        for op in sorted(set(used) - characterized):
            diagnostics.append(make(
                "MM401",
                "macro-op %s is emitted by software process %r "
                "(transitions: %s) but absent from the "
                "characterization table; estimation falls back to the "
                "ISS or silently prices it at zero" % (
                    op, cfsm.name, ", ".join(sorted(used[op])),
                ),
                Location(system=network.name, cfsm=cfsm.name),
                data={"op": op, "transitions": sorted(used[op])},
            ))
    return diagnostics

"""Translation validation for the s-graph optimizer (TV6xx).

Every expression rewrite the optimizer can perform lives in the
declarative :data:`repro.cfsm.optimize.REWRITE_RULES` registry with a
set of template expressions it is expected to fire on.  This module
*proves* each rule semantically equivalent on its templates the way
translation validators do it (Pnueli et al. / Necula): instantiate the
template, apply the rule, and check ``lhs.evaluate(env) ==
rhs.evaluate(env)`` over

* **exhaustive** environments at small bit-widths (every signed value
  of up to :data:`EXHAUSTIVE_BITS` bits per variable, the issue's
  "exhaustive <= 8-bit" budget),
* **corner vectors** at full width (zero, +/-1, the int16/int32
  boundary values and their neighbours — the inputs that break
  wrap-around and sign assumptions, like the historical
  ``SHR(x, 0) -> x`` bug), and
* **seeded random vectors** at and beyond 32 bits.

A rule that rewrites any vector differently is reported as TV601
(error, with the counterexample attached); a rule none of whose
templates fire is TV602 (dead rule); a rule that raises is TV603.
The CI ``deep-lint`` step runs this over the registry on every push,
so an unsound identity can no longer reach the optimizer silently.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfsm.expr import Expression
from repro.cfsm.optimize import REWRITE_RULES, RewriteRule
from repro.lint.diagnostics import Diagnostic, Location, make

__all__ = [
    "EXHAUSTIVE_BITS",
    "Counterexample",
    "RuleValidation",
    "ValidationReport",
    "validate_rule",
    "validate_rules",
    "check_rewrite_rules",
]

#: Per-variable exhaustive sweep width (signed).  Templates are small
#: (one or two variables), so a full signed sweep stays cheap; the cap
#: below shrinks the width if a template ever grows more variables.
EXHAUSTIVE_BITS = 8

#: Ceiling on exhaustive environments per template before the sweep
#: width is reduced.
_EXHAUSTIVE_CAP = 1 << 16

#: Full-width corner values: zero, units, and the two's-complement
#: boundaries where wrap-around and sign-extension bugs live.
CORNER_VALUES: Tuple[int, ...] = (
    0, 1, -1, 2, -2, 3, -3,
    31, 32, 33,
    (1 << 15) - 1, 1 << 15, -(1 << 15), -(1 << 15) - 1,
    (1 << 31) - 1, 1 << 31, -(1 << 31), -(1 << 31) - 1,
    (1 << 32) - 1, 1 << 32,
)

#: Seeded random full-width vectors per template.
RANDOM_VECTORS = 64

_RANDOM_SEED = 0xC0E5


@dataclass(frozen=True)
class Counterexample:
    """One environment on which a rewrite changed the result."""

    template: str
    rewritten: str
    env: Dict[str, int]
    expected: int
    actual: int

    def render(self) -> str:
        bindings = ", ".join(
            "%s=%d" % (name, value) for name, value in sorted(self.env.items())
        )
        return "%s -> %s differs at {%s}: %d != %d" % (
            self.template, self.rewritten, bindings,
            self.expected, self.actual,
        )


@dataclass
class RuleValidation:
    """Outcome of validating one rewrite rule."""

    rule: str
    category: str
    templates: int = 0
    fired: int = 0
    vectors: int = 0
    counterexamples: List[Counterexample] = field(default_factory=list)
    crashes: List[str] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return not self.counterexamples and not self.crashes

    @property
    def exercised(self) -> bool:
        return self.fired > 0

    def to_payload(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "category": self.category,
            "templates": self.templates,
            "fired": self.fired,
            "vectors": self.vectors,
            "sound": self.sound,
            "exercised": self.exercised,
            "counterexamples": [c.render() for c in self.counterexamples],
            "crashes": list(self.crashes),
        }


@dataclass
class ValidationReport:
    """Validation outcomes for a whole rule registry."""

    results: List[RuleValidation] = field(default_factory=list)

    @property
    def all_sound(self) -> bool:
        return all(result.sound for result in self.results)

    @property
    def all_exercised(self) -> bool:
        return all(result.exercised for result in self.results)

    @property
    def total_vectors(self) -> int:
        return sum(result.vectors for result in self.results)

    def to_payload(self) -> Dict[str, object]:
        return {
            "rules": len(self.results),
            "all_sound": self.all_sound,
            "all_exercised": self.all_exercised,
            "total_vectors": self.total_vectors,
            "results": [result.to_payload() for result in self.results],
        }


def _exhaustive_values(variable_count: int) -> List[int]:
    bits = EXHAUSTIVE_BITS
    while variable_count > 1 and (1 << bits) ** variable_count > _EXHAUSTIVE_CAP:
        bits -= 1
    half = 1 << (bits - 1)
    return list(range(-half, half))


def _environments(
    variables: Sequence[str], rng: random.Random
) -> List[Dict[str, int]]:
    """Exhaustive small-width grid + corner grid + random full-width."""
    if not variables:
        return [{}]
    envs: List[Dict[str, int]] = []
    small = _exhaustive_values(len(variables))
    for combo in itertools.product(small, repeat=len(variables)):
        envs.append(dict(zip(variables, combo)))
    corner_pool: Sequence[Tuple[int, ...]]
    if len(variables) == 1:
        corner_pool = [(value,) for value in CORNER_VALUES]
    else:
        corner_pool = list(itertools.product(CORNER_VALUES,
                                             repeat=len(variables)))
    for combo in corner_pool:
        envs.append(dict(zip(variables, combo)))
    for _ in range(RANDOM_VECTORS):
        envs.append({
            name: rng.randint(-(1 << 40), 1 << 40) for name in variables
        })
    return envs


def _validate_template(
    rule: RewriteRule,
    template: Expression,
    result: RuleValidation,
    rng: random.Random,
) -> None:
    from repro.cfsm.expr import BinaryOp

    if not isinstance(template, BinaryOp):
        result.crashes.append(
            "template %r is not a binary expression" % (template,)
        )
        return
    try:
        rewritten = rule.apply(template.op, template.left, template.right)
    except Exception as exc:  # noqa: BLE001 - crash IS the finding
        result.crashes.append(
            "rule raised %s on template %r" % (exc.__class__.__name__,
                                               template)
        )
        return
    if rewritten is None:
        return
    result.fired += 1
    variables = sorted(set(template.variables())
                       | set(rewritten.variables()))
    for env in _environments(variables, rng):
        result.vectors += 1
        try:
            expected = template.evaluate(env)
            actual = rewritten.evaluate(env)
        except Exception as exc:  # noqa: BLE001 - crash IS the finding
            result.crashes.append(
                "evaluation raised %s on template %r under %r"
                % (exc.__class__.__name__, template, env)
            )
            return
        if expected != actual:
            result.counterexamples.append(Counterexample(
                template=repr(template),
                rewritten=repr(rewritten),
                env=dict(env),
                expected=expected,
                actual=actual,
            ))
            if len(result.counterexamples) >= 3:
                return


def validate_rule(
    rule: RewriteRule, seed: int = _RANDOM_SEED
) -> RuleValidation:
    """Prove (or refute) one rewrite rule on its declared templates."""
    result = RuleValidation(rule=rule.name, category=rule.category,
                            templates=len(rule.templates))
    rng = random.Random(seed)
    for template in rule.templates:
        _validate_template(rule, template, result, rng)
    return result


def validate_rules(
    rules: Optional[Sequence[RewriteRule]] = None,
    seed: int = _RANDOM_SEED,
) -> ValidationReport:
    """Validate a rule registry (the optimizer's by default)."""
    report = ValidationReport()
    for rule in (REWRITE_RULES if rules is None else rules):
        report.results.append(validate_rule(rule, seed=seed))
    return report


def _rule_location(rule_name: str, template: Optional[str]) -> Location:
    return Location(system="optimizer", cfsm=rule_name, expr=template)


def check_rewrite_rules(
    rules: Optional[Sequence[RewriteRule]] = None,
    seed: int = _RANDOM_SEED,
    metrics=None,
) -> List[Diagnostic]:
    """TV6xx diagnostics for a rule registry.

    TV601 (error) per counterexample-bearing rule, TV602 (warning) per
    rule that fired on none of its templates, TV603 (error) per rule
    that raised during validation.  ``metrics`` (a
    :class:`~repro.telemetry.metrics.MetricsRegistry`) receives the
    same ``lint.rule.<CODE>`` hit counters :func:`repro.lint.run_lint`
    emits for its passes.
    """
    diagnostics: List[Diagnostic] = []
    report = validate_rules(rules, seed=seed)
    for result in report.results:
        if result.counterexamples:
            first = result.counterexamples[0]
            diagnostics.append(make(
                "TV601",
                "rewrite rule %r is unsound: %s"
                % (result.rule, first.render()),
                _rule_location(result.rule, first.template),
                data={
                    "rule": result.rule,
                    "counterexamples":
                        [c.render() for c in result.counterexamples],
                    "vectors": result.vectors,
                },
            ))
        for crash in result.crashes:
            diagnostics.append(make(
                "TV603",
                "rewrite rule %r failed validation: %s"
                % (result.rule, crash),
                _rule_location(result.rule, None),
                data={"rule": result.rule},
            ))
        if not result.exercised and not result.crashes:
            diagnostics.append(make(
                "TV602",
                "rewrite rule %r fired on none of its %d declared "
                "templates" % (result.rule, result.templates),
                _rule_location(result.rule, None),
                data={"rule": result.rule,
                      "templates": result.templates},
            ))
    if metrics is not None:
        for diagnostic in diagnostics:
            metrics.counter("lint.rule.%s" % diagnostic.code).inc()
    return diagnostics

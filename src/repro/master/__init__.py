"""The simulation master: the PTOLEMY role of the paper.

The master simulates the discrete-event behavioral model of the entire
system — it alone has the global view — and concurrently invokes and
synchronizes the component-level estimators: the ISS for software
processes (serialized by the RTOS model on the embedded processor),
the gate-level power simulator for hardware processes, the cache
simulator (fed memory references directly from behavioral execution),
and the shared-bus model.  The unit of synchronization is one CFSM
transition, exactly as in the paper's Section 3.
"""

from repro.master.kernel import EventQueue, QueueItem
from repro.master.rtos import RtosConfig, RtosScheduler
from repro.master.tracing import EnergyAccountant, EnergySample
from repro.master.master import MasterConfig, RunStats, SharedMemory, SimulationMaster
from repro.master.export import (
    export_energy_breakdown,
    export_power_csv,
    export_power_vcd,
)

__all__ = [
    "EventQueue",
    "QueueItem",
    "RtosConfig",
    "RtosScheduler",
    "EnergyAccountant",
    "EnergySample",
    "MasterConfig",
    "SimulationMaster",
    "SharedMemory",
    "RunStats",
    "export_power_csv",
    "export_power_vcd",
    "export_energy_breakdown",
]

"""Waveform and report export: the paper's "visual display" role.

The paper's tool "can display energy and power waveforms for the
various parts of the system".  This module renders the master's energy
accounting into standard interchange formats:

* :func:`export_power_csv` — time-binned per-component power series,
  one column per component, loadable by any plotting tool;
* :func:`export_power_vcd` — a Value Change Dump whose signals are the
  per-component power levels (in microwatts), viewable in GTKWave and
  friends next to functional waveforms;
* :func:`export_energy_breakdown` — the component/category totals as a
  text report.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence

from repro.master.tracing import EnergyAccountant


def _components(accountant: EnergyAccountant,
                include: Optional[Sequence[str]] = None) -> List[str]:
    names = sorted(accountant.by_component)
    if include is not None:
        wanted = set(include)
        names = [name for name in names if name in wanted]
    return names


def export_power_csv(
    accountant: EnergyAccountant,
    bin_ns: float,
    components: Optional[Sequence[str]] = None,
) -> str:
    """Per-component average power per time bin, as CSV text.

    The first column is the bin start time in nanoseconds; remaining
    columns are per-component power in watts.
    """
    names = _components(accountant, components)
    waveforms = {
        name: accountant.power_waveform(bin_ns, component=name)
        for name in names
    }
    bins = max((len(w) for w in waveforms.values()), default=0)
    out = io.StringIO()
    out.write("time_ns," + ",".join(names) + "\n")
    for index in range(bins):
        row = ["%g" % (index * bin_ns)]
        for name in names:
            waveform = waveforms[name]
            value = waveform[index][1] if index < len(waveform) else 0.0
            row.append("%.6g" % value)
        out.write(",".join(row) + "\n")
    return out.getvalue()


def _vcd_identifier(index: int) -> str:
    """Short printable VCD identifier codes (!, ", #, ...)."""
    alphabet = [chr(code) for code in range(33, 127)]
    if index < len(alphabet):
        return alphabet[index]
    first, second = divmod(index, len(alphabet))
    return alphabet[first - 1] + alphabet[second]


def export_power_vcd(
    accountant: EnergyAccountant,
    bin_ns: float,
    components: Optional[Sequence[str]] = None,
    module_name: str = "power",
) -> str:
    """Per-component power as a VCD file (values in microwatts).

    Each component becomes a 32-bit ``integer`` signal whose value is
    the average power of the current bin in µW, so the waveform viewer
    shows a stepped power trace aligned with simulation time (the VCD
    timescale is 1 ns).
    """
    names = _components(accountant, components)
    identifiers = {name: _vcd_identifier(i) for i, name in enumerate(names)}
    waveforms = {
        name: accountant.power_waveform(bin_ns, component=name)
        for name in names
    }
    bins = max((len(w) for w in waveforms.values()), default=0)

    out = io.StringIO()
    out.write("$date repro power co-estimation $end\n")
    out.write("$version repro 1.0 $end\n")
    out.write("$timescale 1ns $end\n")
    out.write("$scope module %s $end\n" % module_name)
    for name in names:
        out.write("$var integer 32 %s %s_uW $end\n"
                  % (identifiers[name], name.replace(" ", "_")))
    out.write("$upscope $end\n$enddefinitions $end\n")

    previous: Dict[str, int] = {}
    for index in range(bins):
        time_ns = int(index * bin_ns)
        changes = []
        for name in names:
            waveform = waveforms[name]
            watts = waveform[index][1] if index < len(waveform) else 0.0
            microwatts = int(round(watts * 1e6))
            if previous.get(name) != microwatts:
                changes.append("b%s %s"
                               % (format(microwatts, "b"), identifiers[name]))
                previous[name] = microwatts
        if changes or index == 0:
            out.write("#%d\n" % time_ns)
            for change in changes:
                out.write(change + "\n")
    out.write("#%d\n" % int(bins * bin_ns))
    return out.getvalue()


def export_energy_breakdown(accountant: EnergyAccountant) -> str:
    """Component and category energy totals as aligned text."""
    out = io.StringIO()
    out.write("energy by component:\n")
    for name in sorted(accountant.by_component):
        out.write("  %-20s %12.6g uJ\n"
                  % (name, accountant.by_component[name] * 1e6))
    out.write("energy by category:\n")
    for name in sorted(accountant.by_category):
        out.write("  %-20s %12.6g uJ\n"
                  % (name, accountant.by_category[name] * 1e6))
    out.write("total: %.6g uJ\n" % (accountant.total_energy * 1e6))
    return out.getvalue()

"""Discrete-event kernel: a time-ordered queue with stable ties."""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class QueueItem:
    """One scheduled occurrence."""

    time: float
    kind: str
    payload: Any = None


class EventQueue:
    """A deterministic discrete-event queue.

    Items scheduled at equal times pop in scheduling order (stable
    sequence numbers break ties), which keeps every co-simulation run
    reproducible.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._sequence = 0
        self.scheduled = 0
        self.dispatched = 0

    def schedule(self, time: float, kind: str, payload: Any = None) -> None:
        """Add an item at ``time``."""
        if time < 0:
            raise ValueError("cannot schedule at negative time %r" % time)
        heapq.heappush(self._heap, (time, self._sequence, QueueItem(time, kind, payload)))
        self._sequence += 1
        self.scheduled += 1

    def pop(self) -> QueueItem:
        """Remove and return the earliest item."""
        if not self._heap:
            raise IndexError("event queue is empty")
        _, _, item = heapq.heappop(self._heap)
        self.dispatched += 1
        return item

    def peek_time(self) -> Optional[float]:
        """Time of the earliest item, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

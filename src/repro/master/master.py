"""The co-simulation master.

``SimulationMaster`` simulates the discrete-event behavioral model of a
CFSM network and synchronizes the component power estimators around it,
one CFSM transition at a time:

* software transitions are serialized on the embedded processor by the
  RTOS model and estimated by the ISS (or an acceleration strategy);
* hardware transitions run concurrently on their synthesized blocks and
  are estimated by the gate-level power simulator (or a strategy);
* memory references extracted from behavioral execution feed the cache
  simulator directly (the ISS assumes 100% hits, as in the paper);
* shared-memory accesses and bus-mapped events become transactions on
  the shared-bus model, whose grants gate transition completion times.

Because behavioral execution is the reference semantics, acceleration
strategies can skip low-level simulation without perturbing system
behaviour — they only trade accuracy of the *cycle and energy numbers*,
which is exactly the trade-off the paper's Section 4 explores.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from repro.errors import ReproError

from repro.bus.busmodel import SharedBus
from repro.bus.model import BusParameters
from repro.cache.cachesim import CacheConfig, CacheSimulator
from repro.cfsm.events import Event
from repro.cfsm.model import Cfsm, Implementation, Network, Transition
from repro.cfsm.sgraph import ExecutionTrace
from repro.estimation import Estimate, EstimationJob, EstimationStrategy, FullStrategy
from repro.hw.estimator import HardwarePowerSimulator
from repro.hw.library import GateLibrary
from repro.master.kernel import EventQueue
from repro.master.rtos import RtosConfig, RtosScheduler
from repro.master.tracing import EnergyAccountant
from repro.resilience.supervisor import (
    EstimatorUnavailable,
    ResilienceConfig,
    ResilientEstimator,
)
from repro.sw.codegen import (
    SHARED_MEMORY_BASE,
    CompiledCfsm,
    compile_cfsm_cached,
    transition_label,
)
from repro.sw.iss import Iss
from repro.sw.power_model import InstructionPowerModel
from repro.telemetry import NULL_TELEMETRY, Telemetry


class MasterError(ReproError):
    """Raised for co-simulation configuration or runtime errors."""


class SharedMemory:
    """The system's shared memory, owned by the master."""

    def __init__(self) -> None:
        self.words: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    def read(self, address: int) -> int:
        self.reads += 1
        return self.words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        self.writes += 1
        self.words[address] = value

    def load(self, base: int, values: List[int]) -> None:
        """Bulk-initialize (testbench helper; not counted as traffic)."""
        for offset, value in enumerate(values):
            self.words[base + offset] = value


class _MaskedSharedMemory:
    """Width-masking view of shared memory for hardware processes.

    A synthesized block's memory ports are exactly ``width`` bits wide,
    so a hardware process can neither observe nor drive bits above its
    datapath width.  Routing behavioral shared accesses through this
    view keeps the reference semantics identical to what the netlist
    sees (the gate-level simulator masks its read script the same way).
    """

    def __init__(self, inner: SharedMemory, mask: int) -> None:
        self._inner = inner
        self._mask = mask

    def read(self, address: int) -> int:
        return self._inner.read(address) & self._mask

    def write(self, address: int, value: int) -> None:
        self._inner.write(address, value & self._mask)


@dataclass
class MasterConfig:
    """Co-simulation parameters."""

    cpu_clock_period_ns: float = 10.0
    bus_params: BusParameters = field(default_factory=BusParameters)
    cache_config: Optional[CacheConfig] = field(default_factory=CacheConfig)
    rtos: RtosConfig = field(default_factory=RtosConfig)
    power_model: InstructionPowerModel = field(
        default_factory=InstructionPowerModel.default_sparclite
    )
    library: GateLibrary = field(default_factory=GateLibrary.default)
    keep_samples: bool = True
    max_dispatches: int = 2_000_000
    charge_hw_idle: bool = True
    record_reactions: bool = False
    zero_delay: bool = False
    zero_delay_epsilon_ns: float = 0.001
    #: Optional resilience layer: fault injection, watchdog/retry
    #: supervision of the component estimators, and the graceful
    #: degradation ladder (see :mod:`repro.resilience`).
    resilience: Optional[ResilienceConfig] = None


@dataclass
class ReactionRecord:
    """One logged behavioral reaction (for separate estimation)."""

    cfsm: str
    transition: str
    consumed_values: Dict[str, int]
    trace: ExecutionTrace
    time_ns: float


@dataclass
class RunStats:
    """Counters collected during one co-simulation run."""

    transitions: Dict[str, int] = field(default_factory=dict)
    iss_invocations: int = 0
    hw_invocations: int = 0
    low_level_seconds: float = 0.0
    wall_seconds: float = 0.0
    end_time_ns: float = 0.0
    dispatched: int = 0
    truncated: bool = False
    lost_events: int = 0
    strategy: Dict[str, float] = field(default_factory=dict)
    #: Transition counts by estimate provenance (exact/cached/...).
    provenance: Dict[str, int] = field(default_factory=dict)
    #: Resilience-layer counters (faults, retries, fallbacks, ...).
    resilience: Dict[str, float] = field(default_factory=dict)


class _Process:
    """Per-CFSM runtime state inside the master."""

    def __init__(self, cfsm: Cfsm, kind: str) -> None:
        self.cfsm = cfsm
        self.kind = kind
        self.buffer = cfsm.make_buffer()
        self.state = cfsm.initial_state()
        self.busy = False
        self.compiled: Optional[CompiledCfsm] = None
        self.iss: Optional[Iss] = None
        self.memory: Dict[int, int] = {}
        self.hw: Optional[HardwarePowerSimulator] = None
        self.active_cycles = 0.0


class SimulationMaster:
    """Runs power co-estimation for one network configuration."""

    _MEMORY_STRIDE = 0x1000

    def __init__(
        self,
        network: Network,
        strategy: Optional[EstimationStrategy] = None,
        config: Optional[MasterConfig] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.network = network
        self.strategy = strategy or FullStrategy()
        self.config = config or MasterConfig()
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self.strategy.attach_telemetry(self.telemetry)
        self.queue = EventQueue()
        self.accountant = EnergyAccountant(
            keep_samples=self.config.keep_samples,
            tracer=self.telemetry.tracer,
        )
        self.shared_memory = SharedMemory()
        self.bus = SharedBus(self.config.bus_params, telemetry=self.telemetry)
        self.cache = (
            CacheSimulator(self.config.cache_config, telemetry=self.telemetry)
            if self.config.cache_config is not None
            else None
        )
        self.rtos = RtosScheduler(self.config.rtos)
        self.resilience = (
            ResilientEstimator(
                self.config.resilience,
                power_model=self.config.power_model,
                library=self.config.library,
                telemetry=self.telemetry,
            )
            if self.config.resilience is not None
            else None
        )
        self.stats = RunStats()
        self.reactions: List[ReactionRecord] = []

        self._processor_busy = False
        self._pending_reads: Dict[int, Dict] = {}
        self._pending_events: Dict[int, Tuple[str, int, str]] = {}
        self._bus_kick_scheduled_at = -1.0
        self._now = 0.0

        # Map bus-mapped events onto distinct "addresses" so that the
        # address-bus switching activity is meaningful.
        self._bus_event_addresses = {
            name: index for index, name in enumerate(sorted(network.bus_events))
        }

        self.processes: Dict[str, _Process] = {}
        base = self._MEMORY_STRIDE
        for name in sorted(network.cfsms):
            cfsm = network.cfsms[name]
            kind = network.implementation(name)
            process = _Process(cfsm, kind)
            if kind == Implementation.SW:
                if not self.config.zero_delay:
                    process.compiled = compile_cfsm_cached(cfsm, memory_base=base)
                    process.iss = Iss(
                        process.compiled.program,
                        self.config.power_model,
                        telemetry=self.telemetry,
                    )
                    process.memory = {
                        process.compiled.memory_map.variables[var]: value
                        for var, value in cfsm.initial_state().items()
                    }
                base += self._MEMORY_STRIDE
            else:
                if not self.config.zero_delay:
                    process.hw = HardwarePowerSimulator(
                        cfsm, self.config.library, telemetry=self.telemetry
                    )
            self.processes[name] = process

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, stimuli: List[Event], until_ns: Optional[float] = None) -> RunStats:
        """Co-simulate with the given environment stimuli.

        Args:
            stimuli: environment events (each with a ``time`` stamp).
            until_ns: optional simulation-time horizon.

        Returns:
            The collected :class:`RunStats`; detailed energy lives in
            :attr:`accountant` and component statistics on the bus,
            cache, and RTOS objects.
        """
        started = _time.perf_counter()
        for stimulus in stimuli:
            if stimulus.time is None:
                raise MasterError("stimulus %r has no timestamp" % (stimulus,))
            self.queue.schedule(stimulus.time, "deliver", stimulus)

        telemetry = self.telemetry
        depth_histogram = (
            telemetry.metrics.histogram(
                "master.queue_depth",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
            )
            if telemetry.enabled
            else None
        )

        while self.queue:
            if self.stats.dispatched >= self.config.max_dispatches:
                self.stats.truncated = True
                break
            if depth_histogram is not None:
                depth_histogram.observe(len(self.queue))
            item = self.queue.pop()
            if until_ns is not None and item.time > until_ns:
                self.stats.truncated = True
                break
            self._now = max(self._now, item.time)
            self.stats.dispatched += 1
            handler = getattr(self, "_on_" + item.kind)
            handler(item.time, item.payload)

        self.stats.end_time_ns = self._now
        self._charge_hw_idle()
        self._charge_bus_and_cache_summaries()
        self.stats.strategy = self.strategy.statistics()
        if self.resilience is not None:
            self.stats.resilience = self.resilience.statistics()
        self.stats.wall_seconds = _time.perf_counter() - started
        if telemetry.enabled:
            self._publish_metrics()
        return self.stats

    def total_energy(self) -> float:
        """Total system energy accumulated so far (joules)."""
        return self.accountant.total_energy

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_deliver(self, now: float, event: Event) -> None:
        consumers = self.network.consumers_of(event.name)
        if not consumers:
            self.stats.lost_events += 1
            return
        if event.name in self.network.reset_events:
            for cfsm in consumers:
                self._reset_process(cfsm.name)
            return
        for cfsm in consumers:
            process = self.processes[cfsm.name]
            delivered = event.at(now)
            if process.kind != Implementation.SW and delivered.value is not None:
                # A synthesized block's event-value ports are ``width``
                # bits wide: the netlist can only observe the masked
                # word.  Masking at delivery keeps the behavioral
                # reference in lock-step with the gate-level engine for
                # out-of-range values (e.g. negative words from a
                # software producer).
                mask = (1 << cfsm.width) - 1
                if delivered.value & mask != delivered.value:
                    delivered = Event(
                        delivered.name, delivered.value & mask, now, delivered.source
                    )
            before = process.buffer.overwrite_count
            process.buffer.deliver(delivered)
            if process.buffer.overwrite_count > before:
                self.stats.lost_events += 1
            self.queue.schedule(now, "try", cfsm.name)

    def _reset_process(self, name: str) -> None:
        """``watching RESET``: re-initialize one process.

        The behavioral state returns to its initial values, pending
        events are dropped, and the low-level engines' architectural
        state is brought back in sync.  A transition already in flight
        completes (its energy was spent), but reacts from fresh state
        afterwards.
        """
        process = self.processes[name]
        process.state = process.cfsm.initial_state()
        process.buffer.clear()
        if process.kind == Implementation.SW:
            self.rtos.remove(name)
            if process.compiled is not None:
                memory_map = process.compiled.memory_map
                for var, value in process.state.items():
                    process.memory[memory_map.variables[var]] = value
        elif process.hw is not None:
            mask = (1 << process.cfsm.width) - 1
            for var, value in process.state.items():
                process.hw.poke_variable(var, value & mask)

    def _on_try(self, now: float, name: str) -> None:
        process = self.processes[name]
        if process.busy:
            return
        transition = process.cfsm.enabled_transition(process.buffer, process.state)
        if transition is None:
            if process.kind == Implementation.SW:
                self.rtos.remove(name)
            return
        if process.kind == Implementation.SW:
            # Mark ready now but dispatch through the queue, so that
            # every process enabled at this same instant is in the
            # ready set before the scheduler picks — otherwise arrival
            # order would silently override the RTOS priorities.
            self.rtos.make_ready(name)
            self.queue.schedule(now, "dispatch", None)
        else:
            self._start_transition(name, now, rtos_overhead_cycles=0)

    def _on_dispatch(self, now: float, _payload=None) -> None:
        self._dispatch_processor(now)

    def _dispatch_processor(self, now: float) -> None:
        if self._processor_busy or not self.rtos.has_ready():
            return
        name = self.rtos.pick()
        if name is None:
            return
        process = self.processes[name]
        transition = process.cfsm.enabled_transition(process.buffer, process.state)
        if transition is None:
            # The enabling events were consumed by an earlier dispatch
            # of the same process; try the next candidate.
            self._dispatch_processor(now)
            return
        self._start_transition(name, now, rtos_overhead_cycles=self.rtos.last_overhead_cycles)

    def _on_complete(self, now: float, payload) -> None:
        name, emissions = payload
        process = self.processes[name]
        process.busy = False
        for event_name, value in emissions:
            self._emit_event(name, event_name, value, now)
        if process.kind == Implementation.SW:
            self._processor_busy = False
            self.queue.schedule(now, "dispatch", None)
        self.queue.schedule(now, "try", name)

    def _on_buskick(self, now: float, _payload=None) -> None:
        self._bus_kick_scheduled_at = -1.0
        grants = self.bus.advance(now)
        for grant in grants:
            self.accountant.add(
                "_bus",
                "bus",
                grant.start_ns,
                grant.end_ns,
                grant.energy_j,
                tag=grant.request.master,
            )
            request_id = grant.request.request_id
            if request_id in self._pending_reads:
                record = self._pending_reads.pop(request_id)
                record["remaining"] -= 1
                record["last_end"] = max(record["last_end"], grant.end_ns)
                if record["remaining"] == 0:
                    record["finish"](record["last_end"])
                else:
                    # Re-key under one of the other outstanding requests.
                    pass
            elif request_id in self._pending_events:
                event_name, value, source = self._pending_events.pop(request_id)
                self.queue.schedule(
                    grant.end_ns,
                    "deliver",
                    Event(event_name, value, grant.end_ns, source),
                )
        self._schedule_bus_kick(now)

    # ------------------------------------------------------------------
    # Transition execution
    # ------------------------------------------------------------------

    def _start_transition(self, name: str, now: float, rtos_overhead_cycles: int) -> None:
        process = self.processes[name]
        cfsm = process.cfsm
        transition = cfsm.enabled_transition(process.buffer, process.state)
        if transition is None:
            return
        process.busy = True
        if process.kind == Implementation.SW:
            self._processor_busy = True

        tracer = self.telemetry.tracer
        span = None
        wall_started = 0.0
        if tracer.enabled:
            wall_started = _time.perf_counter()
            span = tracer.span(
                "reaction:%s" % name,
                track="master",
                args={"transition": transition.name,
                      "kind": str(process.kind),
                      "t_ns": now},
            )

        consumed_values = {
            event: process.buffer.value(event)
            for event in transition.consumes
            if process.buffer.present(event)
        }
        pre_state = dict(process.state)
        shared = self.shared_memory
        if process.kind != Implementation.SW:
            # Same width discipline as event delivery: the block's
            # memory ports clip shared words to the datapath width.
            shared = _MaskedSharedMemory(shared, (1 << cfsm.width) - 1)
        trace = cfsm.react(transition, process.buffer, process.state, shared=shared)
        if process.kind != Implementation.SW:
            # Register writes in the netlist are masked to ``width``
            # bits; fold the behavioral state the same way so a later
            # transition branches on the value the hardware holds.
            mask = (1 << cfsm.width) - 1
            for var, value in trace.var_updates.items():
                masked = value & mask
                trace.var_updates[var] = masked
                process.state[var] = masked
        self.stats.transitions[name] = self.stats.transitions.get(name, 0) + 1
        if self.config.record_reactions:
            self.reactions.append(
                ReactionRecord(name, transition.name, dict(consumed_values), trace, now)
            )

        emissions = list(trace.emitted)
        if process.kind != Implementation.SW:
            # Emission value ports are width-bits wide as well.
            mask = (1 << cfsm.width) - 1
            emissions = [(event, value & mask) for event, value in emissions]

        estimate = self._estimate(process, transition, trace, consumed_values, pre_state)

        # Cache simulation from behavioral memory references (SW only).
        stall_cycles = 0
        cache_energy = 0.0
        if (
            process.kind == Implementation.SW
            and self.cache is not None
            and not self.config.zero_delay
            and trace.memory_refs
            and self._component_ok("cache")
        ):
            stall_cycles, cache_energy = self._simulate_cache(process, trace)

        period = (
            self.config.cpu_clock_period_ns
            if process.kind == Implementation.SW
            else cfsm.clock_period_ns
        )
        if self.config.zero_delay:
            compute_ns = self.config.zero_delay_epsilon_ns
            rtos_energy = 0.0
        else:
            compute_cycles = estimate.cycles + stall_cycles + rtos_overhead_cycles
            compute_ns = compute_cycles * period
            rtos_energy = self.config.power_model.fill_energy(rtos_overhead_cycles)
        process.active_cycles += compute_ns / period if period > 0 else 0.0

        def finish(start_compute_ns: float) -> None:
            end_ns = start_compute_ns + compute_ns
            self.accountant.add(
                name, process.kind, start_compute_ns, end_ns, estimate.energy,
                tag=transition.name, provenance=estimate.provenance,
            )
            if cache_energy:
                self.accountant.add(
                    "_cache", "cache", start_compute_ns, end_ns, cache_energy, tag=name
                )
            if rtos_energy:
                self.accountant.add(
                    "_rtos", "rtos", start_compute_ns, end_ns, rtos_energy, tag=name
                )
            if (
                trace.shared_writes
                and not self.config.zero_delay
                and self._component_ok("bus")
            ):
                for base, words in _contiguous_runs(trace.shared_writes):
                    self.bus.submit(name, True, base, words, end_ns)
                self._schedule_bus_kick(end_ns)
            elif trace.shared_writes:
                for address, value in trace.shared_writes:
                    pass  # zero-delay / bus-bypass: traffic is not timed
            self.queue.schedule(end_ns, "complete", (name, emissions))

        if (
            trace.shared_reads
            and not self.config.zero_delay
            and self._component_ok("bus")
        ):
            runs = _contiguous_runs(trace.shared_reads)
            record = {
                "remaining": len(runs),
                "last_end": now,
                "finish": finish,
            }
            for base, words in runs:
                request = self.bus.submit(name, False, base, words, now)
                self._pending_reads[request.request_id] = record
            self._schedule_bus_kick(now)
        else:
            finish(now)

        if span is not None:
            span.set("cycles", estimate.cycles)
            span.set("energy_j", estimate.energy)
            span.set("ran_low_level", estimate.ran_low_level)
            span.close()
            self.telemetry.metrics.histogram("master.reaction_seconds").observe(
                _time.perf_counter() - wall_started
            )

    def _estimate(
        self,
        process: _Process,
        transition: Transition,
        trace: ExecutionTrace,
        consumed_values: Dict[str, int],
        pre_state: Dict[str, int],
    ) -> Estimate:
        if self.config.zero_delay:
            return Estimate(cycles=1, energy=0.0, ran_low_level=False)
        name = process.cfsm.name

        if process.kind == Implementation.SW:
            def run_low_level() -> Estimate:
                started = _time.perf_counter()
                memory_map = process.compiled.memory_map
                for event, value in consumed_values.items():
                    if event in memory_map.event_mailboxes:
                        process.memory[memory_map.event_mailboxes[event]] = value
                for address, value in trace.shared_reads:
                    process.memory[SHARED_MEMORY_BASE + address] = value
                result = process.iss.run(
                    transition_label(name, transition.name), process.memory
                )
                self.stats.iss_invocations += 1
                self.stats.low_level_seconds += _time.perf_counter() - started
                return Estimate(result.cycles, result.energy, True)
        else:
            def run_low_level() -> Estimate:
                started = _time.perf_counter()
                mask = (1 << process.cfsm.width) - 1
                for var, value in pre_state.items():
                    process.hw.poke_variable(var, value & mask)
                result = process.hw.run_transition(
                    transition.name,
                    consumed_values,
                    read_values=[value for _, value in trace.shared_reads],
                )
                self.stats.hw_invocations += 1
                self.stats.low_level_seconds += _time.perf_counter() - started
                return Estimate(result.cycles, result.energy, True)

        if self.resilience is not None:
            site = "iss" if process.kind == Implementation.SW else "hw"
            run_low_level = self.resilience.supervise(
                site,
                name,
                run_low_level,
                path_key=(name, transition.name, trace.path),
                sim_time_ns=self._now,
            )

        job = EstimationJob(
            cfsm=process.cfsm,
            transition=transition,
            trace=trace,
            kind=process.kind,
            run_low_level=run_low_level,
        )
        tracer = self.telemetry.tracer
        if tracer.enabled:
            with tracer.span(
                "estimate:%s" % self.strategy.name,
                track="strategy",
                args={"cfsm": name, "transition": transition.name},
            ) as estimate_span:
                estimate = self._estimate_supervised(job)
                estimate_span.set("ran_low_level", estimate.ran_low_level)
                estimate_span.set("provenance", estimate.provenance)
        else:
            estimate = self._estimate_supervised(job)
        self.stats.provenance[estimate.provenance] = (
            self.stats.provenance.get(estimate.provenance, 0) + 1
        )

        # Keep the low-level engines' architectural state in sync with
        # the behavioral reference even when they were skipped.
        if process.kind == Implementation.SW and process.compiled is not None:
            memory_map = process.compiled.memory_map
            for var, value in trace.var_updates.items():
                process.memory[memory_map.variables[var]] = value
        elif process.kind == Implementation.HW and not estimate.ran_low_level:
            mask = (1 << process.cfsm.width) - 1
            for var, value in process.state.items():
                process.hw.poke_variable(var, value & mask)
        return estimate

    def _estimate_supervised(self, job: EstimationJob) -> Estimate:
        """Ask the strategy, riding the degradation ladder on failure.

        With a resilience layer armed (and degradation enabled), a
        persistently failed component estimator becomes a fallback
        estimate instead of an aborted run.  Every estimate leaves with
        a provenance tag; strategies that didn't set one get it derived
        here (low-level run → ``exact``; macro-modeling → ``macromodel``;
        caching and sampling replay prior statistics → ``cached``).
        """
        if self.resilience is not None and self.resilience.config.degradation:
            try:
                estimate = self.strategy.estimate(job)
            except EstimatorUnavailable:
                estimate = self.resilience.fallback(job)
        else:
            estimate = self.strategy.estimate(job)
        if not estimate.provenance:
            if estimate.ran_low_level:
                estimate.provenance = "exact"
            elif self.strategy.name == "macromodel":
                estimate.provenance = "macromodel"
            else:
                estimate.provenance = "cached"
        return estimate

    def _simulate_cache(
        self, process: _Process, trace: ExecutionTrace
    ) -> Tuple[int, float]:
        tracer = self.telemetry.tracer
        span = None
        if tracer.enabled and trace.memory_refs:
            span = tracer.span(
                "cache.simulate",
                track="master",
                args={"cfsm": process.cfsm.name,
                      "references": len(trace.memory_refs)},
            )
        memory_map = process.compiled.memory_map
        stall_cycles = 0
        energy = 0.0
        for reference in trace.memory_refs:
            if reference.name.startswith("@"):
                address = memory_map.event_mailboxes.get(reference.name[1:])
            else:
                address = memory_map.variables.get(reference.name)
            if address is None:
                continue
            outcome = self.cache.access(address, reference.is_write)
            stall_cycles += outcome.stall_cycles
            energy += outcome.energy_j
        if span is not None:
            span.set("stall_cycles", stall_cycles)
            span.close()
        return stall_cycles, energy

    # ------------------------------------------------------------------
    # Emission and bus plumbing
    # ------------------------------------------------------------------

    def _component_ok(self, site: str) -> bool:
        """Fault-gate one cache/bus boundary use (True without faults).

        A faulted invocation is *bypassed*: the run proceeds without
        that component's timing/energy contribution, and the bypass is
        counted so reports show how much accounting was lost.
        """
        if self.resilience is None:
            return True
        return self.resilience.component_ok(site)

    def _emit_event(self, source: str, event_name: str, value: int, now: float) -> None:
        if (
            event_name in self.network.bus_events
            and not self.config.zero_delay
            and self._component_ok("bus")
        ):
            address = self._bus_event_addresses[event_name]
            request = self.bus.submit(source, True, address, [value], now)
            self._pending_events[request.request_id] = (event_name, value, source)
            self._schedule_bus_kick(now)
        else:
            self.queue.schedule(now, "deliver", Event(event_name, value, now, source))

    def _schedule_bus_kick(self, now: float) -> None:
        if not self.bus.pending:
            return
        next_time = max(self.bus.busy_until_ns, now)
        earliest = min(request.submitted_ns for request in self.bus.pending)
        if earliest > next_time:
            next_time = earliest
        if next_time <= now:
            next_time = now
        if (
            self._bus_kick_scheduled_at < 0
            or next_time < self._bus_kick_scheduled_at - 1e-12
        ):
            self.queue.schedule(next_time, "buskick", None)
            self._bus_kick_scheduled_at = next_time
            tracer = self.telemetry.tracer
            if tracer.enabled:
                tracer.instant(
                    "bus.kick_scheduled",
                    track="bus",
                    args={"at_ns": next_time,
                          "pending": len(self.bus.pending)},
                )

    # ------------------------------------------------------------------
    # Metrics publication
    # ------------------------------------------------------------------

    def _publish_metrics(self) -> None:
        """Write run counters into the metrics registry.

        Called once at end of run (never on the hot path) so the
        snapshot always agrees with :class:`RunStats` and with the
        strategy's :meth:`~repro.estimation.EstimationStrategy.statistics`.
        """
        metrics = self.telemetry.metrics
        stats = self.stats
        metrics.gauge("iss_calls").set(stats.iss_invocations)
        metrics.gauge("hw_sim_calls").set(stats.hw_invocations)
        metrics.gauge("master.transitions").set(sum(stats.transitions.values()))
        metrics.gauge("master.dispatched").set(stats.dispatched)
        metrics.gauge("master.lost_events").set(stats.lost_events)
        metrics.gauge("master.end_time_ns").set(stats.end_time_ns)
        metrics.gauge("master.wall_seconds").set(stats.wall_seconds)
        metrics.gauge("master.low_level_seconds").set(stats.low_level_seconds)
        if self.cache is not None:
            metrics.gauge("datacache.accesses").set(self.cache.accesses)
            metrics.gauge("datacache.hit_rate").set(self.cache.hit_rate)
            metrics.gauge("datacache.stall_cycles").set(
                self.cache.total_stall_cycles
            )
        metrics.gauge("bus.total_busy_cycles").set(self.bus.total_busy_cycles)
        metrics.gauge("bus.utilization").set(
            self.bus.utilization(stats.end_time_ns)
        )
        metrics.gauge("rtos.context_switches").set(
            getattr(self.rtos, "context_switches", 0)
        )
        for level, count in stats.provenance.items():
            metrics.gauge("provenance.%s" % level).set(count)
        if self.resilience is not None:
            self.resilience.publish_metrics()
        self.strategy.publish_metrics()
        self.accountant.publish_metrics(metrics)

    # ------------------------------------------------------------------
    # End-of-run charges
    # ------------------------------------------------------------------

    def _charge_hw_idle(self) -> None:
        if not self.config.charge_hw_idle or self.config.zero_delay:
            return
        for name, process in sorted(self.processes.items()):
            if process.kind != Implementation.HW or process.hw is None:
                continue
            period = process.cfsm.clock_period_ns
            total_cycles = self.stats.end_time_ns / period if period > 0 else 0.0
            idle_cycles = max(0.0, total_cycles - process.active_cycles)
            idle_energy = idle_cycles * process.hw.idle_energy_per_cycle()
            if idle_energy > 0:
                self.accountant.add(
                    name, "idle", 0.0, self.stats.end_time_ns, idle_energy
                )

    def _charge_bus_and_cache_summaries(self) -> None:
        # Bus grant energies are charged as they complete; anything
        # still pending at the horizon is flushed here.
        grants = self.bus.advance(float("inf"))
        for grant in grants:
            self.accountant.add(
                "_bus", "bus", grant.start_ns, grant.end_ns, grant.energy_j,
                tag=grant.request.master,
            )


def _contiguous_runs(accesses: List[Tuple[int, int]]) -> List[Tuple[int, List[int]]]:
    """Group (address, value) pairs into contiguous ascending runs."""
    runs: List[Tuple[int, List[int]]] = []
    for address, value in accesses:
        if runs:
            base, words = runs[-1]
            if address == base + len(words):
                words.append(value)
                continue
        runs.append((address, [value]))
    return runs

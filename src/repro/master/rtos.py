"""RTOS model for the software partition.

All software-mapped CFSMs share one embedded processor.  The RTOS model
serializes their transitions, charges dispatch and context-switch
overhead, and selects the next runnable process according to the
configured scheduling policy — the paper lists the scheduling policy
and priorities among the RTOS parameters the user sets in POLIS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


class SchedulingPolicy:
    """Supported scheduler policies."""

    STATIC_PRIORITY = "static_priority"
    FIFO = "fifo"
    ROUND_ROBIN = "round_robin"

    ALL = (STATIC_PRIORITY, FIFO, ROUND_ROBIN)


@dataclass
class RtosConfig:
    """RTOS parameters.

    Attributes:
        policy: one of :class:`SchedulingPolicy`.
        priorities: per-process priority (lower value runs first) for
            the static-priority policy.
        dispatch_cycles: scheduler overhead charged per dispatch.
        context_switch_cycles: extra overhead when the dispatched
            process differs from the previously running one.
    """

    policy: str = SchedulingPolicy.STATIC_PRIORITY
    priorities: Dict[str, int] = field(default_factory=dict)
    dispatch_cycles: int = 12
    context_switch_cycles: int = 40

    def __post_init__(self) -> None:
        if self.policy not in SchedulingPolicy.ALL:
            raise ValueError("unknown scheduling policy %r" % self.policy)


class RtosScheduler:
    """Ready queue and dispatch accounting for the shared processor."""

    def __init__(self, config: Optional[RtosConfig] = None) -> None:
        self.config = config or RtosConfig()
        self._ready: List[str] = []
        self._arrival: Dict[str, int] = {}
        self._arrival_counter = 0
        self.last_dispatched: Optional[str] = None
        self.dispatches = 0
        self.context_switches = 0
        self.overhead_cycles = 0

    def make_ready(self, process: str) -> None:
        """Mark ``process`` runnable (idempotent)."""
        if process not in self._ready:
            self._ready.append(process)
            self._arrival[process] = self._arrival_counter
            self._arrival_counter += 1

    def remove(self, process: str) -> None:
        """Drop ``process`` from the ready queue if present."""
        if process in self._ready:
            self._ready.remove(process)

    def has_ready(self) -> bool:
        """Whether any process is runnable."""
        return bool(self._ready)

    @property
    def ready_processes(self) -> List[str]:
        """Snapshot of the ready queue."""
        return list(self._ready)

    def pick(self) -> Optional[str]:
        """Choose (and remove) the next process to dispatch.

        Returns ``None`` when the ready queue is empty.  Overhead
        cycles are accumulated in :attr:`overhead_cycles`; the master
        converts them to time and energy.
        """
        if not self._ready:
            return None
        config = self.config
        if config.policy == SchedulingPolicy.STATIC_PRIORITY:
            chosen = min(
                self._ready,
                key=lambda p: (config.priorities.get(p, 100), self._arrival[p]),
            )
        elif config.policy == SchedulingPolicy.FIFO:
            chosen = min(self._ready, key=lambda p: self._arrival[p])
        else:  # round robin: rotate after the last dispatched process
            ordered = sorted(self._ready)
            chosen = ordered[0]
            if self.last_dispatched is not None:
                for name in ordered:
                    if name > self.last_dispatched:
                        chosen = name
                        break
        self._ready.remove(chosen)
        self.dispatches += 1
        overhead = config.dispatch_cycles
        if self.last_dispatched is not None and self.last_dispatched != chosen:
            overhead += config.context_switch_cycles
            self.context_switches += 1
        self.overhead_cycles += overhead
        self.last_dispatched = chosen
        self._last_overhead = overhead
        return chosen

    @property
    def last_overhead_cycles(self) -> int:
        """Overhead charged by the most recent :meth:`pick`."""
        return getattr(self, "_last_overhead", 0)

"""Energy bookkeeping and power waveforms.

The master records one :class:`EnergySample` per charged activity
(transition computation, bus burst, cache activity, RTOS overhead,
idle clocking).  The accountant aggregates totals per component and per
category and can render time-binned power waveforms — the "energy and
power waveforms for the various parts of the system" the paper's
visual display shows.

When constructed with a :class:`~repro.telemetry.tracer.Tracer`, the
accountant additionally emits one counter-track sample per charge, so
an exported Chrome trace shows cumulative energy by category as a
stacked counter track above the span timeline (see
:mod:`repro.telemetry.export`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.telemetry.tracer import NULL_TRACER, Tracer


@dataclass(frozen=True)
class EnergySample:
    """One attributed slice of energy."""

    component: str
    category: str  # "sw", "hw", "bus", "cache", "rtos", "idle"
    start_ns: float
    end_ns: float
    energy_j: float
    tag: str = ""
    #: Accuracy rung that produced the number: "exact", "cached",
    #: "macromodel", or "degraded" ("" for charges with no estimator,
    #: e.g. bus bursts and idle clocking).
    provenance: str = ""


class EnergyAccountant:
    """Aggregates energy samples by component and category."""

    def __init__(self, keep_samples: bool = True,
                 tracer: Optional[Tracer] = None) -> None:
        self.keep_samples = keep_samples
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.samples: List[EnergySample] = []
        self.by_component: Dict[str, float] = {}
        self.by_category: Dict[str, float] = {}
        self.by_provenance: Dict[str, float] = {}
        self.total_energy = 0.0

    def add(
        self,
        component: str,
        category: str,
        start_ns: float,
        end_ns: float,
        energy_j: float,
        tag: str = "",
        provenance: str = "",
    ) -> None:
        """Record one energy contribution."""
        if energy_j < 0:
            raise ValueError("negative energy sample")
        if not math.isfinite(energy_j):
            # A single NaN/inf would silently poison every total and
            # waveform bin downstream; fail at the source instead.
            raise ValueError("non-finite energy sample: %r" % energy_j)
        if self.keep_samples:
            self.samples.append(
                EnergySample(
                    component, category, start_ns, end_ns, energy_j, tag, provenance
                )
            )
        self.by_component[component] = self.by_component.get(component, 0.0) + energy_j
        self.by_category[category] = self.by_category.get(category, 0.0) + energy_j
        if provenance:
            self.by_provenance[provenance] = (
                self.by_provenance.get(provenance, 0.0) + energy_j
            )
        self.total_energy += energy_j
        if self.tracer.enabled:
            self.tracer.counter(
                "energy_uJ",
                {cat: value * 1e6 for cat, value in self.by_category.items()},
            )

    def component_energy(self, component: str) -> float:
        """Total energy attributed to ``component``."""
        return self.by_component.get(component, 0.0)

    def publish_metrics(self, registry) -> None:
        """Write the energy totals into a telemetry metrics registry.

        One exported artifact then carries both the cost counters and
        the energy breakdown, instead of the accountant and the
        registry being two disjoint APIs.
        """
        registry.gauge("energy.total_j").set(self.total_energy)
        for category, energy in self.by_category.items():
            registry.gauge("energy.by_category.%s_j" % category).set(energy)
        for component, energy in self.by_component.items():
            registry.gauge("energy.by_component.%s_j" % component).set(energy)
        for provenance, energy in self.by_provenance.items():
            registry.gauge("energy.by_provenance.%s_j" % provenance).set(energy)

    def power_waveform(
        self,
        bin_ns: float,
        end_ns: Optional[float] = None,
        component: Optional[str] = None,
    ) -> List[Tuple[float, float]]:
        """Average power per time bin, as (bin start ns, watts) pairs.

        Each sample's energy is spread uniformly over its duration;
        instantaneous samples land entirely in their bin.  Runs in
        O(samples + bins): interior (fully covered) bins are applied
        through a difference array instead of per-bin scans, so one
        run-long sample (e.g. hardware idle clocking) costs O(1).
        """
        if not self.keep_samples:
            raise RuntimeError("waveforms require keep_samples=True")
        if bin_ns <= 0:
            raise ValueError("bin size must be positive")
        horizon = end_ns
        if horizon is None:
            horizon = max((s.end_ns for s in self.samples), default=0.0)
        bins = max(1, int(horizon / bin_ns) + 1)
        window_end = bins * bin_ns
        energy_bins = [0.0] * bins
        slab = [0.0] * (bins + 1)  # rate-per-bin difference array
        for sample in self.samples:
            if component is not None and sample.component != component:
                continue
            start = sample.start_ns
            end = max(sample.end_ns, start)
            if end == start:
                index = min(bins - 1, int(start / bin_ns))
                energy_bins[index] += sample.energy_j
                continue
            # Clip to the binned window; energy outside it is dropped,
            # proportionally to the uniform spread.
            clipped_start = min(max(start, 0.0), window_end)
            clipped_end = min(max(end, 0.0), window_end)
            if clipped_end <= clipped_start:
                continue
            rate = sample.energy_j / (end - start)
            first = min(bins - 1, int(clipped_start / bin_ns))
            last = min(bins - 1, int(clipped_end / bin_ns))
            if first == last:
                energy_bins[first] += rate * (clipped_end - clipped_start)
                continue
            energy_bins[first] += rate * ((first + 1) * bin_ns - clipped_start)
            energy_bins[last] += rate * (clipped_end - last * bin_ns)
            if last - first > 1:
                slab[first + 1] += rate * bin_ns
                slab[last] -= rate * bin_ns
        running = 0.0
        for index in range(bins):
            running += slab[index]
            energy_bins[index] += running
        return [
            (index * bin_ns, energy / (bin_ns * 1e-9))
            for index, energy in enumerate(energy_bins)
        ]

    def peak_power(self, bin_ns: float, component: Optional[str] = None) -> Tuple[float, float]:
        """(time, watts) of the peak bin of the waveform."""
        waveform = self.power_waveform(bin_ns, component=component)
        if not waveform:
            return (0.0, 0.0)
        return max(waveform, key=lambda point: point[1])

"""Energy bookkeeping and power waveforms.

The master records one :class:`EnergySample` per charged activity
(transition computation, bus burst, cache activity, RTOS overhead,
idle clocking).  The accountant aggregates totals per component and per
category and can render time-binned power waveforms — the "energy and
power waveforms for the various parts of the system" the paper's
visual display shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class EnergySample:
    """One attributed slice of energy."""

    component: str
    category: str  # "sw", "hw", "bus", "cache", "rtos", "idle"
    start_ns: float
    end_ns: float
    energy_j: float
    tag: str = ""


class EnergyAccountant:
    """Aggregates energy samples by component and category."""

    def __init__(self, keep_samples: bool = True) -> None:
        self.keep_samples = keep_samples
        self.samples: List[EnergySample] = []
        self.by_component: Dict[str, float] = {}
        self.by_category: Dict[str, float] = {}
        self.total_energy = 0.0

    def add(
        self,
        component: str,
        category: str,
        start_ns: float,
        end_ns: float,
        energy_j: float,
        tag: str = "",
    ) -> None:
        """Record one energy contribution."""
        if energy_j < 0:
            raise ValueError("negative energy sample")
        if self.keep_samples:
            self.samples.append(
                EnergySample(component, category, start_ns, end_ns, energy_j, tag)
            )
        self.by_component[component] = self.by_component.get(component, 0.0) + energy_j
        self.by_category[category] = self.by_category.get(category, 0.0) + energy_j
        self.total_energy += energy_j

    def component_energy(self, component: str) -> float:
        """Total energy attributed to ``component``."""
        return self.by_component.get(component, 0.0)

    def power_waveform(
        self,
        bin_ns: float,
        end_ns: Optional[float] = None,
        component: Optional[str] = None,
    ) -> List[Tuple[float, float]]:
        """Average power per time bin, as (bin start ns, watts) pairs.

        Each sample's energy is spread uniformly over its duration;
        instantaneous samples land entirely in their bin.
        """
        if not self.keep_samples:
            raise RuntimeError("waveforms require keep_samples=True")
        if bin_ns <= 0:
            raise ValueError("bin size must be positive")
        horizon = end_ns
        if horizon is None:
            horizon = max((s.end_ns for s in self.samples), default=0.0)
        bins = max(1, int(horizon / bin_ns) + 1)
        energy_bins = [0.0] * bins
        for sample in self.samples:
            if component is not None and sample.component != component:
                continue
            start = sample.start_ns
            end = max(sample.end_ns, start)
            if end == start:
                index = min(bins - 1, int(start / bin_ns))
                energy_bins[index] += sample.energy_j
                continue
            duration = end - start
            first = min(bins - 1, int(start / bin_ns))
            last = min(bins - 1, int(end / bin_ns))
            for index in range(first, last + 1):
                lo = max(start, index * bin_ns)
                hi = min(end, (index + 1) * bin_ns)
                if hi > lo:
                    energy_bins[index] += sample.energy_j * (hi - lo) / duration
        return [
            (index * bin_ns, energy / (bin_ns * 1e-9))
            for index, energy in enumerate(energy_bins)
        ]

    def peak_power(self, bin_ns: float, component: Optional[str] = None) -> Tuple[float, float]:
        """(time, watts) of the peak bin of the waveform."""
        waveform = self.power_waveform(bin_ns, component=component)
        if not waveform:
            return (0.0, 0.0)
        return max(waveform, key=lambda point: point[1])

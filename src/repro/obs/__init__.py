"""`repro.obs` — service-grade observability for the co-estimation stack.

PR-1 gave the framework *telemetry* (a tracer and a metrics registry
built for benchmark artifacts); the service layer made the framework a
long-running process.  This package closes the gap between the two:
production observability, organised around the question "what happened
to *this request*?".

* :mod:`repro.obs.context` — per-request trace context
  (``trace_id``/``span_id``) propagated via :mod:`contextvars` and
  picklable across the process-pool hop, plus the contextvar event
  sink deep layers report through.
* :mod:`repro.obs.prometheus` — text-exposition rendering of the
  metrics registry (labels encoded into instrument names), plus an
  exposition validator for tests and CI.
* :mod:`repro.obs.logging` — one-JSON-object-per-line structured logs,
  every line trace-correlated.
* :mod:`repro.obs.slo` — latency/availability objectives with
  burn-rate gauges.
* :mod:`repro.obs.flightrecorder` — a bounded in-memory ring of recent
  events, dumped atomically on failures for postmortems.
* :mod:`repro.obs.names` — the canonical metric/event name constants
  (the compatibility surface dashboards and alerts key on).

:class:`Observability` bundles the pieces into the single object the
service owns: one call site for "record this outcome", with the fan-out
to logger, recorder, SLO tracker, and labeled metrics handled here.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Mapping, Optional

from repro.obs import names
from repro.obs.context import (
    EventSink,
    RequestContext,
    child_context,
    current_context,
    emit_event,
    new_span_id,
    new_trace_id,
    use_context,
    use_event_sink,
)
from repro.obs.flightrecorder import FlightRecorder
from repro.obs.logging import JsonLogger, NullLogger, NULL_LOGGER
from repro.obs.names import (
    EVENT_BREAKER_TRANSITION,
    EVENT_FLIGHT_DUMP,
    METRIC_BREAKER_STATE,
    METRIC_BREAKER_TRANSITIONS,
    METRIC_ENERGY_ANSWERS,
    METRIC_FLIGHT_DUMPS,
    METRIC_FLIGHT_RECORDED,
    METRIC_HTTP_REQUESTS,
    METRIC_REQUEST_LATENCY_SECONDS,
)
from repro.obs.prometheus import (
    labeled,
    parse_labeled,
    prometheus_name,
    render_prometheus,
    validate_exposition,
)
from repro.obs.slo import SLOConfig, SLOTracker
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "Observability",
    "RequestContext",
    "EventSink",
    "use_context",
    "use_event_sink",
    "current_context",
    "child_context",
    "emit_event",
    "new_trace_id",
    "new_span_id",
    "JsonLogger",
    "NullLogger",
    "NULL_LOGGER",
    "SLOConfig",
    "SLOTracker",
    "FlightRecorder",
    "labeled",
    "parse_labeled",
    "prometheus_name",
    "render_prometheus",
    "validate_exposition",
    "names",
    "BREAKER_STATE_VALUES",
    "HELP_TEXT",
]

#: Numeric encoding of breaker states for the state gauge.
BREAKER_STATE_VALUES: Dict[str, float] = {
    "closed": 0.0,
    "half_open": 1.0,
    "open": 2.0,
}

#: ``# HELP`` strings for the exported metric families.
HELP_TEXT: Dict[str, str] = {
    names.METRIC_HTTP_REQUESTS:
        "HTTP requests by path and status",
    names.METRIC_ENERGY_ANSWERS:
        "Energy answers by system and provenance tier",
    names.METRIC_BREAKER_STATE:
        "Circuit-breaker state (0 closed, 1 half-open, 2 open)",
    names.METRIC_BREAKER_TRANSITIONS:
        "Circuit-breaker state transitions by site and target state",
    names.METRIC_QUEUE_DEPTH:
        "Instantaneous admission-queue depth",
    names.METRIC_QUEUE_WAIT_SECONDS:
        "Seconds spent queued before a worker took the request",
    names.METRIC_RUN_SECONDS:
        "Wall-clock seconds of the co-estimation run",
    names.METRIC_REQUEST_LATENCY_SECONDS:
        "End-to-end request latency in seconds",
    names.METRIC_SLO_LATENCY_BURN:
        "Latency SLO burn rate over the sliding window",
    names.METRIC_SLO_ERROR_BURN:
        "Availability SLO burn rate over the sliding window",
    names.METRIC_FLIGHT_RECORDED:
        "Events recorded by the flight recorder",
    names.METRIC_FLIGHT_DUMPS:
        "Flight-recorder dumps written to disk",
    names.METRIC_CLUSTER_WORKERS:
        "Cluster workers by membership state",
    names.METRIC_CLUSTER_HEARTBEAT_AGE:
        "Seconds since each worker's last heartbeat",
    names.METRIC_CLUSTER_WORKER_QUEUE_DEPTH:
        "Worker-reported queue depth from the latest heartbeat",
    names.METRIC_CLUSTER_REDISPATCHES:
        "Jobs re-dispatched away from dead or quarantined workers",
    names.METRIC_CLUSTER_QUARANTINES:
        "Workers quarantined by the limplock detector",
    names.METRIC_CLUSTER_FAILOVERS:
        "Leadership takeovers completed by this coordinator",
    names.METRIC_CLUSTER_EPOCH:
        "Current leader epoch (monotonic across failovers)",
    names.METRIC_CLUSTER_LEASE_REMAINING:
        "Seconds left on the leadership lease (0 when not leading)",
    names.METRIC_CLUSTER_JOURNAL_ENTRIES:
        "Entries in the control-plane journal",
    names.METRIC_CLUSTER_REPLAY_SECONDS:
        "Seconds the last takeover spent replaying the journal",
    names.METRIC_CLUSTER_STALE_EPOCH:
        "Requests fenced with 409 stale-epoch",
}


class Observability:
    """The service's one-stop observability bundle.

    Owns the structured logger, flight recorder, and SLO tracker;
    writes labeled instruments into the (shared) metrics registry.
    Every recording method fans out to each consumer, so call sites
    stay one line.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        logger: Optional[JsonLogger] = None,
        slo: Optional[SLOConfig] = None,
        flight_capacity: int = 256,
        flight_dump_dir: Optional[str] = None,
        flight_keep: int = 8,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.logger = logger if logger is not None else NULL_LOGGER
        self.slo = SLOTracker(slo if slo is not None else SLOConfig())
        self.recorder = FlightRecorder(capacity=flight_capacity, clock=clock)
        self.flight_dump_dir = flight_dump_dir
        self.flight_keep = flight_keep

    # -- event fan-out ---------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        """Record one structured event: log line + flight-recorder entry."""
        self.logger.event(name, **fields)
        self.recorder.record(name, **fields)

    def sink(self, name: str, fields: Dict[str, Any]) -> None:
        """:data:`~repro.obs.context.EventSink` adapter for deep layers."""
        self.event(name, **fields)

    # -- labeled metric recorders ---------------------------------------

    def record_http(self, path: str, status: int) -> None:
        self.metrics.counter(
            labeled(METRIC_HTTP_REQUESTS, path=path, status=str(status))
        ).inc()

    def record_answer(
        self, system: str, provenance: str, count: float = 1.0
    ) -> None:
        self.metrics.counter(
            labeled(METRIC_ENERGY_ANSWERS, system=system, provenance=provenance)
        ).inc(count)

    def record_outcome(self, status: int, latency_s: float) -> None:
        """Account one terminal response for SLOs and the latency histogram."""
        self.slo.record(status, latency_s)
        self.metrics.histogram(METRIC_REQUEST_LATENCY_SECONDS).observe(latency_s)

    def breaker_transition(self, site: str, old: str, new: str) -> None:
        self.metrics.gauge(
            labeled(METRIC_BREAKER_STATE, site=site)
        ).set(BREAKER_STATE_VALUES.get(new, -1.0))
        self.metrics.counter(
            labeled(METRIC_BREAKER_TRANSITIONS, site=site, to=new)
        ).inc()
        self.event(EVENT_BREAKER_TRANSITION, site=site, old=old, new=new)

    def sync_breaker_states(self, states: Mapping[str, str]) -> None:
        """Refresh the per-site state gauges from a breaker snapshot."""
        for site, state in states.items():
            self.metrics.gauge(
                labeled(METRIC_BREAKER_STATE, site=site)
            ).set(BREAKER_STATE_VALUES.get(state, -1.0))

    # -- export ----------------------------------------------------------

    def publish(self) -> None:
        """Refresh derived gauges (SLO burn rates, recorder counters)."""
        self.slo.publish(self.metrics)
        self.metrics.gauge(METRIC_FLIGHT_RECORDED).set(self.recorder.recorded)
        self.metrics.gauge(METRIC_FLIGHT_DUMPS).set(self.recorder.dumps)

    def render_metrics(self) -> str:
        """The ``/metrics`` response body (publishes derived gauges first)."""
        self.publish()
        return render_prometheus(self.metrics, help_text=HELP_TEXT)

    # -- postmortems -----------------------------------------------------

    def dump_flight(self, reason: str) -> Optional[str]:
        """Dump the flight recorder if a dump directory is configured.

        Returns the dump path, or None when dumping is disabled or the
        write failed (a broken postmortem path must never break the
        response path — the failure itself is logged).
        """
        if not self.flight_dump_dir:
            return None
        try:
            path = self.recorder.dump(
                self.flight_dump_dir, reason, keep=self.flight_keep
            )
        except OSError as error:
            self.logger.event(
                EVENT_FLIGHT_DUMP, reason=reason, error=str(error), ok=False
            )
            return None
        self.event(EVENT_FLIGHT_DUMP, reason=reason, path=path, ok=True)
        return path

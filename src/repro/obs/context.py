"""Per-request trace context, propagated with :mod:`contextvars`.

One client request should render as *one* story — across the HTTP
handler thread that admits it, the worker thread that runs it, the
supervised estimator calls inside the run, and (for pooled sweeps) the
process-pool hop.  The carrier is :class:`RequestContext`: an
immutable ``(trace_id, span_id, parent_span_id, request_id)`` tuple
bound to a context variable, so any code on the request's call path —
however deep — can stamp its telemetry with the right ``trace_id``
without threading an argument through every signature.

Two design points worth naming:

* **Span ids are pid-namespaced.**  ``new_span_id`` is a process-local
  counter prefixed with the process id.  Pool workers deliberately
  seed ``random`` identically for determinism (see
  :func:`repro.parallel.jobs.job_seed`), so any randomness-derived id
  would collide across workers; the pid prefix makes collisions
  structurally impossible instead of merely unlikely.
* **Contexts are plain data.**  ``to_payload``/``from_payload`` are
  string dicts, safe to pickle into a
  :class:`~repro.parallel.jobs.JobSpec` — which is how the context
  survives the process-pool boundary (a prerequisite for shipping it
  across a cluster later).

The module also hosts the *event sink*: a contextvar-scoped callback
that lets deep layers (the resilience supervisor) report structured
events (fallbacks, breaker short-circuits) to whatever observability
bundle owns the current request, without importing the service.
"""

from __future__ import annotations

import contextvars
import itertools
import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = [
    "RequestContext",
    "new_trace_id",
    "new_span_id",
    "current_context",
    "use_context",
    "child_context",
    "EventSink",
    "use_event_sink",
    "emit_event",
]

_span_counter = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 128-bit trace id (hex) — unpredictable, globally unique."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh span id, namespaced by this process's pid.

    The counter is process-local; the pid prefix keeps ids from
    different pool workers (which share seeded RNG state by design)
    from ever colliding in a merged trace.
    """
    return "%x-%x" % (os.getpid(), next(_span_counter))


@dataclass(frozen=True)
class RequestContext:
    """Immutable trace coordinates of one request.

    ``trace_id`` names the whole request tree; ``span_id`` names the
    current operation within it; ``parent_span_id`` links the tree.
    ``request_id`` is the client-visible identifier, carried for log
    correlation (it is *not* part of span identity).
    """

    trace_id: str
    span_id: str
    parent_span_id: str = ""
    request_id: str = ""

    @classmethod
    def new(cls, request_id: str = "") -> "RequestContext":
        """Root context of a fresh request."""
        return cls(
            trace_id=new_trace_id(),
            span_id=new_span_id(),
            request_id=request_id,
        )

    def child(self) -> "RequestContext":
        """A child span context: same trace, new span, linked parent."""
        return replace(
            self, span_id=new_span_id(), parent_span_id=self.span_id
        )

    def to_payload(self) -> Dict[str, str]:
        """Picklable/JSON-able form (crosses the process-pool hop)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "request_id": self.request_id,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, str]) -> "RequestContext":
        return cls(
            trace_id=str(payload.get("trace_id", "")),
            span_id=str(payload.get("span_id", "")),
            parent_span_id=str(payload.get("parent_span_id", "")),
            request_id=str(payload.get("request_id", "")),
        )

    def trace_args(self) -> Dict[str, str]:
        """The args every span/log record on this request carries."""
        args = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id:
            args["parent_span_id"] = self.parent_span_id
        if self.request_id:
            args["request_id"] = self.request_id
        return args


_current: contextvars.ContextVar[Optional[RequestContext]] = (
    contextvars.ContextVar("repro_obs_context", default=None)
)


def current_context() -> Optional[RequestContext]:
    """The request context bound to this thread of execution, if any."""
    return _current.get()


@contextmanager
def use_context(context: Optional[RequestContext]) -> Iterator[None]:
    """Bind ``context`` for the duration of the ``with`` block."""
    token = _current.set(context)
    try:
        yield
    finally:
        _current.reset(token)


def child_context() -> Optional[RequestContext]:
    """A child of the current context (None when nothing is bound)."""
    context = _current.get()
    return None if context is None else context.child()


# ----------------------------------------------------------------------
# Event sink: deep layers report, the owning bundle listens.
# ----------------------------------------------------------------------

EventSink = Callable[[str, Dict[str, Any]], None]

_sink: contextvars.ContextVar[Optional[EventSink]] = contextvars.ContextVar(
    "repro_obs_sink", default=None
)


@contextmanager
def use_event_sink(sink: Optional[EventSink]) -> Iterator[None]:
    """Route :func:`emit_event` calls to ``sink`` inside the block."""
    token = _sink.set(sink)
    try:
        yield
    finally:
        _sink.reset(token)


def emit_event(name: str, **fields: Any) -> None:
    """Report a structured event to the bound sink (no-op if none).

    The current :class:`RequestContext`'s correlation fields are merged
    in automatically, so emitters never handle trace ids themselves.
    """
    sink = _sink.get()
    if sink is None:
        return
    context = _current.get()
    payload: Dict[str, Any] = dict(fields)
    if context is not None:
        for key, value in context.trace_args().items():
            payload.setdefault(key, value)
    sink(name, payload)

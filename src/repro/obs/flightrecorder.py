"""Postmortem flight recorder: a bounded ring of recent events.

Logs tell you what you chose to log at the verbosity you chose before
the incident; the flight recorder keeps the *last N events at full
detail* regardless of log level, in memory, at ring-buffer cost.  When
something goes wrong — a deadline expiry, a 5xx, an injected fault, a
drain — the service dumps the ring atomically to disk and the
postmortem starts from the actual event sequence instead of a
reconstruction.

Design constraints:

* **Bounded.**  A ``deque(maxlen=capacity)``; recording is O(1) and the
  recorder can never grow without limit, no matter the request rate.
  Overwritten events are counted (``dropped``) so a dump is honest
  about what it no longer holds.
* **Atomic dumps.**  Dumps go through
  :func:`repro.ioutil.atomic_write_json` — a crash mid-dump leaves the
  previous dump intact, never a half-written one.  Old dumps are pruned
  to the newest ``keep`` so an incident storm cannot fill the disk.
* **Trace-correlated.**  Every recorded event automatically carries the
  bound :class:`~repro.obs.context.RequestContext`'s fields, so a dump
  slices cleanly by ``trace_id``.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.ioutil import atomic_write_json
from repro.obs.context import current_context

__all__ = ["FlightRecorder", "DUMP_PREFIX"]

#: Dump filenames: ``flightrecorder-<reason>-<seq>.json``.
DUMP_PREFIX = "flightrecorder-"


def _sanitize_reason(reason: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in reason
    )
    return cleaned or "unknown"


class FlightRecorder:
    """Thread-safe bounded event ring with atomic postmortem dumps."""

    def __init__(
        self,
        capacity: int = 256,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self.recorded = 0
        self.dropped = 0
        self.dumps = 0

    def record(self, event: str, **fields: Any) -> None:
        """Append one event; correlation fields join automatically."""
        entry: Dict[str, Any] = {"event": event, "ts": self._clock()}
        context = current_context()
        if context is not None:
            for key, value in context.trace_args().items():
                entry.setdefault(key, value)
        for key, value in fields.items():
            entry.setdefault(key, value)
        with self._lock:
            self._seq += 1
            entry["seq"] = self._seq
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(entry)
            self.recorded += 1

    def events(self) -> List[Dict[str, Any]]:
        """Copy of the ring, oldest first."""
        with self._lock:
            return [dict(entry) for entry in self._events]

    def snapshot(self) -> Dict[str, Any]:
        """The ``/debug/flightrecorder`` document."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "recorded": self.recorded,
                "dropped": self.dropped,
                "dumps": self.dumps,
                "events": [dict(entry) for entry in self._events],
            }

    def dump(self, directory: str, reason: str, keep: int = 8) -> str:
        """Atomically write the ring to ``directory``; returns the path.

        The dump is a self-describing JSON document (reason, counters,
        events oldest-first).  After writing, older dumps beyond the
        newest ``keep`` are deleted so incident storms stay disk-bounded.
        """
        os.makedirs(directory, exist_ok=True)
        with self._lock:
            self.dumps += 1
            sequence = self.dumps
            document = {
                "reason": reason,
                "dumped_at": self._clock(),
                "capacity": self.capacity,
                "recorded": self.recorded,
                "dropped": self.dropped,
                "events": [dict(entry) for entry in self._events],
            }
        filename = "%s%s-%06d.json" % (
            DUMP_PREFIX, _sanitize_reason(reason), sequence
        )
        path = os.path.join(directory, filename)
        atomic_write_json(path, document)
        self._prune(directory, keep)
        return path

    @staticmethod
    def _prune(directory: str, keep: int) -> None:
        try:
            names = [
                name for name in os.listdir(directory)
                if name.startswith(DUMP_PREFIX) and name.endswith(".json")
            ]
        except OSError:
            return
        # The -<seq>.json suffix is zero-padded, so lexicographic order
        # is dump order for any realistic dump count.
        names.sort()
        for name in names[:-keep] if keep > 0 else names:
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass

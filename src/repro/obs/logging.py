"""Structured JSON logging: one event, one line, one trace id.

The service's log is a stream of facts, not prose: every admission,
dispatch, breaker transition, and drain step is one JSON object per
line, every line carrying the request's ``trace_id`` (pulled from the
bound :class:`~repro.obs.context.RequestContext` automatically).  That
makes ``grep trace_id`` the whole log-correlation story, and keeps the
format trivially consumable by ``jq`` and log pipelines.

The logger is synchronous and lock-guarded — co-estimation runs are
seconds long, so one short line per request *step* is nowhere near the
write rates that justify buffering, and a crash never loses buffered
events.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Callable, Optional, TextIO

from repro.obs.context import current_context

__all__ = ["JsonLogger", "NullLogger", "NULL_LOGGER"]


class JsonLogger:
    """Writes one JSON event per line to a text stream."""

    enabled = True

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.time,
        component: str = "service",
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self.component = component
        self._lock = threading.Lock()

    def event(self, name: str, **fields: Any) -> None:
        """Emit one event line.

        ``trace_id``/``span_id``/``request_id`` are filled in from the
        current request context unless the caller supplies them.
        """
        record: dict = {
            "ts": round(self._clock(), 6),
            "event": name,
            "component": self.component,
        }
        context = current_context()
        if context is not None:
            for key, value in context.trace_args().items():
                record.setdefault(key, value)
        record.setdefault("trace_id", "")
        for key, value in fields.items():
            record[key] = value
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()


class NullLogger(JsonLogger):
    """Disabled logger: every event is a no-op (the default path)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(stream=None)

    def event(self, name: str, **fields: Any) -> None:
        pass


#: Process-wide disabled logger; safe to share (it keeps no state).
NULL_LOGGER = NullLogger()

"""Canonical metric and log-event names of the observability layer.

Every metric the service exports and every structured-log event it
emits is named here, once.  Dashboards, alerts, and the smoke tests
key on these strings, so they are part of the service's compatibility
surface: renaming one is a breaking change and belongs in a release
note, not a refactor.

Metric names are dotted (`service.queue_wait_seconds`); the Prometheus
exporter (:mod:`repro.obs.prometheus`) rewrites dots to underscores
and prefixes ``repro_`` at render time, so the dotted form stays the
single internal spelling.  Labeled instruments encode their labels
into the registry name via :func:`repro.obs.prometheus.labeled`.
"""

from __future__ import annotations

from typing import Tuple

__all__ = [
    "METRIC_HTTP_REQUESTS",
    "METRIC_ENERGY_ANSWERS",
    "METRIC_BREAKER_STATE",
    "METRIC_BREAKER_TRANSITIONS",
    "METRIC_QUEUE_DEPTH",
    "METRIC_QUEUE_WAIT_SECONDS",
    "METRIC_ADMISSION_STATIC_COST_QUEUED",
    "METRIC_ADMISSION_STATIC_COST_IN_FLIGHT",
    "METRIC_ADMISSION_STATIC_COST_SECONDS_PER_UNIT",
    "METRIC_RUN_SECONDS",
    "METRIC_REQUEST_LATENCY_SECONDS",
    "METRIC_SLO_LATENCY_BURN",
    "METRIC_SLO_ERROR_BURN",
    "METRIC_FLIGHT_RECORDED",
    "METRIC_FLIGHT_DUMPS",
    "EVENT_ADMITTED",
    "EVENT_COALESCED",
    "EVENT_REJECTED",
    "EVENT_SHED",
    "EVENT_DISPATCHED",
    "EVENT_COMPLETED",
    "EVENT_FAILED",
    "EVENT_DEADLINE_EXPIRED",
    "EVENT_BREAKER_TRANSITION",
    "EVENT_ESTIMATOR_FALLBACK",
    "EVENT_ESTIMATOR_FAILURE",
    "EVENT_ESTIMATOR_SHORT_CIRCUIT",
    "EVENT_ESTIMATOR_TIMEOUT",
    "EVENT_DRAIN_STEP",
    "EVENT_FLIGHT_DUMP",
    "SERVICE_EVENTS",
    "METRIC_CLUSTER_WORKERS",
    "METRIC_CLUSTER_HEARTBEAT_AGE",
    "METRIC_CLUSTER_WORKER_QUEUE_DEPTH",
    "METRIC_CLUSTER_REDISPATCHES",
    "METRIC_CLUSTER_QUARANTINES",
    "METRIC_CLUSTER_FAILOVERS",
    "METRIC_CLUSTER_EPOCH",
    "METRIC_CLUSTER_LEASE_REMAINING",
    "METRIC_CLUSTER_JOURNAL_ENTRIES",
    "METRIC_CLUSTER_REPLAY_SECONDS",
    "METRIC_CLUSTER_STALE_EPOCH",
    "EVENT_WORKER_REGISTERED",
    "EVENT_WORKER_STATE",
    "EVENT_WORKER_QUARANTINED",
    "EVENT_JOB_REDISPATCHED",
    "EVENT_SHARD_HANDOFF",
    "EVENT_SWEEP_STEP",
    "EVENT_LEADER_ELECTED",
    "EVENT_LEADER_DEPOSED",
    "EVENT_LEADER_RESIGNED",
    "EVENT_JOURNAL_REPLAYED",
    "EVENT_STALE_EPOCH",
    "EVENT_SWEEP_RECOVERED",
    "CLUSTER_EVENTS",
]

# -- metrics (registry names; Prometheus spelling derived at render) ----

#: HTTP requests by handler outcome.  Labels: ``path``, ``status``.
METRIC_HTTP_REQUESTS = "http.requests"

#: Energy answers by quality tier.  Labels: ``system``, ``provenance``.
#: This is the quantitative face of the degradation ladder: the ratio
#: of non-``exact`` tiers is the measured degradation rate.
METRIC_ENERGY_ANSWERS = "service.energy_answers"

#: Current breaker state as a number (0 closed, 1 half-open, 2 open).
#: Labels: ``site`` (``"<system>:<estimator>"``).
METRIC_BREAKER_STATE = "service.breaker_state"

#: Breaker state transitions.  Labels: ``site``, ``to``.
METRIC_BREAKER_TRANSITIONS = "service.breaker_transitions"

#: Instantaneous admission-queue depth (gauge).
METRIC_QUEUE_DEPTH = "service.queue_depth"

#: Time a request spent queued before a worker took it (histogram).
METRIC_QUEUE_WAIT_SECONDS = "service.queue_wait_seconds"

#: Cost-aware admission gauges (rendered as
#: ``repro_admission_static_cost_*``): summed static admission weight
#: (:attr:`repro.lint.cost.CostReport.cost_units`) of the queued and
#: in-flight requests, and the learned seconds-per-cost-unit rate the
#: Retry-After quotes are priced with.
METRIC_ADMISSION_STATIC_COST_QUEUED = "admission.static_cost_queued"
METRIC_ADMISSION_STATIC_COST_IN_FLIGHT = "admission.static_cost_in_flight"
METRIC_ADMISSION_STATIC_COST_SECONDS_PER_UNIT = (
    "admission.static_cost_seconds_per_unit"
)

#: Wall-clock of the co-estimation run itself (histogram).
METRIC_RUN_SECONDS = "service.run_seconds"

#: End-to-end latency, admission to terminal response (histogram).
METRIC_REQUEST_LATENCY_SECONDS = "service.request_latency_seconds"

#: SLO burn rates (gauge): observed bad fraction over the window,
#: divided by the objective's error budget.  1.0 = burning exactly the
#: budget; above 1.0 the objective will be missed if sustained.
METRIC_SLO_LATENCY_BURN = "slo.latency_burn_rate"
METRIC_SLO_ERROR_BURN = "slo.error_burn_rate"

#: Flight-recorder bookkeeping (published as gauges set to the
#: recorder's absolute totals on each export).
METRIC_FLIGHT_RECORDED = "flightrecorder.recorded"
METRIC_FLIGHT_DUMPS = "flightrecorder.dumps"

# -- structured-log / flight-recorder event names -----------------------

EVENT_ADMITTED = "request.admitted"
EVENT_COALESCED = "request.coalesced"
EVENT_REJECTED = "request.rejected"
EVENT_SHED = "request.shed"
EVENT_DISPATCHED = "request.dispatched"
EVENT_COMPLETED = "request.completed"
EVENT_FAILED = "request.failed"
EVENT_DEADLINE_EXPIRED = "request.deadline_expired"
EVENT_BREAKER_TRANSITION = "breaker.transition"
EVENT_ESTIMATOR_FALLBACK = "estimator.fallback"
EVENT_ESTIMATOR_FAILURE = "estimator.persistent_failure"
EVENT_ESTIMATOR_SHORT_CIRCUIT = "estimator.short_circuit"
EVENT_ESTIMATOR_TIMEOUT = "estimator.watchdog_timeout"
EVENT_DRAIN_STEP = "drain.step"
EVENT_FLIGHT_DUMP = "flightrecorder.dump"

# -- cluster metrics (coordinator-exported) -----------------------------

#: Workers per membership state.  Labels: ``state``.
METRIC_CLUSTER_WORKERS = "cluster.workers"

#: Seconds since each worker's last heartbeat (gauge).  Labels:
#: ``worker``.
METRIC_CLUSTER_HEARTBEAT_AGE = "cluster.heartbeat_age_seconds"

#: Worker-reported queue depth from the latest heartbeat (gauge).
#: Labels: ``worker``.
METRIC_CLUSTER_WORKER_QUEUE_DEPTH = "cluster.worker_queue_depth"

#: Jobs re-dispatched away from dead/quarantined workers (counter).
METRIC_CLUSTER_REDISPATCHES = "cluster.redispatches"

#: Workers quarantined by the limplock detector (counter).
METRIC_CLUSTER_QUARANTINES = "cluster.limplock_quarantines"

# -- coordinator high availability (docs/cluster-ha.md) -----------------

#: Leadership takeovers completed by this coordinator (counter).  The
#: HA smoke test asserts ``repro_cluster_failovers_total >= 1`` after a
#: SIGKILL of the active coordinator.
METRIC_CLUSTER_FAILOVERS = "cluster.failovers"

#: Current leader epoch (gauge).  Monotonic across failovers; every
#: dispatch and heartbeat is fenced against it.
METRIC_CLUSTER_EPOCH = "cluster.epoch"

#: Seconds left on the leadership lease (gauge; 0 when not leading).
METRIC_CLUSTER_LEASE_REMAINING = "cluster.lease_remaining_seconds"

#: Entries in the control-plane journal (gauge).
METRIC_CLUSTER_JOURNAL_ENTRIES = "cluster.journal_entries"

#: Wall-clock seconds the last takeover spent replaying the journal
#: (gauge; 0 until the first takeover).
METRIC_CLUSTER_REPLAY_SECONDS = "cluster.takeover_replay_seconds"

#: Requests fenced with 409 ``stale-epoch`` (counter) — evidence a
#: deposed leader tried to keep dispatching.
METRIC_CLUSTER_STALE_EPOCH = "cluster.stale_epoch_rejections"

# -- cluster structured-log / flight-recorder event names ---------------

EVENT_WORKER_REGISTERED = "worker.registered"
EVENT_WORKER_STATE = "worker.state_change"
EVENT_WORKER_QUARANTINED = "worker.quarantined"
EVENT_JOB_REDISPATCHED = "job.redispatched"
EVENT_SHARD_HANDOFF = "shard.handoff"
EVENT_SWEEP_STEP = "sweep.step"
EVENT_LEADER_ELECTED = "leader.elected"
EVENT_LEADER_DEPOSED = "leader.deposed"
EVENT_LEADER_RESIGNED = "leader.resigned"
EVENT_JOURNAL_REPLAYED = "journal.replayed"
EVENT_STALE_EPOCH = "epoch.stale_rejected"
EVENT_SWEEP_RECOVERED = "sweep.recovered"

#: Every event name the service can emit — the schema contract the
#: docs and the lint-adjacent tests check against.
SERVICE_EVENTS: Tuple[str, ...] = (
    EVENT_ADMITTED,
    EVENT_COALESCED,
    EVENT_REJECTED,
    EVENT_SHED,
    EVENT_DISPATCHED,
    EVENT_COMPLETED,
    EVENT_FAILED,
    EVENT_DEADLINE_EXPIRED,
    EVENT_BREAKER_TRANSITION,
    EVENT_ESTIMATOR_FALLBACK,
    EVENT_ESTIMATOR_FAILURE,
    EVENT_ESTIMATOR_SHORT_CIRCUIT,
    EVENT_ESTIMATOR_TIMEOUT,
    EVENT_DRAIN_STEP,
    EVENT_FLIGHT_DUMP,
)

#: Every event name the cluster coordinator can emit, *in addition to*
#: the service set (the coordinator reuses EVENT_COALESCED and the
#: drain events).  A separate tuple on purpose: the single-node
#: service's event contract is unchanged by the cluster layer.
CLUSTER_EVENTS: Tuple[str, ...] = (
    EVENT_WORKER_REGISTERED,
    EVENT_WORKER_STATE,
    EVENT_WORKER_QUARANTINED,
    EVENT_JOB_REDISPATCHED,
    EVENT_SHARD_HANDOFF,
    EVENT_SWEEP_STEP,
    EVENT_LEADER_ELECTED,
    EVENT_LEADER_DEPOSED,
    EVENT_LEADER_RESIGNED,
    EVENT_JOURNAL_REPLAYED,
    EVENT_STALE_EPOCH,
    EVENT_SWEEP_RECOVERED,
)

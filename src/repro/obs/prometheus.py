"""Prometheus text exposition (version 0.0.4) over the metrics registry.

The :class:`~repro.telemetry.metrics.MetricsRegistry` stays the single
store of numeric truth; this module is a *renderer* plus a naming
convention:

* **Labels ride inside registry names.**  The registry identifies
  instruments by one string; :func:`labeled` encodes a label set into
  that string (``service.energy_answers{provenance="exact",…}``) in a
  canonical (sorted) spelling, so the same label set always maps to
  the same instrument.  :func:`parse_labeled` inverts the encoding at
  render time.  Code that never renders to Prometheus can keep using
  plain names — unlabeled instruments render as label-less samples.
* **Dotted names become Prometheus names at the edge.**  Internal
  names keep their dotted spelling (``service.queue_wait_seconds``);
  the renderer rewrites ``[^a-zA-Z0-9_:]`` to ``_`` and prefixes
  ``repro_``.  Counters additionally get the conventional ``_total``
  suffix.

Histograms render with cumulative ``_bucket`` samples (including the
mandatory ``+Inf``), ``_sum`` and ``_count`` — the registry's
fixed-bucket histograms carry exactly the data Prometheus wants.

:func:`validate_exposition` is a small line-grammar checker used by the
unit tests and the CI smoke script to assert the endpoint emits what a
Prometheus scraper will accept.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

from repro.telemetry.metrics import Histogram, MetricsRegistry

__all__ = [
    "labeled",
    "parse_labeled",
    "prometheus_name",
    "render_prometheus",
    "validate_exposition",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")

#: Prefix of every exported metric (the exposition namespace).
PROMETHEUS_PREFIX = "repro_"


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def labeled(name: str, **labels: str) -> str:
    """Encode ``labels`` into a registry instrument name.

    Canonical: labels sorted by key, values escaped, one spelling per
    label set — ``labeled("a", x="1", y="2")`` and
    ``labeled("a", y="2", x="1")`` return the same string, so they hit
    the same registry instrument.
    """
    if not labels:
        return name
    if "{" in name:
        raise ValueError("metric name %r already carries labels" % name)
    body = ",".join(
        '%s="%s"' % (key, _escape_label_value(str(value)))
        for key, value in sorted(labels.items())
    )
    return "%s{%s}" % (name, body)


_LABEL_PART = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_labeled(name: str) -> Tuple[str, Dict[str, str]]:
    """Split an encoded name back into ``(base, labels)``."""
    brace = name.find("{")
    if brace < 0:
        return name, {}
    if not name.endswith("}"):
        raise ValueError("malformed labeled metric name %r" % name)
    base = name[:brace]
    body = name[brace + 1:-1]
    labels: Dict[str, str] = {}
    for key, raw in _LABEL_PART.findall(body):
        labels[key] = (
            raw.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")
        )
    return base, labels


def prometheus_name(name: str, prefix: str = PROMETHEUS_PREFIX) -> str:
    """The exposition spelling of an internal (dotted) metric name."""
    sanitized = _NAME_SANITIZER.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_body(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    return "{%s}" % ",".join(
        '%s="%s"' % (key, _escape_label_value(value))
        for key, value in sorted(labels.items())
    )


def _family_rows(
    values: Mapping[str, float],
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Group ``encoded-name -> value`` by base family, labels decoded."""
    families: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for encoded, value in values.items():
        base, labels = parse_labeled(encoded)
        families.setdefault(base, []).append((labels, value))
    return families


def render_prometheus(
    registry: MetricsRegistry,
    help_text: Optional[Mapping[str, str]] = None,
) -> str:
    """Render every instrument of ``registry`` as exposition text.

    ``help_text`` optionally maps internal base names to ``# HELP``
    strings; families without one get a generated placeholder.
    """
    lines: List[str] = []
    helps = dict(help_text or {})

    def emit_header(base: str, kind: str, exposition: str) -> None:
        text = helps.get(base, "repro metric %s" % base)
        lines.append("# HELP %s %s" % (exposition, text.replace("\n", " ")))
        lines.append("# TYPE %s %s" % (exposition, kind))

    snapshot = registry.snapshot()

    for base, rows in sorted(_family_rows(snapshot["counters"]).items()):
        exposition = prometheus_name(base)
        if not exposition.endswith("_total"):
            exposition += "_total"
        emit_header(base, "counter", exposition)
        for labels, value in sorted(rows, key=lambda row: sorted(row[0].items())):
            lines.append(
                "%s%s %s" % (exposition, _label_body(labels), _format_value(value))
            )

    for base, rows in sorted(_family_rows(snapshot["gauges"]).items()):
        exposition = prometheus_name(base)
        emit_header(base, "gauge", exposition)
        for labels, value in sorted(rows, key=lambda row: sorted(row[0].items())):
            lines.append(
                "%s%s %s" % (exposition, _label_body(labels), _format_value(value))
            )

    histogram_families: Dict[str, List[Tuple[Dict[str, str], Histogram]]] = {}
    for encoded, instrument in sorted(registry.histogram_instruments().items()):
        base, labels = parse_labeled(encoded)
        histogram_families.setdefault(base, []).append((labels, instrument))
    for base, entries in sorted(histogram_families.items()):
        exposition = prometheus_name(base)
        emit_header(base, "histogram", exposition)
        for labels, histogram in sorted(
            entries, key=lambda entry: sorted(entry[0].items())
        ):
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                bucket_labels = dict(labels, le=_format_value(bound))
                lines.append(
                    "%s_bucket%s %d"
                    % (exposition, _label_body(bucket_labels), cumulative)
                )
            bucket_labels = dict(labels, le="+Inf")
            lines.append(
                "%s_bucket%s %d"
                % (exposition, _label_body(bucket_labels), histogram.count)
            )
            lines.append(
                "%s_sum%s %s"
                % (exposition, _label_body(labels), _format_value(histogram.sum))
            )
            lines.append(
                "%s_count%s %d"
                % (exposition, _label_body(labels), histogram.count)
            )

    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Exposition-format validation (tests, CI smoke)
# ----------------------------------------------------------------------

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"            # metric name
    r"(\{\w+=\"(?:[^\"\\]|\\.)*\"(,\w+=\"(?:[^\"\\]|\\.)*\")*\})?"  # labels
    r" -?(\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)"  # value
    r"( -?\d+)?$"                            # optional timestamp
)
_HELP_LINE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")
_TYPE_LINE = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* "
    r"(counter|gauge|histogram|summary|untyped)$"
)


def validate_exposition(text: str) -> List[str]:
    """Check ``text`` against the exposition line grammar.

    Returns a list of human-readable violations (empty = valid).
    Checks: every line parses; every sample's family has a ``# TYPE``;
    counter families end in ``_total``; histogram families emit
    ``_bucket``/``_sum``/``_count`` with a ``+Inf`` bucket.
    """
    errors: List[str] = []
    typed: Dict[str, str] = {}
    sampled: Dict[str, List[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP"):
            if not _HELP_LINE.match(line):
                errors.append("line %d: malformed HELP: %r" % (number, line))
            continue
        if line.startswith("# TYPE"):
            if not _TYPE_LINE.match(line):
                errors.append("line %d: malformed TYPE: %r" % (number, line))
            else:
                _, _, name, kind = line.split(" ", 3)
                typed[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        if not _SAMPLE_LINE.match(line):
            errors.append("line %d: malformed sample: %r" % (number, line))
            continue
        name = re.split(r"[{ ]", line, maxsplit=1)[0]
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        sampled.setdefault(
            family if family in typed else name, []
        ).append(name)
    for family, names in sorted(sampled.items()):
        if family not in typed:
            errors.append("family %r sampled without a # TYPE line" % family)
            continue
        kind = typed[family]
        if kind == "counter" and not family.endswith("_total"):
            errors.append("counter family %r lacks the _total suffix" % family)
        if kind == "histogram":
            suffixes = {name[len(family):] for name in names}
            for required in ("_bucket", "_sum", "_count"):
                if required not in suffixes:
                    errors.append(
                        "histogram family %r lacks %s samples"
                        % (family, required)
                    )
    return errors

"""Service-level objectives with burn-rate tracking.

An SLO here is the standard pair of objectives over a sliding window:

* **latency** — at least ``latency_objective`` of requests finish
  within ``latency_threshold_s`` (end to end, queue wait included);
* **availability** — at most ``1 - availability_objective`` of
  requests end in a server-side error (HTTP 5xx; 4xx is the client's
  budget, not ours).

The exported signal is the *burn rate*: the observed bad fraction
divided by the objective's error budget.  Burn 1.0 means the budget is
being consumed exactly as fast as it accrues; sustained burn above 1.0
means the objective will be missed — the number alerting rules
threshold on, per the SRE-workbook convention.  Both burn rates are
published as gauges (:data:`~repro.obs.names.METRIC_SLO_LATENCY_BURN`,
:data:`~repro.obs.names.METRIC_SLO_ERROR_BURN`) and surfaced in
``/stats`` and ``/metrics``.

The tracker is a deque of per-request outcomes pruned to the window —
exact (not decayed) math, O(1) amortized per request, bounded memory
via ``max_samples``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Tuple

from repro.obs.names import METRIC_SLO_ERROR_BURN, METRIC_SLO_LATENCY_BURN
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["SLOConfig", "SLOTracker"]


@dataclass(frozen=True)
class SLOConfig:
    """Objectives of one service instance (see docs/observability.md)."""

    #: A request slower than this (seconds, end to end) burns latency
    #: budget.
    latency_threshold_s: float = 5.0
    #: Fraction of requests that must meet the latency threshold.
    latency_objective: float = 0.95
    #: Fraction of requests that must not end in a 5xx.
    availability_objective: float = 0.99
    #: Sliding window the burn rates are computed over.
    window_s: float = 300.0
    #: Hard cap on retained samples (memory bound under request storms).
    max_samples: int = 4096

    def __post_init__(self) -> None:
        if self.latency_threshold_s <= 0:
            raise ValueError("latency_threshold_s must be positive")
        for name in ("latency_objective", "availability_objective"):
            value = getattr(self, name)
            if not 0.0 < value < 1.0:
                raise ValueError("%s must be in (0, 1)" % name)
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.max_samples < 1:
            raise ValueError("max_samples must be >= 1")


class SLOTracker:
    """Sliding-window burn rates over terminal request outcomes."""

    def __init__(
        self,
        config: SLOConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        # (ts, slow, error) — booleans as ints for cheap sums.
        self._samples: Deque[Tuple[float, int, int]] = deque(
            maxlen=config.max_samples
        )
        self.total_recorded = 0

    def record(self, status: int, latency_s: float) -> None:
        """Account one terminal response (any HTTP status)."""
        slow = 1 if latency_s > self.config.latency_threshold_s else 0
        error = 1 if status >= 500 else 0
        with self._lock:
            self._samples.append((self._clock(), slow, error))
            self.total_recorded += 1
            self._prune_locked()

    def _prune_locked(self) -> None:
        horizon = self._clock() - self.config.window_s
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def _window_locked(self) -> Tuple[int, int, int]:
        self._prune_locked()
        total = len(self._samples)
        slow = sum(sample[1] for sample in self._samples)
        errors = sum(sample[2] for sample in self._samples)
        return total, slow, errors

    def burn_rates(self) -> Tuple[float, float]:
        """``(latency_burn, error_burn)`` over the current window.

        With no samples in the window both burns are 0.0 — an idle
        service is not burning budget.
        """
        with self._lock:
            total, slow, errors = self._window_locked()
        if total == 0:
            return 0.0, 0.0
        latency_budget = 1.0 - self.config.latency_objective
        error_budget = 1.0 - self.config.availability_objective
        return (
            (slow / total) / latency_budget,
            (errors / total) / error_budget,
        )

    def snapshot(self) -> Dict[str, float]:
        """The ``/stats`` document's ``slo`` section."""
        with self._lock:
            total, slow, errors = self._window_locked()
        latency_burn, error_burn = self.burn_rates()
        return {
            "window_s": self.config.window_s,
            "latency_threshold_s": self.config.latency_threshold_s,
            "latency_objective": self.config.latency_objective,
            "availability_objective": self.config.availability_objective,
            "window_requests": float(total),
            "window_slow": float(slow),
            "window_errors": float(errors),
            "latency_burn_rate": latency_burn,
            "error_burn_rate": error_burn,
            "total_recorded": float(self.total_recorded),
        }

    def publish(self, metrics: MetricsRegistry) -> None:
        """Refresh the burn-rate gauges in ``metrics``."""
        latency_burn, error_burn = self.burn_rates()
        metrics.gauge(METRIC_SLO_LATENCY_BURN).set(latency_burn)
        metrics.gauge(METRIC_SLO_ERROR_BURN).set(error_burn)

"""Parallel execution engine for independent co-estimation runs.

Design-space exploration, benchmark sweeps, and sampling replicas all
share one shape: many *independent* co-estimation runs whose inputs are
small, picklable descriptions (a builder callable plus parameters) and
whose outputs are small reports.  This package fans those runs out
across worker processes:

* :mod:`repro.parallel.jobs` — the :class:`JobSpec`/:class:`JobResult`
  contract and deterministic per-job seeding;
* :mod:`repro.parallel.pool` — the process-pool engine (per-job
  timeout, bounded retry on worker crash, ``jobs=1`` running inline so
  the default path is byte-identical to the sequential code);
* :mod:`repro.parallel.runners` — worker-side entry points that
  rebuild a system from its builder spec and run one unit of work;
* :mod:`repro.parallel.merge` — merging per-worker metrics snapshots
  and span traces into one timeline (workers become Perfetto
  processes).

Workers rebuild systems from source descriptions rather than receiving
live simulator objects: simulators hold compiled closures and open
telemetry, which do not pickle, and rebuilding is cheap (it is the
simulation that is expensive — and each worker's process-wide caches
make repeated rebuilding cheaper still).
"""

from repro.parallel.jobs import (
    JobError,
    JobResult,
    JobSpec,
    job_seed,
    resolve_callable,
    spec_from_wire,
    spec_to_wire,
)
from repro.parallel.merge import (
    merge_metrics_snapshots,
    merged_chrome_trace_events,
    write_merged_chrome_trace,
)
from repro.parallel.pool import PoolStats, run_jobs

__all__ = [
    "JobError",
    "JobResult",
    "JobSpec",
    "PoolStats",
    "job_seed",
    "merge_metrics_snapshots",
    "merged_chrome_trace_events",
    "resolve_callable",
    "run_jobs",
    "spec_from_wire",
    "spec_to_wire",
]

"""Job descriptions exchanged between the pool master and its workers.

A job is a *description*, never a live object: the function is named by
``"module:callable"`` (or given as a module-level callable, which
pickles by reference), and the payload is a dict of picklable keyword
arguments.  The worker resolves the name, seeds its RNG from the job's
deterministic seed, and calls the function.

Descriptions also travel across *sockets*: :func:`spec_to_wire` /
:func:`spec_from_wire` round-trip a spec through JSON for the cluster
coordinator (:mod:`repro.cluster`), which dispatches the same specs the
process pool runs — the stricter constraint being that the function
must be named by string and the payload must be JSON-serializable (no
pickled callables cross machine boundaries).
"""

from __future__ import annotations

import importlib
import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union
from repro.errors import ReproError


class JobError(ReproError):
    """A job failed permanently (retries exhausted or bad spec)."""


def resolve_callable(spec: Union[str, Callable]) -> Callable:
    """Resolve a ``"module:callable"`` path (or pass a callable through)."""
    if callable(spec):
        return spec
    if not isinstance(spec, str) or ":" not in spec:
        raise JobError(
            "expected a callable or 'module:callable' string, got %r" % (spec,)
        )
    module_name, _, attr = spec.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise JobError("cannot import %r: %s" % (module_name, exc)) from exc
    target = module
    for part in attr.split("."):
        target = getattr(target, part, None)
        if target is None:
            raise JobError("module %r has no attribute %r" % (module_name, attr))
    if not callable(target):
        raise JobError("%s:%s is not callable" % (module_name, attr))
    return target


def job_seed(root_seed: int, label: str) -> int:
    """Deterministic per-job seed.

    Independent of scheduling order and worker assignment: the same
    (root seed, job label) always yields the same seed, so stochastic
    strategies (sampling replicas) reproduce regardless of ``--jobs``.
    """
    return (root_seed ^ zlib.crc32(label.encode("utf-8"))) & 0x7FFFFFFF


@dataclass(frozen=True)
class JobSpec:
    """One unit of work for the pool.

    Attributes:
        fn: worker entry point — ``"module:callable"`` or a module-level
            callable; it is called as ``fn(**payload)``.
        payload: picklable keyword arguments.
        label: stable human-readable identity (also feeds the seed).
        seed: deterministic RNG seed applied in the worker before the
            call (see :func:`job_seed`).
        timeout_s: wall-clock budget for one attempt; the worker is
            killed and the job retried when exceeded.  ``None`` means
            no limit.
        max_retries: how many times a crashed or timed-out job is
            retried on a fresh worker before it is reported failed.
        collect_telemetry: when True the worker builds a
            :class:`~repro.telemetry.Telemetry` bundle, passes it as a
            ``telemetry=`` keyword, and ships the span records and
            metrics snapshot back with the result.
        trace: optional serialized
            :class:`~repro.obs.context.RequestContext` payload
            (``RequestContext.to_payload()``).  The worker binds it
            before running the job so spans and events recorded inside
            the job carry the originating request's ``trace_id`` —
            this is how request correlation survives the process-pool
            boundary.
    """

    fn: Union[str, Callable]
    payload: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    seed: int = 0
    timeout_s: Optional[float] = None
    max_retries: int = 1
    collect_telemetry: bool = False
    trace: Optional[Dict[str, str]] = None


def spec_to_wire(spec: JobSpec) -> Dict[str, Any]:
    """JSON-able snapshot of a spec for cross-socket dispatch.

    Stricter than pickling: ``fn`` must be a ``"module:callable"``
    string and the payload must survive JSON (live callables and
    simulator objects never cross machine boundaries).  Raises
    :class:`JobError` naming the offending field otherwise.
    """
    if not isinstance(spec.fn, str):
        raise JobError(
            "wire jobs need fn as a 'module:callable' string, got %r"
            % (spec.fn,)
        )
    try:
        json.dumps(spec.payload)
    except (TypeError, ValueError) as exc:
        raise JobError(
            "wire job payload for %r is not JSON-serializable: %s"
            % (spec.label, exc)
        ) from exc
    return {
        "fn": spec.fn,
        "payload": dict(spec.payload),
        "label": spec.label,
        "seed": spec.seed,
        "timeout_s": spec.timeout_s,
        "max_retries": spec.max_retries,
        "collect_telemetry": spec.collect_telemetry,
        "trace": dict(spec.trace) if spec.trace else None,
    }


def spec_from_wire(wire: Dict[str, Any]) -> JobSpec:
    """Rebuild a :class:`JobSpec` from its :func:`spec_to_wire` form."""
    if not isinstance(wire, dict):
        raise JobError("wire job must be a JSON object, got %r" % (wire,))
    fn = wire.get("fn")
    if not isinstance(fn, str) or ":" not in fn:
        raise JobError("wire job fn must be 'module:callable', got %r"
                       % (fn,))
    payload = wire.get("payload", {})
    if not isinstance(payload, dict):
        raise JobError("wire job payload must be an object, got %r"
                       % (payload,))
    timeout_s = wire.get("timeout_s")
    if timeout_s is not None and not isinstance(timeout_s, (int, float)):
        raise JobError("wire job timeout_s must be a number or null")
    return JobSpec(
        fn=fn,
        payload=dict(payload),
        label=str(wire.get("label", "")),
        seed=int(wire.get("seed", 0)),
        timeout_s=timeout_s,
        max_retries=int(wire.get("max_retries", 1)),
        collect_telemetry=bool(wire.get("collect_telemetry", False)),
        trace=dict(wire["trace"]) if wire.get("trace") else None,
    )


@dataclass
class JobResult:
    """Outcome of one job, in spec order.

    ``value`` is the entry point's return value (``None`` on failure);
    ``error`` carries the formatted traceback / failure reason when the
    job failed permanently.  ``spans`` are plain tuples
    ``(name, track, start_us, dur_us, depth, args)`` and ``metrics`` is
    a registry snapshot dict, both present only when the spec asked for
    telemetry.
    """

    label: str
    index: int
    value: Any = None
    error: Optional[str] = None
    worker_pid: int = 0
    attempts: int = 1
    seconds: float = 0.0
    started_offset_s: float = 0.0
    metrics: Optional[Dict[str, Dict]] = None
    spans: Optional[List[Tuple]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

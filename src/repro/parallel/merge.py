"""Merging per-worker telemetry into one cross-process view.

Workers ship two artifacts home with each :class:`JobResult`:

* a metrics-registry snapshot (``{"counters": .., "gauges": ..,
  "histograms": ..}``) — merged by :func:`merge_metrics_snapshots`;
* the raw span tuples of the job's tracer — rendered into one Chrome
  trace by :func:`merged_chrome_trace_events`, where every worker
  becomes its own Perfetto *process* (pid = worker pid) so the parallel
  timeline is visible at a glance.

Span timestamps are tracer-relative (each worker's tracer starts at
zero when the job begins).  The merge shifts each job's spans by the
job's start offset within the pool run, so slices line up on one shared
wall-clock axis.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional

from repro.parallel.jobs import JobResult

__all__ = [
    "merge_metrics_snapshots",
    "merged_chrome_trace_events",
    "write_merged_chrome_trace",
]


def merge_metrics_snapshots(
    snapshots: Iterable[Optional[Dict[str, Dict]]],
) -> Dict[str, Dict]:
    """Combine registry snapshots from many workers into one.

    Counters add (they are event counts), gauges take the maximum (they
    are levels — peak queue depth, final cache size — where "max over
    workers" is the conservative aggregate), and histogram summaries
    add their ``count``/``sum`` and recompute the mean; percentiles
    cannot be merged exactly from summaries, so the merge keeps a
    count-weighted average and labels the result dict with
    ``"approximate": True``.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, summary in snapshot.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                merged = dict(summary)
                merged["approximate"] = True
                histograms[name] = merged
                continue
            old_count = merged["count"]
            new_count = summary["count"]
            total = old_count + new_count
            merged["sum"] += summary["sum"]
            merged["min"] = min(merged["min"], summary["min"])
            merged["max"] = max(merged["max"], summary["max"])
            if total:
                for key in ("p50", "p90", "p99"):
                    merged[key] = (
                        merged[key] * old_count + summary[key] * new_count
                    ) / total
            merged["count"] = total
            merged["mean"] = merged["sum"] / total if total else 0.0
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


#: Ids minted by :func:`repro.obs.context.new_span_id` — already
#: ``<pid-hex>-<counter-hex>``, globally unique across workers.
_PID_NAMESPACED_ID = re.compile(r"^[0-9a-f]+-[0-9a-f]+$")


def _qualify_span_id(value: Any, pid: int) -> str:
    """Make a span-id arg unique across workers in a merged trace.

    Pool workers deliberately share seeded RNG state (deterministic
    sweeps), so any id a job derives from ``random`` repeats in every
    worker.  Ids already carrying a pid namespace (the obs layer's
    ``<pid>-<counter>`` format) pass through untouched — including
    parent links that point at a *different* process's span; anything
    else is qualified by the worker that produced it.
    """
    text = str(value)
    if _PID_NAMESPACED_ID.match(text):
        return text
    return "w%d/%s" % (pid, text)


def merged_chrome_trace_events(
    results: Iterable[JobResult],
) -> List[Dict[str, Any]]:
    """Chrome trace events for all jobs, one Perfetto process per worker.

    Each worker pid becomes a trace ``pid`` with a ``process_name``
    metadata record; within a worker, tracks keep their names as
    threads.  Jobs that carried no spans contribute nothing.
    ``span_id``/``parent_span_id`` args are namespaced per worker via
    :func:`_qualify_span_id` so merged trees never alias across
    workers.
    """
    events: List[Dict[str, Any]] = []
    # (pid -> process metadata emitted), (pid, track) -> tid.
    named_pids: Dict[int, bool] = {}
    tids: Dict[Any, int] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = 1 + sum(1 for existing in tids if existing[0] == pid)
            tids[key] = tid
            events.append(
                {
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tid

    for result in results:
        if not result.spans:
            continue
        pid = result.worker_pid or 0
        if pid not in named_pids:
            named_pids[pid] = True
            events.append(
                {
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": "worker %d" % pid},
                }
            )
        offset_us = int(result.started_offset_s * 1e6)
        for name, track, start_us, dur_us, _depth, args in result.spans:
            event: Dict[str, Any] = {
                "ph": "X",
                "ts": start_us + offset_us,
                "dur": dur_us,
                "pid": pid,
                "tid": tid_for(pid, track),
                "name": name,
                "cat": track,
            }
            merged_args = dict(args) if args else {}
            for key in ("span_id", "parent_span_id"):
                if key in merged_args:
                    merged_args[key] = _qualify_span_id(merged_args[key], pid)
            merged_args.setdefault("job", result.label)
            event["args"] = merged_args
            events.append(event)
    return events


def write_merged_chrome_trace(results: Iterable[JobResult], path: str) -> str:
    """Atomically write the merged Chrome trace JSON to ``path``."""
    from repro.ioutil import atomic_write_text

    return atomic_write_text(path, json.dumps(merged_chrome_trace_events(results)))

"""The process-pool execution engine.

``run_jobs(specs, jobs=N)`` executes independent :class:`JobSpec`s and
returns :class:`JobResult`s in spec order.

* ``jobs=1`` (the default) runs everything inline in the calling
  process — no fork, no pickling, byte-identical to the plain
  sequential code path.
* ``jobs>1`` forks worker processes (``fork`` start method where
  available, so workers inherit the parent's warmed process-wide
  caches for free) connected by queues.  Each worker executes one job
  at a time; the master enforces per-job wall-clock timeouts, detects
  worker crashes, respawns workers, and retries the affected job on a
  fresh worker up to ``spec.max_retries`` times.

Determinism: job seeds come from the spec (see
:func:`repro.parallel.jobs.job_seed`), so results do not depend on
which worker ran a job or in what order jobs finished.  Results are
always returned in spec order.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import random
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.context import RequestContext, use_context
from repro.parallel.jobs import JobResult, JobSpec, resolve_callable
from repro.resilience.supervisor import WatchdogTimeout, call_with_watchdog
from repro.telemetry import Telemetry

#: How often the master polls the result queue while jobs are in
#: flight; bounds timeout-detection latency.
_POLL_INTERVAL_S = 0.05

#: Grace period after ``terminate`` before escalating to ``kill``.
_TERMINATE_GRACE_S = 2.0


@dataclass
class PoolStats:
    """Bookkeeping of one ``run_jobs`` call (attached to the results)."""

    jobs: int = 0
    workers: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    wall_seconds: float = 0.0
    worker_pids: List[int] = field(default_factory=list)

    def snapshot(self) -> Dict[str, float]:
        return {
            "jobs": self.jobs,
            "workers": self.workers,
            "completed": self.completed,
            "failed": self.failed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "wall_seconds": self.wall_seconds,
        }


def execute_spec(
    spec: JobSpec,
) -> Tuple[Any, float, Optional[Dict], Optional[List[Tuple]]]:
    """Run one spec in this process; returns (value, seconds, metrics, spans).

    This is the single job-execution path: pool workers, the inline
    ``jobs=1`` runner, and the co-estimation service's worker threads
    all funnel through it, so seeding, telemetry collection, and payload
    handling behave identically everywhere a job can run.
    """
    fn = resolve_callable(spec.fn)
    random.seed(spec.seed)
    telemetry: Optional[Telemetry] = None
    kwargs = dict(spec.payload)
    if spec.collect_telemetry:
        telemetry = Telemetry()
        kwargs.setdefault("telemetry", telemetry)
    # Rehydrate the originating request's trace context (if the spec
    # carries one) as a *child* span of the dispatcher's span: spans and
    # events recorded inside the job — even in a forked pool worker —
    # then correlate back to the request that caused them.
    context = (
        RequestContext.from_payload(spec.trace).child()
        if spec.trace else None
    )
    started = time.perf_counter()
    with use_context(context):
        value = fn(**kwargs)
    seconds = time.perf_counter() - started
    metrics = None
    spans = None
    if telemetry is not None:
        metrics = telemetry.metrics.snapshot()
        trace_args = context.trace_args() if context is not None else {}
        spans = [
            (s.name, s.track, s.start_us, s.dur_us, s.depth,
             dict(trace_args, **(s.args or {})) if trace_args else s.args)
            for s in telemetry.tracer.spans
        ]
    return value, seconds, metrics, spans


def _worker_main(task_queue, result_queue) -> None:
    """Worker loop: one job at a time until the ``None`` sentinel."""
    pid = os.getpid()
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, spec = item
        result_queue.put(("started", pid, index, time.time()))
        try:
            value, seconds, metrics, spans = execute_spec(spec)
            result_queue.put(("done", pid, index, value, seconds, metrics, spans))
        except BaseException:
            # Report and keep serving: an exception is a *job* failure,
            # not a worker failure (crashes are detected by exitcode).
            result_queue.put(("error", pid, index, traceback.format_exc()))


def _run_inline(
    specs: List[JobSpec],
    stats: PoolStats,
    on_result=None,
) -> List[JobResult]:
    """The ``jobs=1`` path: plain sequential execution, no processes.

    ``spec.timeout_s`` is honored here too, via the resilience layer's
    wall-clock watchdog: a timed-out attempt counts as a timeout and is
    retried like in the pooled path.  (The hung attempt's thread cannot
    be killed in-process; it is abandoned, exactly as a supervised
    component estimator would be.)
    """
    results: List[JobResult] = []
    pool_start = time.perf_counter()
    for index, spec in enumerate(specs):
        attempts = 0
        result = JobResult(label=spec.label, index=index, worker_pid=os.getpid())
        while True:
            attempts += 1
            result.started_offset_s = time.perf_counter() - pool_start
            try:
                value, seconds, metrics, spans = call_with_watchdog(
                    lambda: execute_spec(spec), spec.timeout_s
                )
                result.value = value
                result.seconds = seconds
                result.metrics = metrics
                result.spans = spans
                result.error = None
                stats.completed += 1
                break
            except WatchdogTimeout:
                stats.timeouts += 1
                result.error = (
                    "job %d (%s) exceeded its %.1fs timeout"
                    % (index, spec.label, spec.timeout_s)
                )
                if attempts > spec.max_retries:
                    stats.failed += 1
                    break
                stats.retries += 1
            except Exception:
                result.error = traceback.format_exc()
                if attempts > spec.max_retries:
                    stats.failed += 1
                    break
                stats.retries += 1
        result.attempts = attempts
        results.append(result)
        if on_result is not None:
            on_result(result)
    return results


class _Pool:
    """Fork/join worker management for one ``run_jobs`` call.

    Every worker owns a *private* task queue: the master decides which
    worker runs which job, so when a worker dies the master knows —
    from its own dispatch bookkeeping, not from worker messages —
    exactly which job was lost.  (With a shared queue, a worker killed
    hard enough, e.g. ``os._exit``, can take its in-flight job's
    identity to the grave: the queue's feeder thread dies before
    flushing the "started" message.)
    """

    def __init__(self, workers: int) -> None:
        methods = multiprocessing.get_all_start_methods()
        self.ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.result_queue = self.ctx.Queue()
        self.workers: Dict[int, Tuple[Any, Any]] = {}  # pid -> (proc, taskq)
        for _ in range(workers):
            self._spawn()

    def _spawn(self) -> int:
        task_queue = self.ctx.Queue()
        process = self.ctx.Process(
            target=_worker_main,
            args=(task_queue, self.result_queue),
            daemon=True,
        )
        process.start()
        self.workers[process.pid] = (process, task_queue)
        return process.pid

    def send(self, pid: int, item: Any) -> None:
        self.workers[pid][1].put(item)

    def kill_worker(self, pid: int) -> None:
        entry = self.workers.pop(pid, None)
        if entry is None:
            return
        process, task_queue = entry
        process.terminate()
        process.join(_TERMINATE_GRACE_S)
        if process.is_alive():
            process.kill()
            process.join()
        task_queue.close()

    def dead_workers(self) -> List[int]:
        return [
            pid
            for pid, (process, _) in self.workers.items()
            if not process.is_alive()
        ]

    def reap(self, pid: int) -> None:
        entry = self.workers.pop(pid, None)
        if entry is not None:
            entry[0].join()
            entry[1].close()

    def shutdown(self) -> None:
        for _, task_queue in self.workers.values():
            task_queue.put(None)
        deadline = time.time() + _TERMINATE_GRACE_S
        for process, _ in list(self.workers.values()):
            process.join(max(0.0, deadline - time.time()))
        for pid in list(self.workers):
            self.kill_worker(pid)
        self.result_queue.close()


def run_jobs(
    specs: List[JobSpec],
    jobs: int = 1,
    stats: Optional[PoolStats] = None,
    on_result=None,
) -> List[JobResult]:
    """Execute ``specs`` with up to ``jobs`` workers; results in spec order.

    Failed jobs (exceptions, crashes, timeouts — after exhausting their
    retry budget) come back with ``result.error`` set; no exception is
    raised so one bad design point cannot abort a long sweep.  Pass a
    :class:`PoolStats` to observe retry/timeout/crash accounting.

    ``on_result`` is called with each finalized :class:`JobResult` as
    soon as it is known (completion order, not spec order) — the hook
    checkpoint writers use to flush incrementally.  An exception from
    the callback aborts the run (workers are shut down first).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1, got %d" % jobs)
    stats = stats if stats is not None else PoolStats()
    stats.jobs = len(specs)
    started = time.perf_counter()
    try:
        if jobs == 1 or len(specs) <= 1:
            stats.workers = 1
            return _run_inline(specs, stats, on_result=on_result)
        return _run_pooled(
            specs, min(jobs, len(specs)), stats, started, on_result=on_result
        )
    finally:
        stats.wall_seconds = time.perf_counter() - started


def _run_pooled(
    specs: List[JobSpec],
    workers: int,
    stats: PoolStats,
    pool_start: float,
    on_result=None,
) -> List[JobResult]:
    stats.workers = workers
    pool = _Pool(workers)
    stats.worker_pids = sorted(pool.workers)
    wall_start = time.time()

    results: Dict[int, JobResult] = {}
    attempts_by_index: Dict[int, int] = {i: 1 for i in range(len(specs))}
    pending: List[int] = list(reversed(range(len(specs))))  # pop() in order
    # Master-side dispatch bookkeeping: pid -> [index, started_at].
    # started_at is the dispatch time, refined by the worker's
    # "started" message (the difference is queue latency).
    in_flight: Dict[int, List] = {}
    idle: List[int] = sorted(pool.workers)

    def dispatch() -> None:
        while idle and pending:
            pid = idle.pop()
            index = pending.pop()
            in_flight[pid] = [index, time.time()]
            pool.send(pid, (index, specs[index]))

    def fail_or_retry(index: int, reason: str) -> None:
        spec = specs[index]
        if attempts_by_index[index] <= spec.max_retries:
            stats.retries += 1
            attempts_by_index[index] += 1
            pending.append(index)
        else:
            stats.failed += 1
            results[index] = JobResult(
                label=spec.label,
                index=index,
                error=reason,
                attempts=attempts_by_index[index],
                worker_pid=0,
            )
            if on_result is not None:
                on_result(results[index])

    try:
        dispatch()
        while len(results) < len(specs):
            try:
                message = pool.result_queue.get(timeout=_POLL_INTERVAL_S)
            except queue_module.Empty:
                message = None

            if message is not None:
                kind, pid = message[0], message[1]
                if kind == "started":
                    _, _, index, started_at = message
                    state = in_flight.get(pid)
                    if state is not None and state[0] == index:
                        state[1] = started_at
                elif kind == "done":
                    _, _, index, value, seconds, metrics, spans = message
                    state = in_flight.pop(pid, None)
                    if pid in pool.workers:
                        idle.append(pid)
                    if index in results:
                        continue  # first completion won (timeout race)
                    started_at = state[1] if state else wall_start
                    stats.completed += 1
                    results[index] = JobResult(
                        label=specs[index].label,
                        index=index,
                        value=value,
                        worker_pid=pid,
                        attempts=attempts_by_index[index],
                        seconds=seconds,
                        started_offset_s=max(0.0, started_at - wall_start),
                        metrics=metrics,
                        spans=spans,
                    )
                    if on_result is not None:
                        on_result(results[index])
                elif kind == "error":
                    _, _, index, reason = message
                    in_flight.pop(pid, None)
                    if pid in pool.workers:
                        idle.append(pid)
                    if index not in results:
                        fail_or_retry(index, reason)

            # Crash detection: a worker died (killed, OOM, os._exit).
            for pid in pool.dead_workers():
                pool.reap(pid)
                if pid in idle:
                    idle.remove(pid)
                state = in_flight.pop(pid, None)
                if state is not None:
                    stats.crashes += 1
                    index = state[0]
                    if index not in results:
                        fail_or_retry(
                            index,
                            "worker %d crashed while running job %d (%s)"
                            % (pid, index, specs[index].label),
                        )
                if len(results) < len(specs):
                    idle.append(pool._spawn())

            # Timeout enforcement: kill the worker, retry the job.
            now = time.time()
            for pid, (index, started_at) in list(in_flight.items()):
                timeout = specs[index].timeout_s
                if timeout is not None and now > started_at + timeout:
                    stats.timeouts += 1
                    in_flight.pop(pid)
                    pool.kill_worker(pid)
                    if pid in idle:
                        idle.remove(pid)
                    if index not in results:
                        fail_or_retry(
                            index,
                            "job %d (%s) exceeded its %.1fs timeout"
                            % (index, specs[index].label, timeout),
                        )
                    if len(results) < len(specs):
                        idle.append(pool._spawn())

            dispatch()
    finally:
        pool.shutdown()
    return [results[i] for i in range(len(specs))]

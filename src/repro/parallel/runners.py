"""Worker-side entry points.

These are the functions named by :class:`~repro.parallel.jobs.JobSpec`
``fn`` strings.  Each one rebuilds its system *inside the worker* from
a builder spec (``"module:callable"``), runs one unit of work, and
returns a small picklable result (a
:class:`~repro.core.explorer.DesignPoint` or an
:class:`~repro.core.report.EnergyReport`) — never a live master or
simulator, which hold compiled closures that do not pickle.

Module state persists for the lifetime of a worker process, which is
what makes per-worker warm starting work: ``_WARM_CACHES`` keeps one
:class:`~repro.core.caching.WarmStartCache` per sweep key, so every
job a worker runs after its first starts from the energy statistics
its predecessors converged (validity-guarded per CFSM, see
``docs/parallelism.md``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from repro.core.caching import WarmStartCache
from repro.core.explorer import DesignPoint, DesignSpaceExplorer
from repro.core.report import EnergyReport
from repro.parallel.jobs import resolve_callable

__all__ = [
    "run_explorer_point",
    "run_estimate",
    "reset_warm_caches",
    "get_warm_cache",
    "warm_cache_state",
    "seed_warm_cache",
]

#: Per-process warm-start caches, keyed by sweep identity.  Lives for
#: the worker's lifetime; ``fork`` workers start with the parent's
#: (usually empty) copy.
_WARM_CACHES: Dict[str, WarmStartCache] = {}


def reset_warm_caches() -> None:
    """Drop all per-process warm-start caches (tests)."""
    _WARM_CACHES.clear()


def _warm_cache(key: str) -> WarmStartCache:
    cache = _WARM_CACHES.get(key)
    if cache is None:
        cache = _WARM_CACHES[key] = WarmStartCache()
    return cache


def get_warm_cache(key: str) -> WarmStartCache:
    """This process's warm-start cache for ``key`` (created on demand)."""
    return _warm_cache(key)


def warm_cache_state(key: str) -> Optional[Dict[str, Any]]:
    """Exportable snapshot of the warm cache for ``key`` (None if cold).

    The cluster worker pushes this to the coordinator's shared cache
    tier after warm sweep points, so §4.2 convergence transfers across
    nodes (fingerprint-guarded on adoption, see
    :meth:`~repro.core.caching.WarmStartCache.export_state`).
    """
    cache = _WARM_CACHES.get(key)
    return cache.export_state() if cache is not None else None


def seed_warm_cache(key: str, state: Dict[str, Any]) -> int:
    """Adopt a coordinator-shipped cache snapshot for ``key``.

    Only a *cold* local cache adopts — a local cache that already holds
    converged entries is further along than anything worth overwriting
    mid-sweep.  Returns the adopted entry count (0 if skipped).
    """
    cache = _warm_cache(key)
    if cache.entry_count > 0:
        return 0
    return cache.adopt_state(state)


def run_explorer_point(
    builder: Union[str, Callable],
    dma_block_words: int,
    priorities: Dict[str, int],
    strategy: str = "caching",
    builder_kwargs: Optional[Dict[str, Any]] = None,
    warm_start: bool = False,
    warm_key: str = "",
    fault_plan=None,
    fault_retries: int = 1,
    telemetry=None,
) -> DesignPoint:
    """Build the system in-process and co-estimate one design point.

    ``builder`` names a function returning a
    :class:`~repro.systems.bundle.SystemBundle` and is called with
    ``dma_block_words``, ``priorities``, and ``builder_kwargs``.  With
    ``warm_start=True`` the point runs against this process's shared
    energy cache for ``warm_key`` (guarded, see
    :class:`~repro.core.caching.WarmStartCache`).  A ``fault_plan``
    arms the resilience layer inside the point's master: injected
    estimator failures degrade gracefully instead of failing the job.
    """
    build = resolve_callable(builder)
    kwargs = dict(builder_kwargs or {})
    kwargs["dma_block_words"] = dma_block_words
    kwargs["priorities"] = dict(priorities)
    bundle = build(**kwargs)
    config = bundle.config
    if fault_plan is not None:
        from dataclasses import replace

        from repro.resilience.supervisor import ResilienceConfig

        config = replace(
            config,
            resilience=ResilienceConfig(
                fault_plan=fault_plan, max_retries=fault_retries
            ),
        )
    explorer = DesignSpaceExplorer(
        bundle.network,
        config,
        bundle.stimuli_factory,
        shared_memory_image=bundle.shared_memory_image,
    )
    warm = None
    if warm_start:
        warm = _warm_cache(warm_key or str(builder))
    return explorer.evaluate(
        dma_block_words,
        priorities,
        strategy=strategy,
        warm_start=warm,
        telemetry=telemetry,
    )


def run_estimate(
    builder: Union[str, Callable],
    builder_kwargs: Optional[Dict[str, Any]] = None,
    strategy: str = "full",
    label: str = "",
    telemetry=None,
    resilience=None,
) -> EnergyReport:
    """Build a system bundle and run one co-estimation; returns the report.

    ``resilience`` (a :class:`~repro.resilience.supervisor.
    ResilienceConfig`) overrides the bundle's own resilience settings —
    the co-estimation service uses this to arm each run with the
    request's deadline watchdog, fault plan, and its shared circuit
    breakers.
    """
    from repro.core.coestimator import PowerCoEstimator

    build = resolve_callable(builder)
    bundle = build(**dict(builder_kwargs or {}))
    config = bundle.config
    if resilience is not None:
        from dataclasses import replace

        config = replace(config, resilience=resilience)
    estimator = PowerCoEstimator(bundle.network, config)
    result = estimator.estimate(
        bundle.stimuli(),
        strategy=strategy,
        shared_memory_image=bundle.shared_memory_image,
        label=label,
        telemetry=telemetry,
    )
    return result.report

"""Resilience layer: fault injection, supervision, checkpoint/resume.

Three cooperating pieces harden the co-estimation framework against
component-estimator failure and lost compute:

* :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection at the hw/iss/cache/bus boundaries;
* :mod:`repro.resilience.supervisor` — watchdog + retry + the
  exact → cached → macromodel → degraded fallback ladder, with
  provenance tagging of every estimate;
* :mod:`repro.resilience.checkpoint` — atomic sweep checkpoints so
  ``repro explore`` can be killed and resumed.

Enable supervision by putting a :class:`ResilienceConfig` on
:class:`~repro.master.master.MasterConfig`; enable checkpoints with
``repro explore --checkpoint FILE`` / ``--resume FILE``.
"""

from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
    resilience_signature,
    sweep_signature,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.resilience.supervisor import (
    PROVENANCE_LEVELS,
    CorruptedEstimate,
    EstimatorUnavailable,
    ResilienceConfig,
    ResilientEstimator,
    WatchdogTimeout,
    call_with_watchdog,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "PROVENANCE_LEVELS",
    "CheckpointError",
    "CheckpointWriter",
    "CorruptedEstimate",
    "EstimatorUnavailable",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ResilienceConfig",
    "ResilientEstimator",
    "WatchdogTimeout",
    "call_with_watchdog",
    "load_checkpoint",
    "resilience_signature",
    "sweep_signature",
]

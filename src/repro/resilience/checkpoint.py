"""Checkpoint/resume for long design-space sweeps.

A full-system sweep can run hours (Section 6 reports ~1000x speedups
precisely because raw co-simulation is so expensive).  This module lets
``repro explore`` snapshot its progress after every completed design
point and resume after a kill, re-running only the unfinished points.

A checkpoint is a single JSON file, replaced atomically after each
completed point (see :mod:`repro.ioutil`), with three parts:

* ``signature`` — a digest of everything that changes the *meaning* of
  a point result (system builder, strategy, builder kwargs, root seed,
  fault plan...).  A resume against a different signature is refused
  instead of silently mixing incompatible results.  The point list
  itself is deliberately *outside* the signature, so a checkpoint from
  a subset sweep can seed a superset sweep.
* ``completed`` — finished point payloads keyed by their job label.
* ``meta`` — free-form bookkeeping (counts, durations) for humans.

Payloads are opaque JSON objects; the explorer owns the conversion
between them and its result type, keeping this module import-light
(it must not import :mod:`repro.core`, which imports the master
package, which imports :mod:`repro.resilience`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Dict, Optional

from repro.errors import ReproError
from repro.ioutil import atomic_write_json

__all__ = [
    "CheckpointError",
    "sweep_signature",
    "resilience_signature",
    "CheckpointWriter",
    "load_checkpoint",
]

FORMAT = "repro-explore-checkpoint"
VERSION = 1


class CheckpointError(ReproError):
    """A checkpoint file is unreadable or belongs to a different sweep."""


def sweep_signature(**parameters: Any) -> str:
    """A stable digest of the sweep parameters that define result meaning.

    Accepts only JSON-serializable values; keys are sorted, so argument
    order never changes the signature.
    """
    try:
        canonical = json.dumps(parameters, sort_keys=True, default=str)
    except TypeError as exc:
        raise CheckpointError(
            "sweep signature parameters must be JSON-serializable: %s" % exc
        ) from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def resilience_signature(
    fault_plan: Any = None,
    fault_retries: Optional[int] = None,
    timeout_s: Optional[float] = None,
    degradation: bool = True,
) -> Dict[str, Any]:
    """Canonical digest-ready view of a run's resilience configuration.

    Fault injection, the supervised retry budget, per-point timeouts,
    and the degradation switch all change the *meaning* of a completed
    point (its provenance mix, even its energy total) without changing
    the design point itself.  Sweeps must therefore fold this dict into
    :func:`sweep_signature` unconditionally — including the all-``None``
    no-fault shape — so that resuming a checkpoint written under a
    different fault plan or retry budget is rejected instead of silently
    mixing provenances.
    """
    plan: Any = fault_plan
    if plan is not None and dataclasses.is_dataclass(plan):
        plan = dataclasses.asdict(plan)
    return {
        "fault_plan": plan,
        "fault_retries": fault_retries,
        "timeout_s": timeout_s,
        "degradation": degradation,
    }


class CheckpointWriter:
    """Accumulates completed points and atomically flushes the file.

    The writer is resume-aware: constructed from a loaded checkpoint's
    ``completed`` dict, it carries the earlier results forward so the
    file on disk always holds the union.
    """

    def __init__(
        self,
        path: str,
        signature: str,
        completed: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = path
        self.signature = signature
        self.completed: Dict[str, Any] = dict(completed or {})
        self._dirty = False

    def record(self, label: str, payload: Any) -> None:
        """Remember one finished point (flush separately)."""
        self.completed[label] = payload
        self._dirty = True

    def flush(self, meta: Optional[Dict[str, Any]] = None) -> None:
        """Atomically replace the checkpoint file with current state."""
        document = {
            "format": FORMAT,
            "version": VERSION,
            "signature": self.signature,
            "completed": self.completed,
            "meta": dict(meta or {}),
        }
        atomic_write_json(self.path, document)
        self._dirty = False

    def record_and_flush(
        self, label: str, payload: Any, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        self.record(label, payload)
        self.flush(meta)


def load_checkpoint(path: str, signature: str) -> Dict[str, Any]:
    """Read a checkpoint's completed-point payloads, keyed by label.

    Raises :class:`CheckpointError` if the file is missing, malformed,
    or was written by a sweep with a different :func:`sweep_signature`.
    """
    if not os.path.exists(path):
        raise CheckpointError("checkpoint file %r does not exist" % path)
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            "checkpoint file %r is unreadable: %s" % (path, exc)
        ) from exc
    if not isinstance(document, dict) or document.get("format") != FORMAT:
        raise CheckpointError(
            "%r is not a %s file" % (path, FORMAT)
        )
    if document.get("version") != VERSION:
        raise CheckpointError(
            "checkpoint %r has unsupported version %r"
            % (path, document.get("version"))
        )
    if document.get("signature") != signature:
        raise CheckpointError(
            "checkpoint %r belongs to a different sweep "
            "(signature %r, expected %r) — refusing to mix results"
            % (path, document.get("signature"), signature)
        )
    completed = document.get("completed")
    if not isinstance(completed, dict):
        raise CheckpointError("checkpoint %r has no completed map" % path)
    return completed

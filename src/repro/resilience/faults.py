"""Deterministic fault injection at the component-estimator boundaries.

The co-estimation master synchronizes four kinds of component engines
— the gate-level power simulator (``"hw"``), the instruction-set
simulator (``"iss"``), the cache simulator (``"cache"``), and the
shared-bus model (``"bus"``).  In a production deployment any of them
can fail: a licensed simulator dies, a characterization server hangs,
a numeric bug returns garbage.  This module makes those failures a
*testable input*: a :class:`FaultPlan` describes which boundaries fail,
how, and how often, and a :class:`FaultInjector` replays that plan
deterministically during a run.

Determinism contract: each site draws from its own RNG stream seeded
from ``(plan.seed, site)``, so the fault schedule of a site depends
only on the plan and on that site's invocation order — never on the
interleaving with other sites, wall-clock time, or Python hash
randomization.  The same seed always yields the same fault schedule,
which is what lets CI assert exact failure paths.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "FAULT_SITES",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
]

#: The boundaries the master exposes to injection.
FAULT_SITES = ("hw", "iss", "cache", "bus")

#: ``exception`` raises :class:`InjectedFault` from the component call;
#: ``hang`` sleeps inside the call (caught by the watchdog when one is
#: configured); ``corrupt`` lets the call succeed but poisons the
#: returned energy value (caught by the supervisor's validator).
FAULT_KINDS = ("exception", "hang", "corrupt")

#: Corruption modes for ``kind="corrupt"``.
CORRUPTIONS = ("nan", "negative", "scale")


class InjectedFault(ReproError):
    """Raised by the injector in place of a component-estimator result."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault source at one site.

    Attributes:
        site: which boundary fails (one of :data:`FAULT_SITES`).
        kind: failure mode (one of :data:`FAULT_KINDS`).
        probability: per-invocation firing probability (0 disables the
            probabilistic trigger).
        schedule: explicit 1-based invocation numbers at which the
            fault fires regardless of ``probability`` — for tests that
            need a fault at an exact point.
        hang_s: sleep duration of a ``hang`` fault.
        corruption: what a ``corrupt`` fault does to the energy value
            (``nan``, ``negative``, or ``scale`` by ``scale_factor``).
        scale_factor: multiplier of the ``scale`` corruption.
    """

    site: str
    kind: str = "exception"
    probability: float = 0.0
    schedule: Tuple[int, ...] = ()
    hang_s: float = 0.05
    corruption: str = "nan"
    scale_factor: float = 1e9

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                "unknown fault site %r (choose from %s)" % (self.site, FAULT_SITES)
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                "unknown fault kind %r (choose from %s)" % (self.kind, FAULT_KINDS)
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.corruption not in CORRUPTIONS:
            raise ValueError(
                "unknown corruption %r (choose from %s)"
                % (self.corruption, CORRUPTIONS)
            )
        if self.hang_s < 0:
            raise ValueError("hang_s must be non-negative")

    def corrupt_energy(self, energy: float) -> float:
        """The poisoned value this spec turns ``energy`` into."""
        if self.corruption == "nan":
            return float("nan")
        if self.corruption == "negative":
            return -abs(energy) - 1e-12
        return energy * self.scale_factor


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable description of every fault source in a run.

    Plans are plain data: they travel inside job specs to pool workers
    and into :class:`~repro.master.master.MasterConfig`, and each run
    builds its own :class:`FaultInjector` from the plan, so concurrent
    runs never share mutable injection state.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @classmethod
    def uniform(
        cls,
        sites: Iterable[str],
        rate: float,
        seed: int = 0,
        kind: str = "exception",
        hang_s: float = 0.05,
    ) -> "FaultPlan":
        """One ``kind`` fault source per site, all at ``rate``."""
        return cls(
            seed=seed,
            specs=tuple(
                FaultSpec(site=site, kind=kind, probability=rate,
                          hang_s=hang_s)
                for site in sites
            ),
        )

    def sites(self) -> Tuple[str, ...]:
        """The distinct sites this plan can fault, in plan order."""
        seen: List[str] = []
        for spec in self.specs:
            if spec.site not in seen:
                seen.append(spec.site)
        return tuple(seen)


def _site_seed(seed: int, site: str) -> int:
    """Stable per-site RNG seed (independent of PYTHONHASHSEED)."""
    return (seed ^ zlib.crc32(site.encode("utf-8"))) & 0xFFFFFFFF


@dataclass
class FaultCounters:
    """Injection accounting of one run."""

    invocations: Dict[str, int] = field(default_factory=dict)
    injected: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def snapshot(self) -> Dict[str, float]:
        flat: Dict[str, float] = {}
        for site, count in sorted(self.invocations.items()):
            flat["invocations.%s" % site] = float(count)
        for (site, kind), count in sorted(self.injected.items()):
            flat["injected.%s.%s" % (site, kind)] = float(count)
        return flat


class FaultInjector:
    """Replays a :class:`FaultPlan` during one run.

    The supervisor calls :meth:`draw` once per supervised component
    invocation; the returned :class:`FaultSpec` (or ``None``) tells it
    what to do.  Retried invocations draw again, so a site with a 10%
    fault rate and one retry fails persistently about 1% of the time —
    exactly the compounding a real flaky component shows.
    """

    def __init__(self, plan: FaultPlan, telemetry=None) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        self._telemetry = telemetry
        self._specs_by_site: Dict[str, List[FaultSpec]] = {}
        for spec in plan.specs:
            self._specs_by_site.setdefault(spec.site, []).append(spec)
        self._rngs: Dict[str, random.Random] = {
            site: random.Random(_site_seed(plan.seed, site))
            for site in self._specs_by_site
        }

    def draw(self, site: str) -> Optional[FaultSpec]:
        """Decide whether this invocation of ``site`` faults.

        Increments the site's invocation counter, checks every spec's
        explicit schedule and probability (in plan order), and returns
        the first spec that fires.  Probabilistic draws consume one RNG
        sample per spec per invocation whether or not they fire, so the
        schedule is a pure function of the invocation index.
        """
        specs = self._specs_by_site.get(site)
        if not specs:
            return None
        invocation = self.counters.invocations.get(site, 0) + 1
        self.counters.invocations[site] = invocation
        rng = self._rngs[site]
        fired: Optional[FaultSpec] = None
        for spec in specs:
            scheduled = invocation in spec.schedule
            probabilistic = (
                spec.probability > 0.0 and rng.random() < spec.probability
            )
            if fired is None and (scheduled or probabilistic):
                fired = spec
        if fired is not None:
            key = (site, fired.kind)
            self.counters.injected[key] = self.counters.injected.get(key, 0) + 1
            telemetry = self._telemetry
            if telemetry is not None and telemetry.enabled:
                telemetry.metrics.counter("resilience.fault.%s" % site).inc()
                telemetry.metrics.counter("resilience.faults_injected").inc()
        return fired

    def make_fault(self, spec: FaultSpec, component: str = "",
                   sim_time_ns: Optional[float] = None) -> InjectedFault:
        """The exception an ``exception``-kind fault raises."""
        return InjectedFault(
            "injected %s fault at the %s boundary (invocation %d)"
            % (spec.kind, spec.site,
               self.counters.invocations.get(spec.site, 0)),
            component=component or None,
            sim_time_ns=sim_time_ns,
        )
